"""Benchmark: regenerate Figure 1(a) — atomic multicast comparison.

Asserts the paper's two columns, protocol by protocol:

* latency degree — [4] grows with k, [10] pays 4, [5]/A1/Skeen pay 2;
* inter-group messages — [4] is O(kd²) (cheapest for large k),
  [10]/[5]/A1 are O(k²d²), with A1 cheaper than [5] in absolute terms
  (non-uniform vs uniform reliable multicast).

Run with ``-s`` to see the regenerated table.
"""

import pytest

from repro.experiments.figure1 import (
    fig1a_sweep,
    fig1a_table,
    run_fig1a_single,
)


@pytest.fixture(scope="module")
def sweep():
    """One sweep shared by the shape assertions (k = 2..4, d = 2)."""
    return fig1a_sweep(ks=(2, 3, 4), d=2, seed=1)


class TestLatencyDegreeColumn:
    def test_a1_constant_two(self, sweep):
        assert all(r.measured_degree == 2 for r in sweep["a1"].values())

    def test_fritzke_constant_two(self, sweep):
        assert all(r.measured_degree == 2 for r in sweep["fritzke"].values())

    def test_skeen_constant_two(self, sweep):
        assert all(r.measured_degree == 2 for r in sweep["skeen"].values())

    def test_global_constant_four(self, sweep):
        assert all(r.measured_degree == 4 for r in sweep["global"].values())

    def test_ring_grows_linearly_with_k(self, sweep):
        degrees = {k: r.measured_degree for k, r in sweep["ring"].items()}
        # Our caster sits in the first ring group, so measured = k
        # where the paper's accounting says k+1; linear either way.
        assert degrees == {2: 2, 3: 3, 4: 4}

    def test_ring_loses_to_a1_beyond_two_groups(self, sweep):
        for k in (3, 4):
            assert (sweep["ring"][k].measured_degree
                    > sweep["a1"][k].measured_degree)


class TestMessageComplexityColumn:
    def test_ring_is_cheapest_at_large_k(self, sweep):
        """[4]'s O(kd²) beats the O(k²d²) protocols as k grows."""
        k = 4
        assert (sweep["ring"][k].measured_inter_msgs
                < sweep["a1"][k].measured_inter_msgs)
        assert (sweep["ring"][k].measured_inter_msgs
                < sweep["global"][k].measured_inter_msgs)

    def test_a1_cheaper_than_fritzke(self, sweep):
        """Non-uniform rmcast beats [5]'s uniform primitive."""
        for k in (2, 3, 4):
            assert (sweep["a1"][k].measured_inter_msgs
                    <= sweep["fritzke"][k].measured_inter_msgs)

    def test_quadratic_growth_in_k_for_a1(self, sweep):
        """O(k²d²): doubling k should much-more-than-double messages."""
        ratio = (sweep["a1"][4].measured_inter_msgs
                 / sweep["a1"][2].measured_inter_msgs)
        assert ratio > 2.5

    def test_linear_growth_in_k_for_ring(self, sweep):
        """O(kd²): ring grows linearly in k — strictly slower than the
        quadratic protocols (2d²(k-1) exactly: 8, 16, 24 for k=2,3,4)."""
        ring_ratio = (sweep["ring"][4].measured_inter_msgs
                      / sweep["ring"][2].measured_inter_msgs)
        a1_ratio = (sweep["a1"][4].measured_inter_msgs
                    / sweep["a1"][2].measured_inter_msgs)
        assert ring_ratio <= 3.2
        assert ring_ratio < a1_ratio


class TestScalingInGroupSize:
    def test_a1_quadratic_in_d(self):
        small = run_fig1a_single("a1", k=2, d=2, seed=1)
        large = run_fig1a_single("a1", k=2, d=4, seed=1)
        # d doubled: O(k²d²) predicts ~4x inter-group messages.
        ratio = large.measured_inter_msgs / small.measured_inter_msgs
        assert 2.5 < ratio < 6.0


def test_regenerate_table(benchmark):
    """Wall-clock the full Figure 1(a) regeneration and print it."""
    table = benchmark.pedantic(fig1a_table, kwargs={"k": 2, "d": 3},
                               rounds=1, iterations=1)
    print()
    print(table)
    assert "Algorithm A1" in table
