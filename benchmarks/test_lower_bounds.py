"""Benchmark: empirical stress test of the Section 3 lower bounds.

A counterexample hunt across seeds, topologies, casters and timings:

* every genuine multicast implementation must measure Δ >= 2 on every
  multi-group message (Propositions 3.1 + 3.2);
* the non-genuine control must reach Δ = 1 (the bound is about
  genuineness, not about our harness);
* every post-quiescence broadcast must measure Δ >= 2
  (Proposition 3.3 + Theorem 5.2).
"""

import pytest

from repro.experiments.lower_bounds import (
    GENUINE_MULTICASTS,
    lower_bound_table,
    search_genuine_counterexamples,
    search_nongenuine_witness,
    search_quiescence_cost,
)


@pytest.mark.parametrize("protocol", GENUINE_MULTICASTS)
def test_no_genuine_counterexample(protocol):
    """The heart of Prop 3.1: no genuine run beats degree 2."""
    search = search_genuine_counterexamples(
        protocol, seeds=range(5),
        topologies=((2, 2), (3, 3)),
        cast_offsets=(0.0, 0.7),
    )
    assert search.runs > 0
    assert search.min_degree >= 2, (
        f"{protocol} violated the genuine multicast lower bound: "
        f"degree histogram {search.degrees}"
    )


def test_bound_is_tight_for_a1():
    """A1 *achieves* 2 — the bound is tight (Theorem 4.1)."""
    search = search_genuine_counterexamples(
        "a1", seeds=range(5), topologies=((2, 2), (3, 3)),
        cast_offsets=(0.0,),
    )
    assert search.min_degree == 2


def test_nongenuine_control_reaches_one():
    """Dropping genuineness makes degree 1 reachable."""
    witness = search_nongenuine_witness(seeds=range(5))
    assert witness.min_degree == 1


def test_quiescence_cost_never_below_two():
    """Prop 3.3: a quiescent algorithm pays 2 for late messages."""
    search = search_quiescence_cost(seeds=range(5),
                                    gaps=(50.0, 100.0, 500.0))
    assert search.min_degree >= 2


def test_quiescence_cost_is_exactly_two_somewhere():
    """Theorem 5.2's run achieves the bound."""
    search = search_quiescence_cost(seeds=range(5), gaps=(200.0,))
    assert search.min_degree == 2


def test_regenerate_table(benchmark):
    """Wall-clock the full hunt (the printed artefact)."""
    table = benchmark.pedantic(lower_bound_table, rounds=1, iterations=1)
    print()
    print(table)
    assert "VIOLATED" not in table
