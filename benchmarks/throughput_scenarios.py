"""Canonical throughput scenarios shared by the benchmark suite.

Each scenario is a fixed (protocol, topology, workload plan) triple that
drives a complete simulated run and reports how fast the *simulator*
chewed through it: wall-clock seconds, kernel events per wall second,
and simulated network messages per wall second.  The workload plan is a
pure function of the seed and topology, so the identical plan can be
replayed against different engine versions — `BASELINE_FILE` stores the
numbers measured at the pre-refactor seed commit and
``benchmarks/test_throughput.py`` compares fresh runs against it.

Scenario names are stable identifiers; do not rename without migrating
``baseline_throughput.json``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List

from repro.runtime.builder import System, build_system
from repro.workload.generators import (
    burst_workload,
    poisson_workload,
    schedule_workload,
    uniform_k_groups,
)

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_FILE = os.path.join(HERE, "baseline_throughput.json")
REPORT_FILE = os.path.join(os.path.dirname(HERE), "BENCH_throughput.json")


@dataclass
class ThroughputResult:
    """One scenario's outcome (correctness counts + wall-clock speed).

    ``events_per_sec`` counts *simulated message events* (network copies
    pushed through the engine) per wall-clock second.  Because a
    scenario replays a fixed workload plan, this numerator is identical
    across engine versions and the ratio of two runs equals their
    wall-time ratio — the fair basis for before/after comparisons.
    ``kernel_events_per_sec`` counts raw kernel events, which the
    batched network *reduces* for the same work, so it understates
    engine speedups by design.

    ``fd_messages`` counts failure-detector heartbeat copies.  The
    elided heartbeat mode removes exactly those (it provably changes
    nothing else — see :mod:`repro.failure.harness`), so heartbeat
    scenarios compare on :attr:`app_events_per_sec`, whose numerator
    (protocol traffic) stays identical across detector modes.
    """

    scenario: str
    protocol: str
    casts: int
    deliveries: int
    events_executed: int
    network_messages: int
    virtual_end: float
    wall_seconds: float
    fd_messages: int = 0
    # Reliable-transport runs record their counters; bare runs keep the
    # zeros.  At zero loss retransmits must stay 0 (the RTO is derived
    # from the fixed link latency) and acks are the whole overhead.
    tsp_retransmits: int = 0
    tsp_acks: int = 0
    # Parallel-kernel runs record how they were executed; serial runs
    # keep the defaults.  cpu_count is the honest context for any
    # speedup number — on a single-core host the sub-kernels time-share
    # one core and the parallel wall clock can only measure overhead.
    kernel: str = "serial"
    executor: str = ""
    jobs: int = 0
    cpu_count: int = 0

    @property
    def events_per_sec(self) -> float:
        """Simulated message events per wall-clock second."""
        return self.network_messages / self.wall_seconds

    @property
    def kernel_events_per_sec(self) -> float:
        return self.events_executed / self.wall_seconds

    @property
    def msgs_per_sec(self) -> float:
        """Alias of :attr:`events_per_sec` (simulated msgs / wall sec)."""
        return self.network_messages / self.wall_seconds

    @property
    def app_messages(self) -> int:
        """Network copies excluding failure-detector heartbeats."""
        return self.network_messages - self.fd_messages

    @property
    def app_events_per_sec(self) -> float:
        """Protocol (non-detector) message events per wall second."""
        return self.app_messages / self.wall_seconds

    def to_json(self) -> dict:
        data = asdict(self)
        data["events_per_sec"] = round(self.events_per_sec, 1)
        data["kernel_events_per_sec"] = round(self.kernel_events_per_sec, 1)
        data["msgs_per_sec"] = round(self.msgs_per_sec, 1)
        data["app_events_per_sec"] = round(self.app_events_per_sec, 1)
        data["wall_seconds"] = round(self.wall_seconds, 4)
        return data


def _run(name: str, system: System, plans) -> ThroughputResult:
    schedule_workload(system, plans)
    if hasattr(system.endpoints[0], "start_rounds"):
        system.start_rounds()
    t0 = time.perf_counter()
    system.run_quiescent(max_events=50_000_000)
    wall = time.perf_counter() - t0
    deliveries = sum(
        len(system.log.sequence(pid)) for pid in system.log.processes()
    )
    transport = getattr(system, "transport", None)
    return ThroughputResult(
        scenario=name,
        protocol=system.protocol_name,
        casts=len(system.log.cast_messages()),
        deliveries=deliveries,
        events_executed=system.sim.events_executed,
        network_messages=system.network.stats.total_messages,
        virtual_end=system.sim.now,
        wall_seconds=max(wall, 1e-9),
        fd_messages=sum(count for kind, count
                        in system.network.stats.by_kind.items()
                        if kind.startswith("fd.")),
        tsp_retransmits=(transport.stats.retransmits
                         + transport.stats.fast_retransmits
                         if transport is not None else 0),
        tsp_acks=(transport.stats.acks_sent
                  if transport is not None else 0),
    )


def poisson_hi_a1(seed: int = 42) -> ThroughputResult:
    """The headline scenario: high-rate Poisson multicast through A1.

    ~6k messages in 40 virtual time units keeps hundreds of messages
    in flight at once — the regime where PENDING depth makes delivery
    and proposal costs matter, per the refactor's motivation.
    """
    system = build_system(protocol="a1", group_sizes=[3, 3, 3], seed=seed)
    plans = poisson_workload(
        system.topology, system.rng.stream("wl"),
        rate=150.0, duration=40.0,
        destinations=uniform_k_groups(2),
    )
    return _run("poisson_hi_a1", system, plans)


def poisson_hi_a2(seed: int = 42) -> ThroughputResult:
    """High-rate Poisson broadcast through A2's proactive rounds."""
    system = build_system(protocol="a2", group_sizes=[3, 3, 3], seed=seed)
    plans = poisson_workload(
        system.topology, system.rng.stream("wl"),
        rate=30.0, duration=40.0,
    )
    return _run("poisson_hi_a2", system, plans)


def burst_a1(seed: int = 42) -> ThroughputResult:
    """Bursty multicast: deep PENDING sets stress the delivery queue."""
    system = build_system(protocol="a1", group_sizes=[3, 3, 3], seed=seed)
    plans = burst_workload(
        system.topology, system.rng.stream("wl"),
        bursts=8, burst_size=60, gap=12.0,
        destinations=uniform_k_groups(2),
    )
    return _run("burst_a1", system, plans)


def poisson_skeen(seed: int = 42) -> ThroughputResult:
    """Failure-free baseline (decentralised Skeen) under the same load."""
    system = build_system(protocol="skeen", group_sizes=[3, 3, 3], seed=seed)
    plans = poisson_workload(
        system.topology, system.rng.stream("wl"),
        rate=30.0, duration=40.0,
        destinations=uniform_k_groups(2),
    )
    return _run("poisson_skeen", system, plans)


def poisson_sequencer(seed: int = 42) -> ThroughputResult:
    """Sequencer broadcast baseline under the same Poisson load."""
    system = build_system(protocol="sequencer", group_sizes=[3, 3, 3],
                          seed=seed)
    plans = poisson_workload(
        system.topology, system.rng.stream("wl"),
        rate=30.0, duration=40.0,
    )
    return _run("poisson_sequencer", system, plans)


# ----------------------------------------------------------------------
# Large-n heartbeat scenarios
# ----------------------------------------------------------------------
#: 64 processes in 8 groups — the regime where per-run O(n·|group|)
#: detector traffic dwarfs the protocol's own messages.
HB_GROUP_SIZES = [8] * 8
HB_PERIOD = 2.5
HB_TIMEOUT = 12.5


def _hb_system(protocol: str, mode: str, seed: int,
               horizon: float) -> System:
    """A large-n system under a heartbeat detector in ``mode``."""
    return build_system(
        protocol=protocol, group_sizes=HB_GROUP_SIZES, seed=seed,
        detector="heartbeat-elided" if mode == "elided" else "heartbeat",
        heartbeat_period=HB_PERIOD, heartbeat_timeout=HB_TIMEOUT,
        heartbeat_horizon=horizon,
    )


def hb_large_a1(seed: int = 42, mode: str = "elided") -> ThroughputResult:
    """A1 across 8×8 processes with a live heartbeat failure detector.

    ``mode="messages"`` is the pre-PR-equivalent baseline: real
    heartbeat copies (~538k of them — O(n·|group|) per period up to the
    horizon) flow through the network.  ``mode="elided"`` (the default,
    what the suite measures) derives the identical suspicion behaviour
    analytically and sends none; ``benchmarks/test_throughput.py`` runs
    the determinism harness on this very configuration before trusting
    the numbers.
    """
    system = _hb_system("a1", mode, seed, horizon=3_000.0)
    plans = poisson_workload(
        system.topology, system.rng.stream("wl"),
        rate=1.5, duration=60.0,
        destinations=uniform_k_groups(2),
    )
    return _run("hb_large_a1", system, plans)


def hb_large_a2(seed: int = 42, mode: str = "elided") -> ThroughputResult:
    """A2 broadcast across 8×8 processes under heartbeats.

    Broadcast puts every process in every destination set, so the
    protocol itself is chatty at n=64; the longer horizon keeps
    detector traffic dominant in message mode, which is exactly the
    overhead profile the elided mode removes.
    """
    system = _hb_system("a2", mode, seed, horizon=4_000.0)
    plans = poisson_workload(
        system.topology, system.rng.stream("wl"),
        rate=0.15, duration=60.0,
    )
    return _run("hb_large_a2", system, plans)


def poisson_hi_a1_transport(seed: int = 42) -> ThroughputResult:
    """The headline scenario with the reliable transport mounted.

    Identical topology, seed and workload plan to ``poisson_hi_a1``; the
    only difference is ``transport="reliable"``, so every data copy
    carries a sequence-number/checksum header and every link runs the
    ack/dedup machinery.  The links are perfect here (no adversary), so
    the delta against the base scenario prices the transport's *fixed*
    overhead: header handling, ack copies and timer bookkeeping, with
    zero retransmissions — ``benchmarks/test_throughput.py`` asserts
    that zero and bounds the wall-clock ratio.
    """
    system = build_system(protocol="a1", group_sizes=[3, 3, 3], seed=seed,
                          transport="reliable")
    plans = poisson_workload(
        system.topology, system.rng.stream("wl"),
        rate=150.0, duration=40.0,
        destinations=uniform_k_groups(2),
    )
    return _run("poisson_hi_a1_transport", system, plans)


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_parallel(name: str, system, plans) -> ThroughputResult:
    """Mirror of :func:`_run` for a ``ParallelSystem``.

    The plan list is scheduled through the parallel plan API (the
    sub-kernels own their processes' clocks, so ``schedule_workload``'s
    direct ``call_at`` path does not apply), everything else measures
    the same way — the semantic fields (casts, deliveries, network
    messages) must come out identical to the serial scenario.
    """
    system.schedule_plans(plans)
    if hasattr(system.endpoints[0], "start_rounds"):
        system.start_rounds()
    t0 = time.perf_counter()
    system.run_quiescent(max_events=50_000_000)
    wall = time.perf_counter() - t0
    deliveries = sum(
        len(system.log.sequence(pid)) for pid in system.log.processes()
    )
    return ThroughputResult(
        scenario=name,
        protocol=system.protocol_name,
        casts=len(system.log.cast_messages()),
        deliveries=deliveries,
        events_executed=system.sim.events_executed,
        network_messages=system.network.stats.total_messages,
        virtual_end=system.sim.now,
        wall_seconds=max(wall, 1e-9),
        fd_messages=sum(count for kind, count
                        in system.network.stats.by_kind.items()
                        if kind.startswith("fd.")),
        kernel="parallel",
        executor=system.executor_used,
        jobs=system.jobs,
        cpu_count=_available_cpus(),
    )


def _hb_parallel(protocol: str, horizon: float, seed: int,
                 jobs: int, executor: str):
    if executor is None:
        # Threads cannot speed up pure-Python sub-kernels (GIL); real
        # parallelism needs processes, which only pay off with >= 2
        # CPUs.  Inline still exercises the full partitioned path and
        # honestly measures its overhead on single-core hosts.
        executor = "processes" if _available_cpus() >= 2 else "inline"
    return build_system(
        protocol=protocol, group_sizes=HB_GROUP_SIZES, seed=seed,
        detector="heartbeat-elided",
        heartbeat_period=HB_PERIOD, heartbeat_timeout=HB_TIMEOUT,
        heartbeat_horizon=horizon,
        kernel="parallel", jobs=jobs, executor=executor,
    )


def hb_large_a1_parallel(seed: int = 42, jobs: int = 0,
                         executor: str = None) -> ThroughputResult:
    """``hb_large_a1`` under the conservative parallel kernel.

    Same topology, workload plan and elided detector as the serial
    scenario; eight per-group sub-kernels synchronized at unit-lookahead
    epoch barriers.  Semantic fields must equal ``hb_large_a1``'s —
    ``benchmarks/test_throughput.py`` asserts it.
    """
    system = _hb_parallel("a1", horizon=3_000.0, seed=seed,
                          jobs=jobs, executor=executor)
    plans = poisson_workload(
        system.topology, system.rng.stream("wl"),
        rate=1.5, duration=60.0,
        destinations=uniform_k_groups(2),
    )
    return _run_parallel("hb_large_a1_parallel", system, plans)


def hb_large_a2_parallel(seed: int = 42, jobs: int = 0,
                         executor: str = None) -> ThroughputResult:
    """``hb_large_a2`` under the conservative parallel kernel."""
    system = _hb_parallel("a2", horizon=4_000.0, seed=seed,
                          jobs=jobs, executor=executor)
    plans = poisson_workload(
        system.topology, system.rng.stream("wl"),
        rate=0.15, duration=60.0,
    )
    return _run_parallel("hb_large_a2_parallel", system, plans)


SCENARIOS: Dict[str, Callable[[], ThroughputResult]] = {
    "poisson_hi_a1": poisson_hi_a1,
    "poisson_hi_a2": poisson_hi_a2,
    "burst_a1": burst_a1,
    "poisson_skeen": poisson_skeen,
    "poisson_sequencer": poisson_sequencer,
    "hb_large_a1": hb_large_a1,
    "hb_large_a2": hb_large_a2,
}

#: Heartbeat scenarios: measured in elided mode against committed
#: message-mode baselines; compared on ``app_events_per_sec``.
HB_SCENARIOS = ("hb_large_a1", "hb_large_a2")

#: Parallel-kernel scenarios, kept out of ``SCENARIOS`` (they have no
#: pre-refactor baseline entry); mapped to the serial scenario whose
#: semantic fields they must reproduce exactly.
PARALLEL_SCENARIOS: Dict[str, Callable[[], ThroughputResult]] = {
    "hb_large_a1_parallel": hb_large_a1_parallel,
    "hb_large_a2_parallel": hb_large_a2_parallel,
}
PARALLEL_BASE = {
    "hb_large_a1_parallel": "hb_large_a1",
    "hb_large_a2_parallel": "hb_large_a2",
}

#: Reliable-transport scenarios, also kept out of ``SCENARIOS`` (no
#: pre-transport baseline entry); mapped to the bare scenario whose
#: semantic fields (casts/deliveries) they must reproduce and whose
#: wall clock bounds their fixed overhead.
TRANSPORT_SCENARIOS: Dict[str, Callable[[], ThroughputResult]] = {
    "poisson_hi_a1_transport": poisson_hi_a1_transport,
}
TRANSPORT_BASE = {
    "poisson_hi_a1_transport": "poisson_hi_a1",
}


def run_all() -> List[ThroughputResult]:
    return [fn() for fn in SCENARIOS.values()]


def load_baseline() -> dict:
    with open(BASELINE_FILE) as fh:
        return json.load(fh)


if __name__ == "__main__":
    results = {r.scenario: r.to_json() for r in run_all()}
    print(json.dumps(results, indent=2))
