"""Benchmark: Section 5.3's broadcast-rate sweep over 100 ms WAN links.

The paper's claim: with 100 ms inter-group latency, ~10 msg/s keeps
Algorithm A2 permanently non-reactive with every round useful.  The
sweep must show:

* useful-round fraction increasing with rate and ~1 at high rates;
* mean delivery latency roughly flat (rounds amortise over messages);
* low rates wasting rounds (the quiescence machinery cycling).
"""

import pytest

from repro.experiments.rate_sweep import rate_table, run_rate_point, sweep


@pytest.fixture(scope="module")
def points():
    """A shortened sweep shared by the shape assertions."""
    return {
        rate: run_rate_point(rate, seed=1, duration_ms=10_000.0)
        for rate in (1.0, 10.0, 50.0)
    }


class TestUsefulRounds:
    def test_high_rate_rounds_nearly_all_useful(self, points):
        assert points[50.0].useful_round_fraction > 0.9

    def test_usefulness_increases_with_rate(self, points):
        assert (points[1.0].useful_round_fraction
                < points[10.0].useful_round_fraction
                < points[50.0].useful_round_fraction)

    def test_low_rate_wastes_rounds(self, points):
        assert points[1.0].useful_round_fraction < 0.8


class TestLatency:
    def test_latency_flat_across_rates(self, points):
        """Throughput scales without hurting latency (proactive rounds)."""
        low, high = points[1.0].mean_latency_ms, points[50.0].mean_latency_ms
        assert high < low * 1.5

    def test_latency_order_of_a_round_trip(self, points):
        """~1-2 round trips of the 100 ms links, not more."""
        assert points[50.0].mean_latency_ms < 400.0

    def test_all_messages_delivered(self, points):
        for point in points.values():
            assert point.messages > 0


class TestDegreeOne:
    def test_warm_path_exists_at_high_rate(self, points):
        """Some messages catch the open bundling window (degree 1)."""
        assert points[50.0].degree1_fraction > 0.0

    def test_wider_bundling_window_raises_degree1_fraction(self):
        """The degree-1 fraction tracks propose_delay/round-duration."""
        narrow = run_rate_point(20.0, seed=1, duration_ms=8_000.0)
        # Re-run with a 25 ms window instead of the default 5 ms.
        from repro.net.topology import LatencyModel
        from repro.runtime.builder import build_system
        from repro.workload.generators import (
            poisson_workload, schedule_workload,
        )

        system = build_system(
            protocol="a2", group_sizes=[3, 3], seed=1,
            latency=LatencyModel.wan(intra_ms=1.0, inter_ms=100.0,
                                     inter_jitter_ms=2.0),
            propose_delay=25.0,
        )
        plans = poisson_workload(system.topology, system.rng.stream("wl"),
                                 rate=0.02, duration=8_000.0)
        msgs = schedule_workload(system, plans)
        system.run_quiescent()
        degrees = [system.meter.latency_degree(m.mid) for m in msgs]
        degrees = [d for d in degrees if d is not None]
        wide_fraction = sum(1 for d in degrees if d <= 1) / len(degrees)
        assert wide_fraction > narrow.degree1_fraction


def test_regenerate_table(benchmark):
    """Wall-clock a compact version of the printed sweep."""
    table = benchmark.pedantic(
        rate_table,
        args=([run_rate_point(r, seed=1, duration_ms=6_000.0)
               for r in (1.0, 5.0, 10.0, 50.0)],),
        rounds=1, iterations=1,
    )
    print()
    print(table)
    assert "msg/s" in table
