"""Benchmark: ablation of A1's stage skipping (vs Fritzke et al. [5]).

The paper's §6 claim, quantified: removing A1's optimisations must not
change the latency degree or the inter-group message count, but must
increase the intra-group message count (extra consensus instances), and
swapping in [5]'s uniform reliable multicast must additionally raise
the inter-group count.
"""

import pytest

from repro.experiments.ablation import ablation_table, run_variant


@pytest.fixture(scope="module")
def variants():
    """All three variants on the shared Zipf-local workload."""
    return {
        protocol: run_variant(protocol, seed=1)
        for protocol in ("a1", "a1-noskip", "fritzke")
    }


class TestPaperClaim:
    def test_latency_degree_unchanged(self, variants):
        """'This has no impact on the latency degree.'"""
        degrees = {v.multi_group_degree for v in variants.values()}
        assert degrees == {2}

    def test_inter_group_count_unchanged_by_skipping(self, variants):
        """'... or on the number of inter-group messages sent.'"""
        assert variants["a1"].inter_msgs == variants["a1-noskip"].inter_msgs

    def test_skipping_saves_intra_group_messages(self, variants):
        """'However, our algorithm sends fewer intra-group messages.'"""
        assert variants["a1"].intra_msgs < variants["a1-noskip"].intra_msgs

    def test_uniform_rmcast_costs_inter_group_messages(self, variants):
        """[5]'s uniform primitive relays across groups."""
        assert (variants["fritzke"].inter_msgs
                > variants["a1-noskip"].inter_msgs)

    def test_full_stack_ordering(self, variants):
        """Total cost strictly decreases with each optimisation."""
        total = {name: v.inter_msgs + v.intra_msgs
                 for name, v in variants.items()}
        assert total["a1"] < total["a1-noskip"] < total["fritzke"]


class TestSavingsScaleWithLocality:
    def test_single_group_heavy_workload_benefits_most(self):
        """Stage skipping mostly pays off on single-group messages."""
        a1 = run_variant("a1", seed=3)
        noskip = run_variant("a1-noskip", seed=3)
        saving = (noskip.intra_msgs - a1.intra_msgs) / noskip.intra_msgs
        assert saving > 0.15


def test_regenerate_table(benchmark):
    """Wall-clock the printed ablation table."""
    table = benchmark.pedantic(ablation_table, rounds=1, iterations=1)
    print()
    print(table)
    assert "stage skipping" in table
