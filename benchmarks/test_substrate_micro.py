"""Microbenchmarks of the substrate: kernel, consensus, protocols.

These are classic pytest-benchmark wall-clock measurements (the other
benchmark files are paper-artefact regenerations).  They track the
simulator's own performance so protocol experiments stay fast enough to
sweep.
"""

import pytest

from repro.net.topology import LatencyModel
from repro.runtime.builder import build_system
from repro.sim.kernel import Simulator
from repro.workload.generators import periodic_workload, schedule_workload


def test_kernel_event_throughput(benchmark):
    """Raw event scheduling + dispatch rate."""

    def run():
        sim = Simulator()
        count = 100_000
        for i in range(count):
            sim.schedule(float(i % 97) / 10.0, lambda: None)
        sim.run()
        return sim.events_executed

    events = benchmark(run)
    assert events == 100_000


def test_consensus_instance_rate(benchmark):
    """Sequential consensus instances inside one 3-process group."""

    def run():
        system = build_system(protocol="a1", group_sizes=[3], seed=1)
        plans = periodic_workload(system.topology, period=0.5, count=100,
                                  senders=[0])
        schedule_workload(system, plans)
        system.run_quiescent()
        return system.log.delivery_count()

    deliveries = benchmark(run)
    assert deliveries == 300  # 100 messages x 3 processes


def test_a1_multigroup_throughput(benchmark):
    """A1 end-to-end: 60 two-group multicasts over 3 groups."""

    def run():
        system = build_system(protocol="a1", group_sizes=[3, 3, 3], seed=1)
        plans = periodic_workload(system.topology, period=0.4, count=60)
        schedule_workload(system, plans)
        system.run_quiescent()
        return system.log.delivery_count()

    deliveries = benchmark(run)
    assert deliveries == 60 * 9


def test_a2_round_throughput(benchmark):
    """A2 end-to-end: 60 broadcasts over 2 groups under WAN latency."""

    def run():
        system = build_system(
            protocol="a2", group_sizes=[3, 3], seed=1,
            latency=LatencyModel.wan(), propose_delay=5.0,
        )
        plans = periodic_workload(system.topology, period=20.0, count=60)
        schedule_workload(system, plans)
        system.run_quiescent()
        return system.log.delivery_count()

    deliveries = benchmark(run)
    assert deliveries == 60 * 6
