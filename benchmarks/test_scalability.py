"""Benchmark: scalability sweep — Figure 1's asymptotics, measured.

Assertions pin the growth rates:

* A1's per-message inter-group cost is flat in the total group count
  when k is fixed (genuineness keeps bystander groups out);
* A2's per-message cost grows superlinearly with the group count
  (every group participates in every round);
* A1's cost grows ~quadratically in the group size d (O(k²d²));
* the ring's cost grows ~linearly in d² but stays below A1's for
  larger k (O(kd²) vs O(k²d²)).
"""

import pytest

from repro.experiments.scalability import (
    run_scale_point,
    scalability_table,
    sweep_group_size,
    sweep_groups,
)


@pytest.fixture(scope="module")
def group_sweeps():
    return {protocol: sweep_groups(protocol, group_counts=(2, 4, 6), d=2)
            for protocol in ("a1", "a2")}


class TestGroupCountScaling:
    def test_a1_flat_in_total_groups(self, group_sweeps):
        points = group_sweeps["a1"]
        assert points[6].inter_per_msg <= points[2].inter_per_msg * 1.3

    def test_a2_grows_with_groups(self, group_sweeps):
        points = group_sweeps["a2"]
        assert points[6].inter_per_msg > points[2].inter_per_msg * 5

    def test_crossover_genuine_wins_at_scale(self, group_sweeps):
        """At 6 groups, genuine multicast is much cheaper per op."""
        a1 = group_sweeps["a1"][6].inter_per_msg
        a2 = group_sweeps["a2"][6].inter_per_msg
        assert a2 > 5 * a1

    def test_small_system_broadcast_competitive(self, group_sweeps):
        """At 2 groups the two coincide (k = G): broadcast is fine."""
        a1 = group_sweeps["a1"][2].inter_per_msg
        a2 = group_sweeps["a2"][2].inter_per_msg
        assert a2 < a1 * 1.5


class TestGroupSizeScaling:
    def test_a1_quadratic_in_d(self):
        points = sweep_group_size("a1", sizes=(2, 4), groups=2)
        ratio = points[4].inter_per_msg / points[2].inter_per_msg
        assert ratio > 2.5  # d doubled: O(d²) predicts ~4x

    def test_sequencer_quadratic_in_n(self):
        points = sweep_group_size("sequencer", sizes=(2, 4), groups=2)
        ratio = points[4].inter_per_msg / points[2].inter_per_msg
        assert ratio > 2.5

    def test_optimistic_linear_in_n(self):
        points = sweep_group_size("optimistic", sizes=(2, 4), groups=2)
        ratio = points[4].inter_per_msg / points[2].inter_per_msg
        assert ratio < 2.5


class TestLatencyStability:
    def test_a1_latency_flat_in_system_size(self, group_sweeps):
        """Hops, not system size, set the latency."""
        points = group_sweeps["a1"]
        assert points[6].mean_worst_latency < points[2].mean_worst_latency * 1.5

    def test_a2_latency_flat_in_system_size(self, group_sweeps):
        points = group_sweeps["a2"]
        assert points[6].mean_worst_latency < points[2].mean_worst_latency * 1.5


def test_regenerate_table(benchmark):
    """Wall-clock the printed scalability sweep."""
    table = benchmark.pedantic(scalability_table, rounds=1, iterations=1)
    print()
    print(table)
    assert "inter/msg" in table
