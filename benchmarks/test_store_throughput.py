"""Benchmark: serving-layer throughput, genuine vs broadcast routing.

The paper's central scalability claim, measured end to end through the
transactional store: a one-shot transaction should involve only the
groups that own the keys it touches.  At 8 groups with a mostly-2-
partition mix, genuine A1 moves a small constant number of groups per
transaction while the two broadcast alternatives (the non-genuine
wrapper and broadcast-everything A2) drag all 8 groups into every
transaction — so the same committed workload costs them several times
the message traffic and, therefore, several times the wall clock.

Pinned here:

* **Semantics** — all three deployments commit the *identical*
  transaction set (same seeded plan), pass the one-copy-serializability
  and convergence checkers, and the paper's uniform properties;
* **Structure** (machine-independent) — the broadcast deployments move
  ≥ 2x A1's network copies at 8 groups;
* **Throughput** (wall-clock, skipped on shared CI runners like the
  engine benchmarks) — genuine A1 sustains ≥ ``MIN_STORE_SPEEDUP``x
  the committed-transactions-per-second of broadcast-everything A2
  (~3-4x measured on an idle machine).

The measured numbers land in ``BENCH_store.json`` at the repository
root so later PRs inherit the serving-layer perf trajectory.  The
engine benchmarks (``test_throughput.py``) are untouched and keep
asserting against their own committed baselines.
"""

import dataclasses
import json
import os
import time

import pytest

from repro.checkers.properties import check_all
from repro.store import StoreCluster, StoreSpec, check_serializability

REPORT_FILE = os.path.join(os.path.dirname(__file__), "..",
                           "BENCH_store.json")

#: Loose wall-clock floor for genuine-vs-broadcast throughput at 8
#: groups; the real measurement (~3-4x) lands in BENCH_store.json.
MIN_STORE_SPEEDUP = 1.5

#: Broadcast must move at least this many times A1's copies at 8 groups
#: (deterministic count, asserted everywhere — measured ~7x).
MIN_TRAFFIC_RATIO = 2.0

# Same rule as benchmarks/test_throughput.py: wall-clock assertions are
# only meaningful on an unloaded machine class; CI keeps the semantic
# and structural assertions.
WALL_CLOCK_COMPARABLE = (
    os.environ.get("REPRO_BENCH_STRICT") == "1"
    or not os.environ.get("CI")
)
needs_comparable_wall_clock = pytest.mark.skipif(
    not WALL_CLOCK_COMPARABLE,
    reason="wall-clock ratios not comparable on shared CI runners "
           "(set REPRO_BENCH_STRICT=1 to force)",
)

GROUPS = [2] * 8
SPEC = StoreSpec(
    n_keys=64, data_groups=tuple(range(8)), routing="genuine",
    rate=4.0, duration=90.0, read_fraction=0.5,
    multi_partition_fraction=0.4, ops_per_txn=2, zipf_skew=1.0,
)
SEED = 42

DEPLOYMENTS = {
    "a1_genuine": ("a1", "genuine"),
    "nongenuine": ("nongenuine", "genuine"),
    "a2_broadcast": ("a2", "broadcast"),
}


def _run(protocol: str, routing: str):
    spec = dataclasses.replace(SPEC, routing=routing)
    t0 = time.perf_counter()
    cluster = StoreCluster.build(GROUPS, store=spec, protocol=protocol,
                                 seed=SEED)
    cluster.system.run_quiescent()
    wall = time.perf_counter() - t0
    return cluster, wall


@pytest.fixture(scope="module")
def results():
    """Run every deployment (best of 2 walls) and write the report."""
    measured = {}
    for name, (protocol, routing) in DEPLOYMENTS.items():
        best_cluster, best_wall = None, None
        for _ in range(2):
            cluster, wall = _run(protocol, routing)
            if best_wall is None or wall < best_wall:
                best_cluster, best_wall = cluster, wall
        measured[name] = (best_cluster, best_wall)

    report = {
        "metric": (
            "txns_per_sec = committed one-shot transactions per "
            "wall-clock second; every deployment replays the identical "
            "seeded plan, so the ratio equals the wall-time ratio"
        ),
        "topology": {"groups": len(GROUPS), "processes": sum(GROUPS)},
        "workload": {
            "planned_txns": len(measured["a1_genuine"][0].plans),
            "read_fraction": SPEC.read_fraction,
            "multi_partition_fraction": SPEC.multi_partition_fraction,
            "seed": SEED,
        },
        "deployments": {},
    }
    for name, (cluster, wall) in measured.items():
        committed = len(cluster.tracker.committed)
        report["deployments"][name] = {
            "protocol": DEPLOYMENTS[name][0],
            "routing": DEPLOYMENTS[name][1],
            "committed": committed,
            "wall_seconds": round(wall, 4),
            "txns_per_sec": round(committed / wall, 1),
            "network_messages":
                cluster.system.network.stats.total_messages,
            "kernel_events": cluster.system.sim.events_executed,
        }
    a1 = report["deployments"]["a1_genuine"]
    bc = report["deployments"]["a2_broadcast"]
    report["headline"] = {
        "comparison": "a1_genuine vs a2_broadcast at 8 groups",
        "speedup_txns_per_sec": round(
            a1["txns_per_sec"] / bc["txns_per_sec"], 2),
        "traffic_ratio": round(
            bc["network_messages"] / a1["network_messages"], 2),
    }
    with open(REPORT_FILE, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return measured


class TestSemantics:
    def test_identical_committed_transactions(self, results):
        committed = {
            name: tuple(sorted(cluster.tracker.committed))
            for name, (cluster, _) in results.items()
        }
        assert len(set(committed.values())) == 1
        reference = next(iter(results.values()))[0]
        assert len(reference.tracker.committed) == len(reference.plans)

    def test_every_deployment_serialisable_and_convergent(self, results):
        # NB: the three deployments may order *concurrent* conflicting
        # writes differently (each order is serialisable on its own),
        # so final states are not compared across deployments — each
        # run is held to its own one-copy replay instead.
        for name, (cluster, _) in results.items():
            check_serializability(cluster)
            cluster.assert_convergence()
            check_all(cluster.system.log, cluster.system.topology,
                      cluster.system.crashes)


class TestStructure:
    def test_broadcast_moves_multiples_of_genuine_traffic(self, results):
        a1 = results["a1_genuine"][0].system.network.stats.total_messages
        for name in ("nongenuine", "a2_broadcast"):
            other = results[name][0].system.network.stats.total_messages
            ratio = other / a1
            assert ratio >= MIN_TRAFFIC_RATIO, (
                f"{name}: traffic ratio {ratio:.2f}x under "
                f"{MIN_TRAFFIC_RATIO}x"
            )

    def test_report_file_written(self, results):
        with open(REPORT_FILE) as fh:
            report = json.load(fh)
        assert set(report["deployments"]) == set(DEPLOYMENTS)
        assert report["headline"]["traffic_ratio"] >= MIN_TRAFFIC_RATIO


class TestThroughput:
    @needs_comparable_wall_clock
    def test_genuine_sustains_higher_txns_per_sec(self, results):
        def txns_per_sec(name):
            cluster, wall = results[name]
            return len(cluster.tracker.committed) / wall

        speedup = txns_per_sec("a1_genuine") / txns_per_sec("a2_broadcast")
        assert speedup >= MIN_STORE_SPEEDUP, (
            f"genuine A1 at {speedup:.2f}x broadcast, "
            f"floor {MIN_STORE_SPEEDUP}x"
        )
