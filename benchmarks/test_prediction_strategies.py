"""Benchmark: quiescence-prediction strategies (paper §5.3 extension).

The paper's closing suggestion, quantified on a bursty workload.
Assertions pin the tradeoff's shape:

* a linger long enough to bridge the burst gap slashes wakeups
  (prediction mistakes / Theorem 5.2 situations);
* that costs strictly more empty rounds;
* the rate-adaptive strategy lands between the paper's rule and the
  long linger on both axes.
"""

import pytest

from repro.experiments.prediction import (
    STRATEGIES,
    prediction_table,
    run_all,
    run_strategy,
)


@pytest.fixture(scope="module")
def points():
    """All strategies on the shared bursty workload."""
    return {p.strategy: p for p in run_all(seed=1)}


class TestWakeupAxis:
    def test_long_linger_bridges_the_gap(self, points):
        paper = points["paper (stop on empty)"]
        linger = points["linger 20 rounds"]
        assert linger.wakeups < paper.wakeups / 2

    def test_short_linger_does_not(self, points):
        """A hedge shorter than the gap buys nothing but idle rounds."""
        paper = points["paper (stop on empty)"]
        short = points["linger 5 rounds"]
        assert short.wakeups == paper.wakeups

    def test_adaptive_beats_paper_rule(self, points):
        paper = points["paper (stop on empty)"]
        adaptive = points["rate-adaptive"]
        assert adaptive.wakeups < paper.wakeups


class TestIdleRoundAxis:
    def test_lingering_costs_empty_rounds(self, points):
        paper = points["paper (stop on empty)"]
        linger = points["linger 20 rounds"]
        assert linger.empty_rounds > paper.empty_rounds

    def test_empty_rounds_monotone_in_linger(self, points):
        assert (points["paper (stop on empty)"].empty_rounds
                < points["linger 5 rounds"].empty_rounds
                <= points["linger 20 rounds"].empty_rounds)


class TestDeliveryGuarantees:
    def test_every_strategy_delivers_everything(self, points):
        counts = {p.messages for p in points.values()}
        assert len(counts) == 1  # same workload, all delivered

    def test_runs_stay_quiescent(self):
        """Bounded strategies must not break Proposition A.9 — their
        runs end (run_strategy would trip its event budget otherwise)."""
        for name, factory in STRATEGIES:
            point = run_strategy(name, factory
                                 if name != "paper (stop on empty)"
                                 else None, seed=2, bursts=3)
            assert point.messages > 0


def test_regenerate_table(benchmark):
    """Wall-clock the printed strategy comparison."""
    table = benchmark.pedantic(prediction_table, rounds=1, iterations=1)
    print()
    print(table)
    assert "wakeups" in table
