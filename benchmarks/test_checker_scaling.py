"""Benchmark: streaming checkers vs the quadratic oracles at scale.

The acceptance bar for the streaming rewrite is a ≥5x checker pass on a
campaign-scale log; measured headroom is two orders of magnitude (the
old prefix check is O(p²·m), the old agreement check re-scanned every
sequence per message).  The log below mirrors the biggest campaign
shape — 8 groups, thousands of multicasts, full consistent delivery —
and both implementations must of course return the same verdict: ok.
"""

import os
import random
import sys
import time

import pytest

from repro.checkers.properties import (
    check_uniform_agreement,
    check_uniform_prefix_order,
)
from repro.core.interfaces import AppMessage
from repro.failure.schedule import CrashSchedule
from repro.net.topology import Topology
from repro.runtime.results import DeliveryLog

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "tests", "unit"))
from test_checkers_streaming import oracle_agreement, oracle_prefix_order

#: Required speedup of the streaming pass over the quadratic oracle.
MIN_CHECKER_SPEEDUP = 5.0

WALL_CLOCK_COMPARABLE = (
    os.environ.get("REPRO_BENCH_STRICT") == "1"
    or not os.environ.get("CI")
)


def _campaign_scale_log(n_messages=2_000, groups=8, group_size=3, seed=0):
    rng = random.Random(seed)
    topology = Topology([group_size] * groups)
    casts = {}
    log = DeliveryLog()
    for i in range(n_messages):
        k = rng.randint(1, groups // 2)
        dest = tuple(sorted(rng.sample(range(groups), k)))
        msg = AppMessage(mid=f"m{i}", sender=rng.randrange(
            groups * group_size), dest_groups=dest)
        casts[msg.mid] = msg
        log.record_cast(msg)
    order = list(casts)
    rng.shuffle(order)
    for pid in topology.processes:
        gid = topology.group_of(pid)
        for mid in order:
            if gid in casts[mid].dest_groups:
                log.record_delivery(pid, casts[mid])
    return topology, log


class TestCheckerScaling:
    def test_same_verdict_at_scale(self):
        topology, log = _campaign_scale_log(n_messages=400)
        crashes = CrashSchedule.none()
        check_uniform_prefix_order(log, topology)
        check_uniform_agreement(log, topology, crashes)
        oracle_prefix_order(log, topology)
        oracle_agreement(log, topology, crashes)

    @pytest.mark.skipif(
        not WALL_CLOCK_COMPARABLE,
        reason="wall-clock ratios are noisy on shared CI runners "
               "(set REPRO_BENCH_STRICT=1 to force)",
    )
    def test_streaming_at_least_5x_faster(self):
        topology, log = _campaign_scale_log()
        crashes = CrashSchedule.none()

        t0 = time.perf_counter()
        check_uniform_prefix_order(log, topology)
        check_uniform_agreement(log, topology, crashes)
        streaming = time.perf_counter() - t0

        t0 = time.perf_counter()
        oracle_prefix_order(log, topology)
        oracle_agreement(log, topology, crashes)
        quadratic = time.perf_counter() - t0

        speedup = quadratic / max(streaming, 1e-9)
        assert speedup >= MIN_CHECKER_SPEEDUP, (
            f"checker speedup {speedup:.1f}x under {MIN_CHECKER_SPEEDUP}x "
            f"(streaming {streaming:.3f}s, quadratic {quadratic:.3f}s)"
        )
