"""Benchmark: the campaign engine's acceptance properties.

* a full built-in campaign (10 scenarios) runs green under a process
  pool,
* per-seed metrics are bit-identical between ``--jobs 1`` and
  ``--jobs N`` executions (the determinism guarantee the parallel
  executor is built around),
* the JSON artefact round-trips with its aggregates intact.

Wall-clock speedup is printed for eyeballing but deliberately not
asserted: CI machines may schedule the pool on a single core, and the
determinism + green-checkers invariants are the ones that must never
flake.  The committed ``CAMPAIGN_cross-protocol.json`` records a
measured multi-core run (see ``--compare-serial``).
"""

import json

import pytest

from repro.campaigns import (
    CampaignRunner,
    get_campaign,
    verify_determinism,
)


@pytest.fixture(scope="module")
def executions():
    campaign = get_campaign("cross-protocol", seeds=(1,))
    serial = CampaignRunner(campaign, jobs=1).run()
    parallel = CampaignRunner(campaign, jobs=2).run()
    return campaign, serial, parallel


class TestAcceptance:
    def test_campaign_is_big_enough(self, executions):
        campaign, _, _ = executions
        assert len(campaign.scenarios) >= 8

    def test_all_checkers_green_everywhere(self, executions):
        _, serial, parallel = executions
        assert serial.all_checkers_ok, serial.failures()
        assert parallel.all_checkers_ok, parallel.failures()

    def test_parallel_metrics_bit_identical_to_serial(self, executions):
        _, serial, parallel = executions
        verify_determinism(parallel, serial)

    def test_speedup_is_measured_and_reported(self, executions, capsys):
        _, serial, parallel = executions
        speedup = serial.wall_seconds / max(parallel.wall_seconds, 1e-9)
        with capsys.disabled():
            print(f"\n[campaigns] cross-protocol x1 seed: "
                  f"serial {serial.wall_seconds:.2f}s, "
                  f"jobs=2 {parallel.wall_seconds:.2f}s "
                  f"({speedup:.2f}x)")
        assert serial.wall_seconds > 0 and parallel.wall_seconds > 0


class TestArtifactRoundTrip:
    def test_json_written_and_parsable(self, executions, tmp_path):
        _, _, parallel = executions
        path = parallel.write(str(tmp_path))
        data = json.loads(open(path).read())
        assert data["scenario_count"] == 10
        assert data["all_checkers_ok"] is True
        # Every scenario carries per-seed metrics plus aggregates.
        for scenario in data["scenarios"].values():
            assert scenario["seeds"]
            assert scenario["aggregates"]["casts"]["n"] == 1
