"""Benchmark: what crashes cost — wall time, not causal structure.

The paper's algorithms are designed so failures hurt *liveness timing*
(failure-detection lag, consensus re-election) but never the logical
structure: the latency degree of delivered messages and all four
correctness properties are crash-independent.  This benchmark measures
both halves on Algorithm A1 over a 100 ms WAN, and surfaces a pleasant
consequence of the WAN setting:

* degrees are identical with and without a consensus-leader crash;
* with a reasonably fast detector, the leader re-election hides
  *entirely* behind the WAN round trip — the message racing the crash
  is delivered no later than in the clean run, because the remote
  group's timestamp exchange, not the local re-election, is the
  critical path;
* only when detection + retry exceed the WAN RTT does the crash become
  visible, and then the extra latency scales with the detection delay.
"""

import pytest

from repro.checkers.properties import check_all
from repro.failure.schedule import CrashSchedule
from repro.net.topology import LatencyModel
from repro.runtime.builder import build_system
from repro.runtime.runner import Repeated


def _run(seed: int, crash: bool, detector_delay: float = 30.0):
    # Crash the group-0 consensus leader *before* it R-Delivers the
    # racing message, so the group must re-elect to serve it.  The
    # probes are spaced > 2 RTT apart so contention between their own
    # protocol messages cannot masquerade as a crash effect.
    crashes = CrashSchedule({0: 300.5} if crash else {})
    system = build_system(
        protocol="a1", group_sizes=[3, 3], seed=seed,
        latency=LatencyModel.wan(intra_ms=1.0, inter_ms=100.0),
        crashes=crashes, detector_delay=detector_delay,
        retry_timeout=40.0,
    )
    before = system.cast_at(10.0, 1, (0, 1))    # settles pre-crash
    racing = system.cast_at(300.0, 1, (0, 1))   # in flight at the crash
    after = system.cast_at(700.0, 1, (0, 1))    # post re-election
    system.run_quiescent()
    check_all(system.log, system.topology, crashes)

    def worst(msg):
        return system.meter.record_for(msg.mid).worst_delivery_latency

    return {
        "deg_before": system.meter.latency_degree(before.mid),
        "deg_racing": system.meter.latency_degree(racing.mid),
        "deg_after": system.meter.latency_degree(after.mid),
        "lat_before": worst(before),
        "lat_racing": worst(racing),
        "lat_after": worst(after),
    }


@pytest.fixture(scope="module")
def runs():
    seeds = range(4)
    return {
        "clean": Repeated(lambda s: _run(s, crash=False), seeds).run(),
        "crash": Repeated(lambda s: _run(s, crash=True), seeds).run(),
    }


class TestCausalStructureUnaffected:
    def test_degrees_identical_with_and_without_crash(self, runs):
        for metric in ("deg_before", "deg_racing", "deg_after"):
            clean = runs["clean"].aggregate(metric)
            crash = runs["crash"].aggregate(metric)
            assert clean.values == crash.values == [2.0] * 4, metric


class TestWallClockCost:
    def test_undisturbed_messages_unchanged(self, runs):
        for metric in ("lat_before", "lat_after"):
            clean = runs["clean"].aggregate(metric).mean
            crash = runs["crash"].aggregate(metric).mean
            assert abs(clean - crash) < 30.0, metric

    def test_fast_detection_hides_behind_wan_rtt(self, runs):
        """Re-election (~70 ms) < WAN RTT (~200 ms): the remote group's
        timestamp exchange is the critical path either way."""
        clean = runs["clean"].aggregate("lat_racing").mean
        crash = runs["crash"].aggregate("lat_racing").mean
        assert abs(crash - clean) < 15.0

    def test_slow_detection_exceeds_rtt_and_shows(self):
        """Once detection + retries outlast the RTT, the crash costs."""
        clean = Repeated(lambda s: _run(s, crash=False),
                         seeds=range(3)).run()
        slow = Repeated(
            lambda s: _run(s, crash=True, detector_delay=220.0),
            seeds=range(3),
        ).run()
        assert (slow.aggregate("lat_racing").mean
                > clean.aggregate("lat_racing").mean + 80.0)

    def test_cost_scales_with_detector_delay(self):
        slower = Repeated(
            lambda s: _run(s, crash=True, detector_delay=350.0),
            seeds=range(3),
        ).run()
        slow = Repeated(
            lambda s: _run(s, crash=True, detector_delay=220.0),
            seeds=range(3),
        ).run()
        assert (slower.aggregate("lat_racing").mean
                > slow.aggregate("lat_racing").mean + 60.0)


def test_regenerate_numbers(benchmark, runs):
    """Wall-clock one crash run and print the comparison."""
    result = benchmark.pedantic(lambda: _run(0, crash=True),
                                rounds=1, iterations=1)
    clean = _run(0, crash=False)
    print()
    print("Crash impact (A1, 100 ms WAN, leader crash at t=300.5 ms):")
    for key in sorted(result):
        print(f"  {key:12s} clean={clean[key]:7.1f}  "
              f"crash={result[key]:7.1f}")
    assert result["deg_racing"] == 2
