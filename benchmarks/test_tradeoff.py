"""Benchmark: the introduction's genuineness/latency tradeoff.

Genuine multicast (A1) versus broadcast-to-all (over A2) on a partial
replication workload — the choice the paper frames for multi-site
systems.  Assertions:

* broadcast-to-all reaches latency degree 1 (beats the genuine bound);
* genuine A1 never goes below 2;
* broadcast-to-all pays strictly more inter-group messages per op and
  a non-zero pile of discarded deliveries at non-addressees;
* the message gap widens with the total group count (locality pays).
"""

import pytest

from repro.experiments.tradeoff import run_tradeoff, tradeoff_table


@pytest.fixture(scope="module")
def points():
    """Both protocols on the shared 6-group, k=2 workload."""
    return {
        protocol: run_tradeoff(protocol, groups=6, d=2, k=2, seed=1)
        for protocol in ("a1", "nongenuine")
    }


class TestLatencySide:
    def test_broadcast_to_all_reaches_degree_one(self, points):
        assert points["nongenuine"].best_degree == 1

    def test_genuine_never_below_two(self, points):
        assert points["a1"].best_degree == 2


class TestMessageSide:
    def test_broadcast_costs_more_inter_group_traffic(self, points):
        assert (points["nongenuine"].inter_msgs_per_op
                > 2 * points["a1"].inter_msgs_per_op)

    def test_broadcast_discards_deliveries_at_bystanders(self, points):
        assert points["nongenuine"].discarded_deliveries > 0

    def test_genuine_discards_nothing(self, points):
        assert points["a1"].discarded_deliveries == 0

    def test_gap_widens_with_group_count(self):
        """More groups => more bystanders => worse broadcast overhead."""

        def gap(groups):
            a1 = run_tradeoff("a1", groups=groups, d=2, k=2, seed=2,
                              duration=12.0)
            bc = run_tradeoff("nongenuine", groups=groups, d=2, k=2,
                              seed=2, duration=12.0)
            return bc.inter_msgs_per_op / a1.inter_msgs_per_op

        assert gap(8) > gap(4)


def test_regenerate_table(benchmark):
    """Wall-clock the printed tradeoff table."""
    table = benchmark.pedantic(tradeoff_table, rounds=1, iterations=1)
    print()
    print(table)
    assert "genuine" in table
