"""Benchmark: regenerate Figure 1(b) — atomic broadcast comparison.

Asserts the paper's rows:

=================== ============== ===============
algorithm            latency degree inter-group msgs
=================== ============== ===============
[12] Sousa et al.    2              O(n)
[13] Vicente & Rodr. 2              O(n²)
Algorithm A2         1              O(n²)
[1] Aguilera & Strom 1              O(n)
=================== ============== ===============

Run with ``-s`` to see the regenerated table.
"""

import pytest

from repro.experiments.figure1 import fig1b_table, run_fig1b_single


@pytest.fixture(scope="module")
def rows():
    """Measured rows at 2 groups x 3 processes."""
    return {
        protocol: run_fig1b_single(protocol, groups=2, d=3, seed=1)
        for protocol in ("optimistic", "sequencer", "a2", "detmerge")
    }


class TestLatencyDegreeColumn:
    def test_a2_reaches_degree_one(self, rows):
        assert rows["a2"].measured_degree == 1

    def test_detmerge_reaches_degree_one(self, rows):
        assert rows["detmerge"].measured_degree == 1

    def test_optimistic_final_delivery_degree_two(self, rows):
        assert rows["optimistic"].measured_degree == 2

    def test_sequencer_degree_two(self, rows):
        assert rows["sequencer"].measured_degree == 2

    def test_a2_beats_both_degree_two_protocols(self, rows):
        assert (rows["a2"].measured_degree
                < rows["optimistic"].measured_degree)
        assert (rows["a2"].measured_degree
                < rows["sequencer"].measured_degree)


class TestMessageComplexityColumn:
    def test_linear_protocols_cheaper_than_quadratic(self, rows):
        """O(n) rows beat O(n²) rows at the same n."""
        assert (rows["optimistic"].measured_inter_msgs
                < rows["sequencer"].measured_inter_msgs)
        assert (rows["detmerge"].measured_inter_msgs
                < rows["a2"].measured_inter_msgs)

    def test_optimistic_scales_linearly(self):
        small = run_fig1b_single("optimistic", groups=2, d=2, seed=1)
        large = run_fig1b_single("optimistic", groups=2, d=4, seed=1)
        # n doubled: O(n) predicts ~2x messages per op.
        ratio = large.measured_inter_msgs / small.measured_inter_msgs
        assert ratio < 3.0

    def test_sequencer_scales_quadratically(self):
        small = run_fig1b_single("sequencer", groups=2, d=2, seed=1)
        large = run_fig1b_single("sequencer", groups=2, d=4, seed=1)
        # n doubled: O(n²) predicts ~4x messages per op.
        ratio = large.measured_inter_msgs / small.measured_inter_msgs
        assert ratio > 2.5


class TestPaperFootnotes:
    def test_optimistic_is_non_uniform(self):
        """Footnote 7: [12] guarantees agreement for correct processes
        only — there is no validation traffic to make it uniform.

        Operationally: its total message count stays at 2 copies per
        process per message (no quadratic ack echo like [13])."""
        row = run_fig1b_single("optimistic", groups=2, d=3, seed=1)
        n = 6
        # Per message: n DATA + n ORDER = 2n copies, half inter-group.
        assert row.measured_inter_msgs <= n + 1

    def test_detmerge_strong_model_beats_lower_bound(self, rows):
        """Footnote 5/6: [1]'s degree 1 does not contradict the genuine
        multicast bound — its model is different (infinite streams)."""
        assert rows["detmerge"].measured_degree == 1


def test_regenerate_table(benchmark):
    """Wall-clock the full Figure 1(b) regeneration and print it."""
    table = benchmark.pedantic(fig1b_table, kwargs={"groups": 2, "d": 3},
                               rounds=1, iterations=1)
    print()
    print(table)
    assert "Algorithm A2" in table
