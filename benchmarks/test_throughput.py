"""Benchmark: engine throughput against the pre-refactor baseline.

The hot-path refactor (interned messages, indexed delivery queues,
batched network sends) claims a large wall-clock speedup *without
changing any protocol semantics*.  This suite pins both halves:

* **Throughput** — each scenario in ``throughput_scenarios`` replays a
  fixed workload plan and is compared against the pre-refactor numbers
  committed in ``benchmarks/baseline_throughput.json`` (measured at the
  seed commit, best of 2 runs, same machine class).  The headline
  high-rate Poisson scenario must beat the baseline clearly; the full
  before/after table is written to ``BENCH_throughput.json`` at the
  repository root so later PRs inherit a perf trajectory.

* **Semantics** — the same plan must produce the *same* casts and the
  same total network message count as the seed engine (the engine only
  got faster, not chattier), and the paper's correctness checkers —
  uniform order properties and genuineness — must pass for A1 and A2
  under the interned message plane.

Wall-clock assertions use a deliberately loose floor (2x) so a loaded
CI machine cannot flake the suite; the JSON records the measured value
(~3.5-4x on an idle machine for the headline scenario).
"""

import json
import os

import pytest

from repro.checkers.genuineness import check_genuineness
from repro.checkers.properties import check_all
from repro.runtime.builder import build_system
from repro.runtime.report import RunReport
from repro.workload.generators import (
    burst_workload,
    poisson_workload,
    schedule_workload,
    uniform_k_groups,
)

from throughput_scenarios import (
    HB_SCENARIOS,
    PARALLEL_BASE,
    PARALLEL_SCENARIOS,
    REPORT_FILE,
    SCENARIOS,
    TRANSPORT_BASE,
    TRANSPORT_SCENARIOS,
    _available_cpus,
    _hb_system,
    load_baseline,
)

HEADLINE = "poisson_hi_a1"
#: Loose floor; the real measurement lands in BENCH_throughput.json.
MIN_HEADLINE_SPEEDUP = 2.0
#: Floor for the elided-heartbeat fast path on the large-n scenarios,
#: against their committed message-mode baselines (~8x measured).
MIN_HB_SPEEDUP = 3.0
#: Ceiling on the reliable transport's zero-loss wall-clock price vs the
#: bare headline scenario (sequencing + ack traffic, no retransmits).
MAX_TRANSPORT_OVERHEAD = 1.3

# The committed baseline's wall-clock seconds are only comparable on the
# machine class that measured them (see baseline_throughput.json _meta).
# On shared CI runners the engine can be genuinely faster yet miss an
# absolute-seconds bar, so wall-clock *assertions* are skipped there —
# the semantic checks and the BENCH report still run everywhere.
# Set REPRO_BENCH_STRICT=1 to force the assertions on any machine.
WALL_CLOCK_COMPARABLE = (
    os.environ.get("REPRO_BENCH_STRICT") == "1"
    or not os.environ.get("CI")
)
needs_comparable_wall_clock = pytest.mark.skipif(
    not WALL_CLOCK_COMPARABLE,
    reason="baseline wall-clock seconds not comparable on CI runners "
           "(set REPRO_BENCH_STRICT=1 to force)",
)


@pytest.fixture(scope="module")
def baseline():
    return load_baseline()["scenarios"]


@pytest.fixture(scope="module")
def results(baseline):
    """Run every scenario (best of 2) and write the report.

    Best-of-2 everywhere: the baseline was measured best-of-2, and a
    single sample on a loaded single-core machine carries enough noise
    to trip the thin-margin scenarios below.
    """
    measured = {}
    for name, fn in SCENARIOS.items():
        best = None
        for _ in range(2):
            r = fn()
            if best is None or r.wall_seconds < best.wall_seconds:
                best = r
        measured[name] = best

    report = {
        "baseline_meta": load_baseline()["_meta"],
        "metric": (
            "events_per_sec = simulated message events per wall-clock "
            "second; each scenario replays a fixed workload plan, so the "
            "events_per_sec ratio equals the wall-time ratio"
        ),
        "scenarios": {},
    }
    for name, r in measured.items():
        base = baseline[name]
        entry = {
            "baseline": base,
            "current": r.to_json(),
            "speedup_wall": round(base["wall_seconds"] / r.wall_seconds, 2),
            "speedup_events_per_sec": round(
                r.events_per_sec / base["events_per_sec"], 2),
        }
        if name in HB_SCENARIOS:
            # The elided mode removes detector copies, so the raw
            # events_per_sec numerators differ; app_events_per_sec
            # (identical numerator across modes) is the fair ratio.
            entry["speedup_app_events_per_sec"] = round(
                r.app_events_per_sec / base["app_events_per_sec"], 2)
        report["scenarios"][name] = entry
    head = report["scenarios"][HEADLINE]
    report["headline"] = {
        "scenario": HEADLINE,
        "events_per_sec_baseline": head["baseline"]["events_per_sec"],
        "events_per_sec_current": head["current"]["events_per_sec"],
        "improvement": head["speedup_events_per_sec"],
    }
    with open(REPORT_FILE, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return measured


class TestSemanticsPreserved:
    """The engine got faster; the runs must stay byte-identical in shape."""

    def test_same_casts_as_baseline(self, results, baseline):
        for name, r in results.items():
            assert r.casts == baseline[name]["casts"], name

    def test_same_network_traffic_as_baseline(self, results, baseline):
        """Batching merges kernel events, never message copies.

        Heartbeat scenarios run elided, so exactly the baseline's
        ``fd_messages`` detector copies disappear — the protocol's own
        traffic must still match to the message.
        """
        for name, r in results.items():
            base = baseline[name]
            if name in HB_SCENARIOS:
                assert r.fd_messages == 0, name
                assert r.network_messages == (
                    base["network_messages"] - base["fd_messages"]), name
            else:
                assert r.network_messages == base["network_messages"], name

    def test_same_deliveries_as_baseline(self, results, baseline):
        for name, r in results.items():
            assert r.deliveries == baseline[name]["deliveries"], name

    def test_fewer_kernel_events_than_messages(self, results):
        """The batched network fans buckets out of single events."""
        for name, r in results.items():
            assert r.events_executed < r.network_messages, name


class TestThroughput:
    @needs_comparable_wall_clock
    def test_headline_beats_baseline(self, results, baseline):
        base = baseline[HEADLINE]
        speedup = base["wall_seconds"] / results[HEADLINE].wall_seconds
        assert speedup >= MIN_HEADLINE_SPEEDUP, (
            f"headline speedup {speedup:.2f}x under {MIN_HEADLINE_SPEEDUP}x"
        )

    @needs_comparable_wall_clock
    def test_every_scenario_no_slower_than_baseline(self, results, baseline):
        """No scenario regresses, modulo measurement noise.

        The thin-margin scenarios (A2's proactive rounds gained the
        least from the refactor) sit close to 1.0x, so the floor
        grants the ~10% jitter a busy machine adds even to a
        best-of-2; genuine regressions blow straight through it.
        """
        for name, r in results.items():
            base = baseline[name]
            assert base["wall_seconds"] / r.wall_seconds > 0.9, name

    @needs_comparable_wall_clock
    def test_heartbeat_fast_path_beats_message_baseline(self, results,
                                                        baseline):
        """Elided heartbeats: ≥3x app throughput over message mode.

        app_events_per_sec has the identical numerator in both modes
        (protocol traffic only), so this ratio is exactly the wall-time
        ratio of doing the same protocol work with vs without the
        detector's O(n·|group|)-per-period message storm.
        """
        for name in HB_SCENARIOS:
            base = baseline[name]
            speedup = (results[name].app_events_per_sec
                       / base["app_events_per_sec"])
            assert speedup >= MIN_HB_SPEEDUP, (
                f"{name}: elided speedup {speedup:.2f}x under "
                f"{MIN_HB_SPEEDUP}x"
            )

    def test_report_file_written(self, results):
        with open(REPORT_FILE) as fh:
            report = json.load(fh)
        assert report["headline"]["scenario"] == HEADLINE
        assert report["headline"]["improvement"] > 0
        assert set(report["scenarios"]) == set(SCENARIOS)


@pytest.fixture(scope="module")
def parallel_results(results):
    """Run the parallel-kernel scenarios and extend the BENCH report.

    Depends on ``results`` so the report file exists before the
    parallel section is merged in.  The committed entries are honest:
    ``cpu_count`` records how many cores the measurement actually had,
    and on a single-core host the speedup is the partitioning overhead
    (sub-kernels time-share one core), not a parallelism claim.
    """
    measured = {}
    for name, fn in PARALLEL_SCENARIOS.items():
        best = None
        for _ in range(2):
            r = fn()
            if best is None or r.wall_seconds < best.wall_seconds:
                best = r
        measured[name] = best

    with open(REPORT_FILE) as fh:
        report = json.load(fh)
    section = {}
    for name, r in measured.items():
        serial = results[PARALLEL_BASE[name]]
        section[name] = {
            "current": r.to_json(),
            "serial_scenario": PARALLEL_BASE[name],
            "speedup_vs_serial_wall": round(
                serial.wall_seconds / r.wall_seconds, 2),
        }
    report["parallel"] = {
        "note": (
            "Conservative parallel kernel (per-group sub-kernels, "
            "latency-derived lookahead); semantic fields are asserted "
            "identical to the serial scenario. speedup_vs_serial_wall "
            "is only a parallelism measurement when cpu_count >= 2."
        ),
        "cpu_count": _available_cpus(),
        "scenarios": section,
    }
    with open(REPORT_FILE, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return measured


class TestParallelKernel:
    """The parallel kernel must reproduce the serial runs exactly.

    Identity assertions run everywhere; the speedup assertion only
    where >= 2 CPUs are actually available (with one core the workers
    time-share it and no wall-clock win is physically possible).
    """

    def test_semantics_identical_to_serial(self, parallel_results, results):
        for name, r in parallel_results.items():
            serial = results[PARALLEL_BASE[name]]
            assert r.casts == serial.casts, name
            assert r.deliveries == serial.deliveries, name
            assert r.network_messages == serial.network_messages, name
            assert r.fd_messages == serial.fd_messages, name
            assert r.virtual_end == serial.virtual_end, name

    @pytest.mark.skipif(
        _available_cpus() < 2,
        reason="speedup needs >= 2 CPUs; identity checks still ran")
    @needs_comparable_wall_clock
    def test_speedup_on_multicore(self, parallel_results, results):
        for name, r in parallel_results.items():
            serial = results[PARALLEL_BASE[name]]
            speedup = serial.wall_seconds / r.wall_seconds
            assert speedup >= 2.0, (
                f"{name}: parallel speedup {speedup:.2f}x under 2x "
                f"with {_available_cpus()} CPUs ({r.executor}, "
                f"jobs={r.jobs})"
            )

    def test_report_has_parallel_section(self, parallel_results):
        with open(REPORT_FILE) as fh:
            report = json.load(fh)
        assert set(report["parallel"]["scenarios"]) == set(PARALLEL_SCENARIOS)
        assert report["parallel"]["cpu_count"] >= 1
        for entry in report["parallel"]["scenarios"].values():
            assert entry["current"]["kernel"] == "parallel"


@pytest.fixture(scope="module")
def transport_results(results):
    """Run the reliable-transport scenarios and extend the BENCH report.

    Depends on ``results`` so the report file exists before the
    transport section is merged in.  The links are perfect in these
    runs, so the section prices the transport's fixed overhead —
    acks plus sequencing bookkeeping — against the bare base scenario.

    The base scenario is *re-measured here*, run back-to-back with the
    transport scenario in three matched rounds, rather than reusing
    the wall clock the ``results`` fixture recorded minutes earlier:
    an overhead ratio is only as good as its two samples sharing the
    same machine load and heap state.  The quoted overhead is the
    cleanest matched pair (minimum per-round ratio) — a load spike
    inflates both halves of its round together and the thin 1.3x
    ceiling must not flake on that.
    """
    measured = {}
    for name, fn in TRANSPORT_SCENARIOS.items():
        base_fn = SCENARIOS[TRANSPORT_BASE[name]]
        best = base_best = ratio = None
        for _ in range(3):
            b = base_fn()
            if base_best is None or b.wall_seconds < base_best.wall_seconds:
                base_best = b
            r = fn()
            if best is None or r.wall_seconds < best.wall_seconds:
                best = r
            round_ratio = r.wall_seconds / b.wall_seconds
            if ratio is None or round_ratio < ratio:
                ratio = round_ratio
        measured[name] = (best, base_best, ratio)

    with open(REPORT_FILE) as fh:
        report = json.load(fh)
    section = {}
    for name, (r, base, ratio) in measured.items():
        section[name] = {
            "current": r.to_json(),
            "base_scenario": TRANSPORT_BASE[name],
            "base_wall_seconds": base.wall_seconds,
            "overhead_wall": round(ratio, 2),
            "ack_copies": r.tsp_acks,
            "retransmits": r.tsp_retransmits,
        }
    report["transport"] = {
        "note": (
            "Reliable retransmit transport over perfect links: the "
            "overhead_wall ratio is its fixed zero-loss price "
            "(per-copy sequencing plus coalesced acks), measured "
            "against an interleaved re-run of the base scenario; "
            "retransmits must be 0 because the RTO is derived from the "
            "fixed link latency."
        ),
        "scenarios": section,
    }
    with open(REPORT_FILE, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return measured


class TestTransportOverhead:
    """The transport must be semantically invisible and cheap at zero loss.

    Semantics and retransmit-freedom are asserted everywhere; the
    wall-clock ceiling only where the machine can be trusted to time
    consistently (same rule as the baseline comparisons).
    """

    def test_semantics_match_base_scenario(self, transport_results):
        """Same casts and deliveries; only ack copies are extra wire."""
        for name, (r, base, _ratio) in transport_results.items():
            assert r.casts == base.casts, name
            assert r.deliveries == base.deliveries, name
            assert r.network_messages == (
                base.network_messages + r.tsp_acks), name

    def test_no_retransmits_at_zero_loss(self, transport_results):
        """The latency-derived RTO never fires spuriously."""
        for name, (r, _base, _ratio) in transport_results.items():
            assert r.tsp_retransmits == 0, name
            assert r.tsp_acks > 0, name

    @needs_comparable_wall_clock
    def test_zero_loss_overhead_bounded(self, transport_results):
        for name, (_r, _base, ratio) in transport_results.items():
            assert ratio <= MAX_TRANSPORT_OVERHEAD, (
                f"{name}: transport wall overhead {ratio:.2f}x over "
                f"{MAX_TRANSPORT_OVERHEAD}x at zero loss"
            )

    def test_report_has_transport_section(self, transport_results):
        with open(REPORT_FILE) as fh:
            report = json.load(fh)
        assert set(report["transport"]["scenarios"]) == set(
            TRANSPORT_SCENARIOS)
        for entry in report["transport"]["scenarios"].values():
            assert entry["retransmits"] == 0
            assert entry["ack_copies"] > 0


class TestHeartbeatModeEquivalence:
    """The harness must bless the exact large-n benchmark configs.

    ``compare_modes`` replays the scenario once per detector mode and
    asserts bit-identical suspicion transitions, delivery orders and
    checker verdicts — the precondition for quoting the elided mode's
    throughput as a pure optimisation.  The probe grid is offset from
    the heartbeat grid so no probe ties with an arrival event.
    """

    def _make(self, protocol, horizon, rate, seed=42):
        from repro.workload.generators import (
            poisson_workload,
            schedule_workload,
            uniform_k_groups,
        )

        def make_system(mode):
            system = _hb_system(protocol, mode, seed, horizon=horizon)
            kwargs = ({"destinations": uniform_k_groups(2)}
                      if protocol == "a1" else {})
            plans = poisson_workload(
                system.topology, system.rng.stream("wl"),
                rate=rate, duration=60.0, **kwargs,
            )
            schedule_workload(system, plans)
            return system

        return make_system

    def test_hb_large_a1_modes_identical(self):
        from repro.failure.harness import compare_modes

        traces = compare_modes(
            self._make("a1", horizon=3_000.0, rate=1.5),
            run_until=3_050.0, probe_period=50.0,
        )
        assert traces["messages"].fd_messages > 100_000
        assert traces["elided"].fd_messages == 0
        assert traces["elided"].checker_verdict == "ok"

    def test_hb_large_a2_modes_identical(self):
        from repro.failure.harness import compare_modes

        def make(mode):
            system = self._make("a2", horizon=4_000.0, rate=0.15)(mode)
            system.start_rounds()
            return system

        traces = compare_modes(make, run_until=4_050.0, probe_period=50.0)
        assert traces["messages"].fd_messages > 100_000
        assert traces["elided"].checker_verdict == "ok"


class TestCheckersUnderNewMessagePlane:
    """The paper's checkers are the refactor's safety net (A1 and A2)."""

    def test_a1_properties_and_genuineness(self):
        system = build_system(protocol="a1", group_sizes=[2, 2, 2],
                              seed=7, trace=True)
        plans = poisson_workload(
            system.topology, system.rng.stream("wl"),
            rate=10.0, duration=20.0, destinations=uniform_k_groups(2),
        )
        schedule_workload(system, plans)
        system.run_quiescent()
        check_all(system.log, system.topology, system.crashes)
        check_genuineness(system.network.trace, system.log, system.topology)

    def test_a2_properties_and_genuineness(self):
        system = build_system(protocol="a2", group_sizes=[2, 2, 2],
                              seed=7, trace=True)
        plans = burst_workload(
            system.topology, system.rng.stream("wl"),
            bursts=3, burst_size=10, gap=15.0,
        )
        schedule_workload(system, plans)
        system.run_quiescent()
        check_all(system.log, system.topology, system.crashes)
        check_genuineness(system.network.trace, system.log, system.topology)


class TestReportIntegration:
    def test_throughput_summary_in_run_report(self):
        system = build_system(protocol="a1", group_sizes=[2, 2], seed=3)
        system.cast(sender=0, dest_groups=(0, 1))
        system.run_quiescent()
        report = RunReport(system)
        summary = report.throughput_summary(wall_seconds=0.5)
        assert summary["casts"] == 1
        assert summary["deliveries"] == 4
        assert summary["network_messages"] > 0
        assert summary["events_per_sec"] == summary["network_messages"] / 0.5
        assert "Engine:" in report.render()
