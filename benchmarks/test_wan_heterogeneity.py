"""Benchmark: heterogeneous WAN — topology decides the best algorithm.

The paper's §6 closing remark, quantified on a three-continent latency
matrix.  Assertions:

* A1's wall latency per destination set tracks ``2 × slowest leg``;
* the ring's latency for all three continents tracks the *sum* of its
  handoff legs, strictly worse than A1;
* for two-continent messages (k = 2) the two are within a whisker —
  the ring only loses once sequential handoffs pile up.
"""

import pytest

from repro.experiments.wan_heterogeneity import (
    collect_points,
    heterogeneity_table,
    measure,
)


@pytest.fixture(scope="module")
def points():
    return collect_points(seed=1)


class TestA1Parallelism:
    def test_latency_tracks_slowest_leg(self, points):
        """Two hops over the slowest leg, run in parallel."""
        expected = {(0, 1): 90.0, (0, 2): 180.0, (1, 2): 150.0,
                    (0, 1, 2): 180.0}
        for dest, leg2 in expected.items():
            measured = points["a1"][dest].worst_latency_ms
            assert abs(measured - leg2) < 15.0, (dest, measured)

    def test_three_continents_cost_no_more_than_worst_pair(self, points):
        assert (points["a1"][(0, 1, 2)].worst_latency_ms
                <= points["a1"][(0, 2)].worst_latency_ms + 15.0)


class TestRingSequentiality:
    def test_two_group_rings_match_a1(self, points):
        """k=2: one handoff + one final — same legs as A1."""
        for dest in ((0, 1), (0, 2), (1, 2)):
            ratio = (points["ring"][dest].worst_latency_ms
                     / points["a1"][dest].worst_latency_ms)
            assert ratio < 1.1

    def test_three_group_ring_pays_the_sum_of_legs(self, points):
        """EU->NA (45) + NA->ASIA (75) + final ASIA->EU (90) ~= 210."""
        measured = points["ring"][(0, 1, 2)].worst_latency_ms
        assert 195.0 < measured < 235.0

    def test_ring_strictly_loses_at_three_groups(self, points):
        assert (points["ring"][(0, 1, 2)].worst_latency_ms
                > points["a1"][(0, 1, 2)].worst_latency_ms * 1.1)

    def test_ring_degree_matches_destination_count(self, points):
        assert points["ring"][(0, 1, 2)].degree == 3
        assert points["a1"][(0, 1, 2)].degree == 2


class TestSenderPlacement:
    def test_caster_outside_first_group_adds_a_hop(self):
        """A sender not in the ring's first group pays the entry leg."""
        inside = measure("ring", (1, 2), seed=1, sender_gid=1)
        outside = measure("ring", (1, 2), seed=1, sender_gid=0)
        assert outside.degree == inside.degree + 1
        assert outside.worst_latency_ms > inside.worst_latency_ms


def test_regenerate_table(benchmark):
    """Wall-clock the printed continent comparison."""
    table = benchmark.pedantic(heterogeneity_table, rounds=1, iterations=1)
    print()
    print(table)
    assert "ring/A1" in table
