"""Benchmark: the paper's constructive theorem runs.

Theorem 4.1 — A1 delivers a two-group multicast at Δ = 2.
Theorem 5.1 — A2 delivers a warm broadcast at Δ = 1.
Theorem 5.2 — A2 delivers a post-quiescence broadcast at Δ = 2.

Each is asserted exactly (these are equalities in the paper), across
several seeds to rule out a lucky schedule.
"""

import pytest

from repro.experiments.theorems import (
    theorem_4_1,
    theorem_5_1,
    theorem_5_2,
    theorem_table,
)

SEEDS = [1, 2, 3, 7, 11]


class TestTheorem41:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_a1_two_group_degree_exactly_two(self, seed):
        run = theorem_4_1(seed)
        assert run.measured == 2

    def test_matches_claim(self):
        assert theorem_4_1().matches


class TestTheorem51:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_a2_warm_degree_exactly_one(self, seed):
        run = theorem_5_1(seed)
        assert run.measured == 1

    def test_matches_claim(self):
        assert theorem_5_1().matches


class TestTheorem52:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_a2_cold_degree_exactly_two(self, seed):
        run = theorem_5_2(seed)
        assert run.measured == 2

    def test_matches_claim(self):
        assert theorem_5_2().matches


class TestSeparation:
    """The paper's headline: broadcast is cheaper than multicast."""

    def test_broadcast_beats_genuine_multicast(self):
        """A2's best (1) beats the genuine multicast lower bound (2)."""
        assert theorem_5_1().measured < theorem_4_1().measured

    def test_quiescence_erases_the_advantage(self):
        """Once quiescent, A2 is no better than the multicast bound."""
        assert theorem_5_2().measured == theorem_4_1().measured


def test_regenerate_table(benchmark):
    """Wall-clock all three runs and print the comparison."""
    table = benchmark.pedantic(theorem_table, rounds=1, iterations=1)
    print()
    print(table)
    assert "MISMATCH" not in table
