"""The rebalance campaign, its spec plumbing and the CLI verb."""

import json
import random

import pytest

from repro.campaigns.library import CAMPAIGNS, rebalance
from repro.campaigns.runner import run_scenario_seed, validate_spec
from repro.campaigns.spec import ScenarioSpec, StoreSpec
from repro.net.topology import Topology
from repro.runtime.parallel import ParallelKernelError
from repro.store.workload import partition_keys, txn_workload


class TestSpecPlumbing:
    def test_store_spec_round_trips_elastic_fields(self):
        spec = StoreSpec(popularity="global", zipf_skew=1.0,
                         service_time=2.5, rebalance_interval=10.0,
                         rebalance_threshold=1.3, placement="ring")
        revived = StoreSpec.from_dict(dict(spec.__dict__))
        assert revived == spec

    def test_unknown_popularity_rejected(self):
        with pytest.raises(ValueError, match="popularity"):
            StoreSpec(popularity="viral")

    def test_validate_spec_rejects_out_of_range_data_groups(self):
        spec = ScenarioSpec(
            name="bad-store", protocol="a1", group_sizes=(2, 2),
            store=StoreSpec(data_groups=(0, 5)), seeds=(1,),
        )
        with pytest.raises(ValueError,
                           match=r"data_groups \[5\] outside"):
            validate_spec(spec)

    def test_validate_spec_accepts_in_range_data_groups(self):
        validate_spec(ScenarioSpec(
            name="ok-store", protocol="a1", group_sizes=(2, 2),
            store=StoreSpec(data_groups=(0, 1)), seeds=(1,),
        ))

    def test_parallel_kernel_refuses_elastic_store(self):
        spec = ScenarioSpec(
            name="elastic-parallel", protocol="a1", group_sizes=(2, 2),
            store=StoreSpec(rebalance_interval=5.0), seeds=(1,),
            kernel="parallel",
        )
        with pytest.raises(ParallelKernelError, match="elastic"):
            run_scenario_seed(spec, 1)


class TestGlobalPopularity:
    TOPO = Topology([2, 2, 2, 2])
    CLIENTS = [0, 2, 4, 6]

    def _key_counts(self, spec, seed=5):
        plans = txn_workload(spec, self.TOPO, self.CLIENTS,
                             random.Random(seed))
        counts = {}
        for plan in plans:
            for op in plan.ops:
                counts[op[1]] = counts.get(op[1], 0) + 1
        return counts

    def test_one_zipf_law_over_the_whole_keyspace(self):
        spec = StoreSpec(n_keys=32, rate=4.0, duration=150.0,
                         zipf_skew=1.2, popularity="global")
        counts = self._key_counts(spec)
        # Under one global law, k00000 dominates every other key no
        # matter which partition owns it; per-partition popularity
        # re-ranks keys within each group instead.
        assert counts.get("k00000", 0) > 3 * counts.get("k00020", 0)

    def test_partition_load_follows_owned_mass(self):
        spec = StoreSpec(n_keys=32, rate=4.0, duration=150.0,
                         zipf_skew=1.2, popularity="global")
        keymap = partition_keys(spec, self.TOPO)
        counts = self._key_counts(spec)
        load = {}
        for key, count in counts.items():
            load[keymap[key]] = load.get(keymap[key], 0) + count
        hot_group = keymap["k00000"]
        assert load[hot_group] == max(load.values())

    def test_partition_mode_is_unchanged_default(self):
        assert StoreSpec().popularity == "partition"


class TestRebalanceCampaign:
    def test_registered_with_description(self):
        assert "rebalance" in CAMPAIGNS

    def test_grid_shape(self):
        camp = rebalance(seeds=(1,))
        assert len(camp.scenarios) == 6
        benign = [s for s in camp.scenarios
                  if s.adversary in (None, "none")]
        adversarial = [s for s in camp.scenarios
                       if s.adversary not in (None, "none")]
        assert len(benign) == 4 and len(adversarial) == 2
        assert {len(s.group_sizes) for s in benign} == {16, 24}
        assert {s.store.rebalance_interval for s in benign} == {0.0, 10.0}
        assert {s.adversary for s in adversarial} == {
            "delay-reorder", "phase-crash"}
        for spec in camp.scenarios:
            assert "serializability" in spec.checkers
            assert "reconfig" in spec.checkers

    def test_elastic_cell_runs_green_with_migrations(self):
        camp = rebalance(seeds=(1,))
        spec = next(s for s in camp.scenarios
                    if s.adversary in (None, "none")
                    and len(s.group_sizes) == 16
                    and s.store.rebalance_interval > 0)
        result = run_scenario_seed(spec, 1)
        assert all(v == "ok" for v in result.checkers.values()), \
            result.checkers
        assert result.metrics["reconfigs_completed"] >= 1
        assert result.metrics["txn_uncommitted"] == 0


class TestCli:
    def test_rebalance_verb_smoke(self, tmp_path, capsys):
        from repro.cli import main

        status = main(["rebalance", "--seeds", "1",
                       "--max-scenarios", "2",
                       "--out", str(tmp_path),
                       "--json", str(tmp_path / "cmp.json")])
        out = capsys.readouterr().out
        assert status == 0
        assert "static epoch-0 map vs online rebalance" in out
        assert (tmp_path / "CAMPAIGN_rebalance.json").exists()
        record = json.loads((tmp_path / "cmp.json").read_text())
        assert record["all_checkers_ok"] is True
        assert record["comparison"][0]["n_groups"] == 16

    def test_store_verb_prints_p99(self, capsys):
        from repro.cli import main

        status = main(["store", "--keys", "8", "--rate", "1",
                       "--duration", "10"])
        out = capsys.readouterr().out
        assert status == 0
        assert "p99" in out
