"""Seeded property tests for the consistent-hash ring.

The two properties the elastic partition map buys the ring for:
balance (keys spread evenly across groups) and locality of change
(adding or removing one group remaps only ≈ 1/n of the keyspace).
Keyspaces are derived from a fixed seed, so these are reproducible
property checks, not flaky statistics.
"""

import random

import pytest

from repro.reconfig.ring import HashRing


def _keys(n, seed=7):
    rng = random.Random(seed)
    return [f"k{rng.randrange(10**9):09d}" for _ in range(n)]


def _counts(ring, keys):
    counts = {g: 0 for g in ring.groups}
    for key in keys:
        counts[ring.owner(key)] += 1
    return counts


class TestBalance:
    @pytest.mark.parametrize("n_groups", [8, 16, 24])
    def test_max_min_ratio_bounded(self, n_groups):
        ring = HashRing(range(n_groups), vnodes=64)
        counts = _counts(ring, _keys(4096))
        assert min(counts.values()) > 0
        assert max(counts.values()) / min(counts.values()) < 2.5

    def test_more_vnodes_tighten_the_spread(self):
        keys = _keys(4096)
        spreads = []
        for vnodes in (1, 64):
            counts = _counts(HashRing(range(16), vnodes=vnodes), keys)
            spreads.append(max(counts.values()) - min(counts.values()))
        assert spreads[1] < spreads[0]

    def test_ring_is_order_insensitive(self):
        keys = _keys(512)
        a = HashRing([3, 1, 4, 1, 5], vnodes=32)
        b = HashRing([5, 4, 3, 1], vnodes=32)
        assert a.groups == b.groups
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]


class TestLocalityOfChange:
    @pytest.mark.parametrize("n_groups", [8, 16, 24])
    def test_adding_one_group_remaps_about_one_nth(self, n_groups):
        keys = _keys(4096)
        ring = HashRing(range(n_groups), vnodes=64)
        grown = ring.with_group(n_groups)
        moved = [k for k in keys if grown.owner(k) != ring.owner(k)]
        expected = len(keys) / (n_groups + 1)
        assert 0.5 * expected < len(moved) < 2.0 * expected
        # Every remapped key lands on the new group; nothing shuffles
        # between the survivors (the modulo assignment fails this).
        assert all(grown.owner(k) == n_groups for k in moved)

    @pytest.mark.parametrize("n_groups", [8, 16])
    def test_removing_one_group_remaps_only_its_keys(self, n_groups):
        keys = _keys(4096)
        ring = HashRing(range(n_groups), vnodes=64)
        shrunk = ring.without_group(0)
        for key in keys:
            if ring.owner(key) == 0:
                assert shrunk.owner(key) != 0
            else:
                assert shrunk.owner(key) == ring.owner(key)


class TestValidation:
    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_bad_vnodes_rejected(self):
        with pytest.raises(ValueError):
            HashRing([0, 1], vnodes=0)
