"""Integration tests for online key-range migration.

Every test drives the real stack — atomic multicast, service layer,
epoch fencing, commit tracker — through :class:`StoreCluster`; the
balancer is parked (interval beyond the horizon) so each test controls
exactly which :class:`ReconfigOp` enters the total order.
"""

import dataclasses

import pytest

from repro.reconfig.balancer import LoadBalancer
from repro.reconfig.checker import ReconfigViolation, check_reconfig
from repro.reconfig.txn import ReconfigOp
from repro.store import StoreCluster, StoreSpec, check_serializability
from repro.store.transaction import Transaction


def build_elastic(n_groups=3, seed=2, **kwargs):
    spec = StoreSpec(n_keys=9, kind="periodic", count=0,
                     rebalance_interval=10_000.0, **kwargs)
    return StoreCluster.build([2] * n_groups, store=spec,
                              protocol="a1", seed=seed)


def first_client(cluster, gid):
    pid = cluster.system.topology.members(gid)[0]
    return cluster.client(pid)


def migrate(cluster, rid, key, dst):
    """Multicast one R moving ``key`` to ``dst`` and run to quiescence."""
    src = cluster.partition_map.group_of(key)
    op = ReconfigOp(reconfig_id=rid, src=src, dst=dst, keys=(key,))
    submitter = cluster.system.topology.members(src)[0]
    cluster.stores[submitter].submit_reconfig(op)
    cluster.system.run_quiescent()
    return src


class TestMigration:
    def test_completed_move_transfers_state(self):
        cluster = build_elastic()
        key = "k00000"
        src = cluster.partition_map.group_of(key)
        dst = (src + 1) % 3
        first_client(cluster, src).submit("t1", (("put", key, 42),))
        cluster.system.run_quiescent()

        migrate(cluster, "rc-move", key, dst)

        topology = cluster.system.topology
        for pid in topology.members(dst):
            assert cluster.stores[pid].state[key] == 42
        for pid in topology.members(src):
            assert key not in cluster.stores[pid].state
        summary = check_reconfig(cluster)
        assert summary["completed"] == ["rc-move"]
        assert summary["keys_moved"] == [key]
        check_serializability(cluster)

    def test_source_without_ownership_aborts_the_move(self):
        cluster = build_elastic()
        key = "k00000"
        owner = cluster.partition_map.group_of(key)
        src = (owner + 1) % 3  # does not own the key
        dst = (owner + 2) % 3
        op = ReconfigOp(reconfig_id="rc-bad", src=src, dst=dst,
                        keys=(key,))
        submitter = cluster.system.topology.members(src)[0]
        cluster.stores[submitter].submit_reconfig(op)
        cluster.system.run_quiescent()

        summary = check_reconfig(cluster)
        assert summary["aborted"] == ["rc-bad"]
        # The true owner still serves the key; the target rolled back.
        for pid in cluster.system.topology.members(dst):
            assert key not in cluster.stores[pid].state

    def test_stale_client_bounces_and_residue_commits(self):
        cluster = build_elastic()
        key = "k00000"
        src = cluster.partition_map.group_of(key)
        dst = (src + 1) % 3
        other = (src + 2) % 3
        migrate(cluster, "rc-move", key, dst)

        # A session homed in a bystander group still routes the key to
        # its old owner: the owner fences, the residue retries at dst.
        stale = first_client(cluster, other)
        stale.submit("t2", (("put", key, 7),))
        cluster.system.run_quiescent()

        tracker = cluster.tracker
        assert "t2" in tracker.committed
        assert any(parent == "t2" for parent in tracker.parents.values())
        assert ("t2", src) in tracker.bounces
        assert stale.overrides[key] == dst
        assert src in stale.fences[key]
        for pid in cluster.system.topology.members(dst):
            assert cluster.stores[pid].state[key] == 7
        check_serializability(cluster)
        check_reconfig(cluster)

    def test_fence_legs_ride_later_transactions(self):
        cluster = build_elastic()
        key = "k00000"
        src = cluster.partition_map.group_of(key)
        dst = (src + 1) % 3
        other = (src + 2) % 3
        migrate(cluster, "rc-move", key, dst)
        stale = first_client(cluster, other)
        stale.submit("t2", (("put", key, 7),))
        cluster.system.run_quiescent()

        # The next transaction routing the key is multicast to the new
        # owner AND the fenced former owner — the extra leg restores
        # the pairwise-ordering link across the epoch change.
        msg = stale.submit("t3", (("incr", key, 1),))
        assert set(msg.dest_groups) >= {src, dst}
        cluster.system.run_quiescent()
        check_serializability(cluster)

    def test_tampered_snapshot_is_detected(self):
        cluster = build_elastic()
        key = "k00000"
        src = cluster.partition_map.group_of(key)
        first_client(cluster, src).submit("t1", (("put", key, 42),))
        cluster.system.run_quiescent()
        migrate(cluster, "rc-move", key, (src + 1) % 3)

        for store in cluster.stores.values():
            h = store.handoffs.get("rc-move")
            if h is not None:
                store.handoffs["rc-move"] = dataclasses.replace(
                    h, snapshot=((key, 999),))
        with pytest.raises(ReconfigViolation, match="lost or invented"):
            check_reconfig(cluster)


class TestServiceStage:
    def test_fence_leg_delivery_has_no_local_work(self):
        cluster = build_elastic(service_time=1.0)
        key = "k00000"
        src = cluster.partition_map.group_of(key)
        dst = (src + 1) % 3
        store = cluster.stores[cluster.system.topology.members(src)[0]]
        local = Transaction(txn_id="tx-local", client=0,
                            ops=(("put", key, 1),),
                            routes=((key, src),))
        fence_only = Transaction(txn_id="tx-fence", client=0,
                                 ops=(("put", key, 1),),
                                 routes=((key, dst),))
        assert store._has_local_work(local)
        assert not store._has_local_work(fence_only)


class TestDemandHeat:
    def test_tracker_journals_issues_at_register(self):
        cluster = build_elastic()
        key = "k00000"
        src = cluster.partition_map.group_of(key)
        first_client(cluster, src).submit("t1", (("put", key, 1),))
        assert cluster.tracker.key_issues[-1][1] == (key,)


class TestBalancerSplit:
    def _heat_keys(self, cluster, gid, want=2):
        keys = [f"k{i:05d}" for i in range(cluster.spec.n_keys)
                if cluster.partition_map.group_of(f"k{i:05d}") == gid]
        if len(keys) < want:
            pytest.skip("seeded placement put too few keys on the group")
        return keys[:want]

    def test_greedy_split_moves_only_strict_improvements(self):
        cluster = build_elastic()
        gid = cluster.partition_map.group_of("k00000")
        hot, warm = self._heat_keys(cluster, gid)
        journal = cluster.tracker.key_issues
        journal.extend([(0.0, (hot,))] * 60 + [(0.0, (warm,))] * 40)

        bal = cluster.balancer
        bal._tick()
        assert len(bal.migrations) == 1
        _, _, src, _, keys = bal.migrations[0]
        assert src == gid
        # Moving the hottest key improves balance (60 vs 40); moving
        # the warm one too would just relocate the whole imbalance.
        assert keys == (hot,)

    def test_indivisibly_hot_key_does_not_ping_pong(self):
        cluster = build_elastic()
        gid = cluster.partition_map.group_of("k00000")
        (hot,) = self._heat_keys(cluster, gid, want=1)
        cluster.tracker.key_issues.extend([(0.0, (hot,))] * 100)

        bal = cluster.balancer
        bal._tick()
        # All the heat sits on one key: no destination can take it and
        # end up strictly better balanced, so the balancer holds still.
        assert bal.migrations == []

    def test_completed_move_is_pushed_to_every_session(self):
        cluster = build_elastic()
        key = "k00000"
        src = cluster.partition_map.group_of(key)
        dst = (src + 1) % 3
        migrate(cluster, "rc-move", key, dst)

        bal = cluster.balancer
        bal._outstanding = ReconfigOp(reconfig_id="rc-move", src=src,
                                      dst=dst, keys=(key,))
        bal._tick()
        assert bal.pushes == 1
        assert bal.key_chain[key] == [src]
        for client in cluster.clients.values():
            assert client.overrides[key] == dst
            assert src in client.fences[key]

    def test_validation(self):
        cluster = build_elastic()
        with pytest.raises(ValueError, match="unknown mode"):
            LoadBalancer(cluster, interval=1.0, mode="shuffle")
        with pytest.raises(ValueError, match="interval"):
            LoadBalancer(cluster, interval=0.0)
        with pytest.raises(ValueError, match="threshold"):
            LoadBalancer(cluster, interval=1.0, threshold=0.5)
        with pytest.raises(ValueError, match="max_keys"):
            LoadBalancer(cluster, interval=1.0, max_keys=0)


class TestReconfigOp:
    def test_payload_round_trip(self):
        op = ReconfigOp(reconfig_id="rc1", src=0, dst=2,
                        keys=("a", "b"))
        assert ReconfigOp.from_payload(op.to_payload()) == op

    def test_self_move_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            ReconfigOp(reconfig_id="rc1", src=1, dst=1, keys=("a",))

    def test_empty_move_rejected(self):
        with pytest.raises(ValueError, match="no keys"):
            ReconfigOp(reconfig_id="rc1", src=0, dst=1, keys=())
