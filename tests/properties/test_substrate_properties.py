"""Property-based tests for the substrate (kernel, clocks, topology)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.lamport import LamportClock
from repro.net.topology import Fixed, Jittered, LatencyModel, Topology, Uniform
from repro.sim.events import EventQueue
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_pop_order_is_nondecreasing(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = []
        while (e := q.pop()) is not None:
            popped.append(e.time)
        assert popped == sorted(popped)
        assert len(popped) == len(times)

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                    max_size=100))
    def test_equal_times_preserve_fifo(self, times):
        q = EventQueue()
        order = []
        for i, t in enumerate(times):
            q.push(float(t), lambda i=i: order.append(i))
        while (e := q.pop()) is not None:
            e.action()
        # Within each timestamp class, indices must appear in FIFO order.
        by_time = {}
        for idx in order:
            by_time.setdefault(times[idx], []).append(idx)
        for idxs in by_time.values():
            assert idxs == sorted(idxs)


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.001, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=100))
    def test_clock_monotone_and_all_events_run(self, delays):
        sim = Simulator()
        observed = []
        for d in delays:
            sim.schedule(d, lambda: observed.append(sim.now))
        sim.run()
        assert len(observed) == len(delays)
        assert observed == sorted(observed)
        assert sim.now == max(observed)


class TestLamportClockProperties:
    @given(st.lists(st.tuples(st.sampled_from(["send_intra", "send_inter",
                                               "recv", "local"]),
                              st.integers(min_value=0, max_value=50)),
                    max_size=200))
    def test_clock_never_decreases(self, events):
        clock = LamportClock()
        last = clock.value
        for kind, arg in events:
            if kind == "send_intra":
                clock.timestamp_send(False)
            elif kind == "send_inter":
                clock.timestamp_send(True)
            elif kind == "recv":
                clock.observe_receive(arg)
            else:
                clock.local_event()
            assert clock.value >= last
            last = clock.value

    @given(st.integers(min_value=0, max_value=1000))
    def test_receive_is_idempotent(self, ts):
        clock = LamportClock()
        clock.observe_receive(ts)
        v = clock.value
        clock.observe_receive(ts)
        assert clock.value == v

    @given(st.lists(st.booleans(), min_size=1, max_size=30))
    def test_degree_equals_inter_group_hops(self, hops):
        """A relay chain's end clock counts exactly the inter hops."""
        clocks = [LamportClock() for _ in range(len(hops) + 1)]
        for i, inter in enumerate(hops):
            ts = clocks[i].timestamp_send(inter)
            clocks[i + 1].observe_receive(ts)
        assert clocks[-1].local_event() == sum(hops)


class TestTopologyProperties:
    @given(st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                    max_size=8))
    def test_groups_partition_processes(self, sizes):
        topo = Topology(sizes)
        seen = []
        for gid in topo.group_ids:
            members = topo.members(gid)
            assert members, "groups are non-empty"
            for pid in members:
                assert topo.group_of(pid) == gid
            seen.extend(members)
        assert sorted(seen) == topo.processes
        assert len(seen) == sum(sizes)

    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=2,
                    max_size=6),
           st.data())
    def test_processes_of_groups_sorted_and_deduped(self, sizes, data):
        topo = Topology(sizes)
        picks = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(sizes) - 1),
            min_size=1, max_size=10))
        result = topo.processes_of_groups(picks)
        assert result == sorted(set(result))
        for pid in result:
            assert topo.group_of(pid) in set(picks)


class TestLatencyModelProperties:
    @given(st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=10.0, max_value=500.0),
           st.integers(min_value=0, max_value=2 ** 31))
    def test_samples_positive_and_scoped(self, intra, inter, seed):
        model = LatencyModel(intra=Jittered(intra, intra / 10),
                             inter=Jittered(inter, inter / 10))
        rng = random.Random(seed)
        for _ in range(20):
            assert model.sample(0, 0, rng) >= intra
            assert model.sample(0, 1, rng) >= inter

    @given(st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=0.0, max_value=100.0),
           st.integers(min_value=0, max_value=2 ** 31))
    def test_uniform_within_bounds(self, lo, width, seed):
        dist = Uniform(lo, lo + width)
        rng = random.Random(seed)
        for _ in range(20):
            assert lo <= dist.sample(rng) <= lo + width


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2 ** 31),
           st.text(min_size=1, max_size=20))
    def test_streams_reproducible(self, seed, name):
        a = RngRegistry(seed).stream(name).random()
        b = RngRegistry(seed).stream(name).random()
        assert a == b

    @given(st.integers(min_value=0, max_value=2 ** 31),
           st.text(min_size=1, max_size=10),
           st.text(min_size=1, max_size=10))
    def test_distinct_names_are_independent(self, seed, n1, n2):
        if n1 == n2:
            return
        reg = RngRegistry(seed)
        assert reg.stream(n1) is not reg.stream(n2)
