"""Property-based end-to-end tests: random workloads, random crashes.

These fuzz the full protocol stacks over the simulated WAN and assert
the paper's four correctness properties plus latency-degree invariants
on every generated run.  Runs are kept small (hypothesis executes many
of them) but cover the interesting axes: seeds, topology shapes, cast
timings, destination sets and crash schedules.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkers.properties import check_all
from repro.failure.schedule import CrashSchedule
from repro.runtime.builder import build_system

# Keep hypothesis example counts modest: each example is a full
# distributed-system run.
FAST = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])
SLOW = settings(max_examples=10, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def small_system(draw):
    """(group_sizes, seed) for a modest topology."""
    n_groups = draw(st.integers(min_value=2, max_value=3))
    sizes = [draw(st.integers(min_value=1, max_value=3))
             for _ in range(n_groups)]
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return sizes, seed


@st.composite
def casts(draw, n_groups, max_casts=5):
    """A list of (time, sender_gid, dest_groups) cast plans."""
    count = draw(st.integers(min_value=1, max_value=max_casts))
    plans = []
    for _ in range(count):
        time = draw(st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False))
        sender_gid = draw(st.integers(min_value=0, max_value=n_groups - 1))
        dest = draw(st.sets(
            st.integers(min_value=0, max_value=n_groups - 1),
            min_size=1, max_size=n_groups))
        plans.append((time, sender_gid, tuple(sorted(dest))))
    return plans


class TestA1Properties:
    @FAST
    @given(small_system(), st.data())
    def test_all_properties_on_random_runs(self, sys_params, data):
        sizes, seed = sys_params
        plans = data.draw(casts(len(sizes)))
        system = build_system(protocol="a1", group_sizes=sizes, seed=seed)
        for time, sender_gid, dest in plans:
            sender = system.topology.members(sender_gid)[0]
            system.cast_at(time, sender, dest)
        system.run_quiescent(max_events=2_000_000)
        check_all(system.log, system.topology)

    @FAST
    @given(small_system(), st.data())
    def test_genuine_lower_bound_on_random_runs(self, sys_params, data):
        """No multi-group message ever beats latency degree 2."""
        sizes, seed = sys_params
        plans = data.draw(casts(len(sizes), max_casts=3))
        system = build_system(protocol="a1", group_sizes=sizes, seed=seed)
        multi = []
        for time, sender_gid, dest in plans:
            sender = system.topology.members(sender_gid)[0]
            msg = system.cast_at(time, sender, dest)
            if len(dest) > 1:
                multi.append(msg)
        system.run_quiescent(max_events=2_000_000)
        for msg in multi:
            degree = system.meter.latency_degree(msg.mid)
            assert degree is not None and degree >= 2

    @SLOW
    @given(st.integers(min_value=0, max_value=5_000), st.data())
    def test_properties_under_random_minority_crashes(self, seed, data):
        system = build_system(protocol="a1", group_sizes=[3, 3], seed=seed)
        # Hypothesis-chosen minority crash schedule (at most 1 of 3 per
        # group), applied mid-run.
        crashes = {}
        for gid in (0, 1):
            if data.draw(st.booleans()):
                victim = data.draw(st.sampled_from(
                    system.topology.members(gid)))
                crashes[victim] = data.draw(
                    st.floats(min_value=0.1, max_value=20.0,
                              allow_nan=False))
        schedule = CrashSchedule(crashes)
        schedule.validate(system.topology)
        schedule.apply(system.sim, system.network)
        for t in (0.0, 2.0, 9.0):
            sender = data.draw(st.sampled_from(system.topology.processes))
            system.cast_at(t, sender, (0, 1))
        system.run_quiescent(max_events=2_000_000)
        check_all(system.log, system.topology, schedule)


class TestA2Properties:
    @FAST
    @given(small_system(), st.lists(
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        min_size=1, max_size=5))
    def test_all_properties_on_random_runs(self, sys_params, times):
        sizes, seed = sys_params
        system = build_system(protocol="a2", group_sizes=sizes, seed=seed)
        for i, time in enumerate(times):
            sender = system.topology.processes[i % len(
                system.topology.processes)]
            system.cast_at(time, sender)
        system.run_quiescent(max_events=2_000_000)
        check_all(system.log, system.topology)

    @FAST
    @given(small_system(), st.lists(
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        min_size=1, max_size=5))
    def test_quiescence_on_random_runs(self, sys_params, times):
        """Prop A.9: the event queue always drains (enforced by
        run_quiescent — a livelock would trip the event budget)."""
        sizes, seed = sys_params
        system = build_system(protocol="a2", group_sizes=sizes, seed=seed)
        for i, time in enumerate(times):
            system.cast_at(time, system.topology.processes[0])
        system.run_quiescent(max_events=2_000_000)

    @SLOW
    @given(st.integers(min_value=0, max_value=5_000), st.data())
    def test_properties_under_random_minority_crashes(self, seed, data):
        system = build_system(protocol="a2", group_sizes=[3, 3], seed=seed)
        crashes = {}
        for gid in (0, 1):
            if data.draw(st.booleans()):
                victim = data.draw(st.sampled_from(
                    system.topology.members(gid)))
                crashes[victim] = data.draw(
                    st.floats(min_value=0.1, max_value=15.0,
                              allow_nan=False))
        schedule = CrashSchedule(crashes)
        schedule.validate(system.topology)
        schedule.apply(system.sim, system.network)
        for t in (0.0, 5.0):
            sender = data.draw(st.sampled_from(system.topology.processes))
            system.cast_at(t, sender)
        system.run_quiescent(max_events=2_000_000)
        check_all(system.log, system.topology, schedule)


class TestBaselineProperties:
    @FAST
    @given(st.integers(min_value=0, max_value=2_000), st.data())
    def test_skeen_random_runs(self, seed, data):
        plans = data.draw(casts(2, max_casts=4))
        system = build_system(protocol="skeen", group_sizes=[2, 2],
                              seed=seed)
        for time, sender_gid, dest in plans:
            sender = system.topology.members(sender_gid)[0]
            system.cast_at(time, sender, dest)
        system.run_quiescent(max_events=2_000_000)
        check_all(system.log, system.topology)

    @FAST
    @given(st.integers(min_value=0, max_value=2_000), st.data())
    def test_ring_random_runs(self, seed, data):
        plans = data.draw(casts(3, max_casts=4))
        system = build_system(protocol="ring", group_sizes=[2, 2, 2],
                              seed=seed)
        for time, sender_gid, dest in plans:
            sender = system.topology.members(sender_gid)[0]
            system.cast_at(time, sender, dest)
        system.run_quiescent(max_events=2_000_000)
        check_all(system.log, system.topology)

    @FAST
    @given(st.integers(min_value=0, max_value=2_000), st.data())
    def test_global_random_runs(self, seed, data):
        plans = data.draw(casts(2, max_casts=3))
        system = build_system(protocol="global", group_sizes=[2, 2],
                              seed=seed)
        for time, sender_gid, dest in plans:
            sender = system.topology.members(sender_gid)[0]
            system.cast_at(time, sender, dest)
        system.run_quiescent(max_events=2_000_000)
        check_all(system.log, system.topology)
