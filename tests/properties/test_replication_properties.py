"""Property-based tests of the replication layer.

Random operation sequences against the partially replicated store and
the fully replicated ledger; the invariants are convergence (all
replicas of a partition end identical), conservation (ledger funds are
neither created nor destroyed) and determinism (same seed, same final
state).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.replication import KVCluster, LedgerCluster

FAST = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

KEYS = ["alpha", "beta", "gamma", "delta"]
PARTITIONS = {"alpha": 0, "beta": 0, "gamma": 1, "delta": 1}


@st.composite
def kv_ops(draw, max_ops=8):
    """A list of (time, store pid, {key: value}) write batches."""
    count = draw(st.integers(min_value=1, max_value=max_ops))
    ops = []
    for _ in range(count):
        time = draw(st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False))
        pid = draw(st.integers(min_value=0, max_value=3))
        keys = draw(st.sets(st.sampled_from(KEYS), min_size=1, max_size=3))
        writes = {k: draw(st.integers(min_value=0, max_value=99))
                  for k in keys}
        ops.append((time, pid, writes))
    return ops


class TestKVStoreProperties:
    @FAST
    @given(st.integers(min_value=0, max_value=5_000), kv_ops())
    def test_replicas_always_converge(self, seed, ops):
        cluster = KVCluster.build([2, 2], partitions=PARTITIONS,
                                  protocol="a1", seed=seed)
        for time, pid, writes in ops:
            cluster.system.sim.call_at(
                time, lambda p=pid, w=writes:
                    cluster.store(p).put_many(dict(w)))
        cluster.system.run_quiescent(max_events=2_000_000)
        cluster.assert_convergence()

    @FAST
    @given(st.integers(min_value=0, max_value=5_000), kv_ops())
    def test_applied_journals_prefix_consistent(self, seed, ops):
        """Replicas of one group apply ops in exactly one order."""
        cluster = KVCluster.build([2, 2], partitions=PARTITIONS,
                                  protocol="a1", seed=seed)
        for time, pid, writes in ops:
            cluster.system.sim.call_at(
                time, lambda p=pid, w=writes:
                    cluster.store(p).put_many(dict(w)))
        cluster.system.run_quiescent(max_events=2_000_000)
        for gid in (0, 1):
            journals = {
                tuple(cluster.store(p).applied)
                for p in cluster.system.topology.members(gid)
            }
            assert len(journals) == 1

    @FAST
    @given(st.integers(min_value=0, max_value=2_000), kv_ops(max_ops=5))
    def test_same_seed_same_state(self, seed, ops):
        def run():
            cluster = KVCluster.build([2, 2], partitions=PARTITIONS,
                                      protocol="a1", seed=seed)
            for i, (time, pid, writes) in enumerate(ops):
                cluster.system.sim.call_at(
                    time, lambda p=pid, w=writes:
                        cluster.store(p).put_many(dict(w)))
            cluster.system.run_quiescent(max_events=2_000_000)
            return (repr(sorted(cluster.store(0).owned_snapshot().items())),
                    repr(sorted(cluster.store(2).owned_snapshot().items())))

        assert run() == run()


@st.composite
def transfers(draw, max_ops=8):
    count = draw(st.integers(min_value=1, max_value=max_ops))
    ops = []
    accounts = ["a", "b", "c"]
    for _ in range(count):
        time = draw(st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False))
        pid = draw(st.integers(min_value=0, max_value=3))
        src = draw(st.sampled_from(accounts))
        dst = draw(st.sampled_from([x for x in accounts if x != src]))
        amount = draw(st.integers(min_value=1, max_value=150))
        ops.append((time, pid, src, dst, amount))
    return ops


class TestLedgerProperties:
    INITIAL = {"a": 100, "b": 100, "c": 100}

    @FAST
    @given(st.integers(min_value=0, max_value=5_000), transfers())
    def test_funds_conserved_and_never_negative(self, seed, ops):
        cluster = LedgerCluster.build([2, 2], dict(self.INITIAL),
                                      protocol="a2", seed=seed)
        for time, pid, src, dst, amount in ops:
            cluster.system.sim.call_at(
                time, lambda p=pid, s=src, d=dst, a=amount:
                    cluster.ledgers[p].transfer(s, d, a))
        cluster.system.run_quiescent(max_events=2_000_000)
        cluster.assert_convergence()
        ledger = cluster.ledger(0)
        balances = {acc: ledger.balance(acc) for acc in self.INITIAL}
        assert sum(balances.values()) == sum(self.INITIAL.values())
        assert all(v >= 0 for v in balances.values())

    @FAST
    @given(st.integers(min_value=0, max_value=5_000), transfers())
    def test_verdicts_identical_everywhere(self, seed, ops):
        cluster = LedgerCluster.build([2, 2], dict(self.INITIAL),
                                      protocol="a2", seed=seed)
        for time, pid, src, dst, amount in ops:
            cluster.system.sim.call_at(
                time, lambda p=pid, s=src, d=dst, a=amount:
                    cluster.ledgers[p].transfer(s, d, a))
        cluster.system.run_quiescent(max_events=2_000_000)
        verdicts = {
            (tuple(l.committed), tuple(l.rejected))
            for l in cluster.ledgers.values()
        }
        assert len(verdicts) == 1
