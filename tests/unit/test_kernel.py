"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.events import Event, EventQueue, ordered_pair
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.rng import RngRegistry


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(3.0, lambda: fired.append("c"))
        q.push(1.0, lambda: fired.append("a"))
        q.push(2.0, lambda: fired.append("b"))
        while (e := q.pop()) is not None:
            e.action()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        q = EventQueue()
        fired = []
        for name in "abcde":
            q.push(1.0, lambda n=name: fired.append(n))
        while (e := q.pop()) is not None:
            e.action()
        assert fired == list("abcde")

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        fired = []
        event = q.push(1.0, lambda: fired.append("x"))
        q.push(2.0, lambda: fired.append("y"))
        event.cancel()
        while (e := q.pop()) is not None:
            e.action()
        assert fired == ["y"]

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        event.cancel()
        assert q.peek_time() == 5.0

    def test_len_counts_pending(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2

    def test_clear_empties_queue(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.clear()
        assert q.pop() is None

    def test_ordered_pair(self):
        assert ordered_pair(2, 1) == (1, 2)
        assert ordered_pair(1, 2) == (1, 2)


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_call_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(5.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(2.0, lambda: times.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert times == [1.0, 3.0]

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        end = sim.run(until=5.0)
        assert fired == [1]
        assert end == 5.0
        assert sim.pending_events == 1

    def test_run_resumes_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        sim.run()
        assert fired == [10]

    def test_max_events_limits_execution(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run(max_events=7)
        assert count[0] == 7

    def test_stop_requests_exit(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_run_until_quiescent_raises_on_runaway(self):
        sim = Simulator()

        def tick():
            sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        with pytest.raises(SimulationError):
            sim.run_until_quiescent(max_events=100)

    def test_idle_hook_refills_queue_once(self):
        sim = Simulator()
        fired = []
        refills = [0]

        def hook():
            if refills[0] == 0:
                refills[0] += 1
                sim.schedule(1.0, lambda: fired.append("refill"))

        sim.add_idle_hook(hook)
        sim.schedule(1.0, lambda: fired.append("first"))
        sim.run()
        assert fired == ["first", "refill"]

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 5

    def test_run_is_not_reentrant(self):
        sim = Simulator()

        def inner():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, inner)
        sim.run()


class TestRngRegistry:
    def test_streams_are_reproducible(self):
        a = RngRegistry(42).stream("net")
        b = RngRegistry(42).stream("net")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        reg = RngRegistry(42)
        net = reg.stream("net")
        before = reg.stream("workload").random()
        # Draining one stream must not disturb the other.
        reg2 = RngRegistry(42)
        for _ in range(100):
            reg2.stream("net").random()
        assert reg2.stream("workload").random() == before

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("net").random()
        b = RngRegistry(2).stream("net").random()
        assert a != b

    def test_same_stream_returned_on_repeat_access(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")

    def test_fork_derives_child_registry(self):
        parent = RngRegistry(42)
        child1 = parent.fork("rep1")
        child2 = parent.fork("rep2")
        assert child1.seed != child2.seed
        assert RngRegistry(42).fork("rep1").seed == child1.seed
