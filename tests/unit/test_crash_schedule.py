"""Boundary cases of :meth:`CrashSchedule.validate` and friends.

The validator guards the paper's system-model assumptions (at least one
correct process per group; a correct majority per group for Paxos
liveness), so its edges — exact majority loss, whole-group loss, empty
schedules, strangers — deserve explicit pinning: campaign crash specs
lean on it to fail fast instead of wedging a worker process mid-run.
"""

import random
import warnings

import pytest

from repro.failure.schedule import CrashHorizonWarning, CrashSchedule
from repro.net.topology import Topology


class TestValidateBoundaries:
    def test_empty_schedule_always_validates(self):
        CrashSchedule.none().validate(Topology([1]))
        CrashSchedule.none().validate(Topology([3, 3, 3]))
        CrashSchedule({}).validate(Topology([2, 2]))

    def test_strict_minority_is_accepted(self):
        # Group of 3: one crash leaves 2/3 correct — a strict majority.
        CrashSchedule({0: 1.0}).validate(Topology([3, 3]))

    def test_exact_majority_crash_is_rejected(self):
        # Group of 4: two crashes leave 2/4 — exactly half, no majority.
        schedule = CrashSchedule({0: 1.0, 1: 2.0})
        with pytest.raises(ValueError, match="group 0 loses its majority"):
            schedule.validate(Topology([4, 3]))

    def test_half_of_even_group_rejected_but_allowed_without_majority(self):
        schedule = CrashSchedule({2: 1.0})  # group 1 = {2, 3}: 1/2 left
        with pytest.raises(ValueError, match="group 1 loses its majority"):
            schedule.validate(Topology([2, 2]))
        # The paper's base model only needs one correct process.
        schedule.validate(Topology([2, 2]), require_majority=False)

    def test_all_processes_of_one_group_crashed(self):
        schedule = CrashSchedule({3: 1.0, 4: 2.0, 5: 3.0})
        with pytest.raises(ValueError, match="group 1 has no correct"):
            schedule.validate(Topology([3, 3]))
        # Even without the majority requirement this stays illegal.
        with pytest.raises(ValueError, match="group 1 has no correct"):
            schedule.validate(Topology([3, 3]), require_majority=False)

    def test_singleton_group_crash_is_whole_group_loss(self):
        with pytest.raises(ValueError, match="group 0 has no correct"):
            CrashSchedule({0: 1.0}).validate(Topology([1, 3]))

    def test_unknown_process_rejected(self):
        schedule = CrashSchedule({99: 1.0})
        with pytest.raises(ValueError, match=r"unknown process\(es\) \[99\]"):
            schedule.validate(Topology([2, 2]))

    def test_unknown_process_reported_alongside_known(self):
        schedule = CrashSchedule({0: 1.0, 7: 2.0, 12: 3.0})
        with pytest.raises(ValueError, match=r"\[7, 12\]"):
            schedule.validate(Topology([3, 3]))


class TestRandomMinority:
    @pytest.mark.parametrize("seed", range(8))
    def test_always_validates(self, seed):
        """The generator's contract: every draw satisfies validate()."""
        topology = Topology([3, 4, 2])
        schedule = CrashSchedule.random_minority(
            topology, random.Random(seed), crash_probability=1.0)
        schedule.validate(topology)

    def test_crash_times_within_window(self):
        topology = Topology([5, 5])
        schedule = CrashSchedule.random_minority(
            topology, random.Random(3), window=17.0, crash_probability=1.0)
        assert schedule.crashes
        assert all(0.0 <= t <= 17.0 for t in schedule.crashes.values())


class TestHorizonDiagnostics:
    """Crashes past the run horizon: legal, but flagged for the
    shrinker — they extend the run without influencing it."""

    def test_late_crash_warns_when_horizon_given(self):
        schedule = CrashSchedule({0: 5.0, 4: 250.0})
        with pytest.warns(CrashHorizonWarning, match="pid 4 at 250"):
            schedule.validate(Topology([3, 3]), horizon=100.0)

    def test_no_warning_within_horizon(self):
        schedule = CrashSchedule({0: 5.0})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            schedule.validate(Topology([3, 3]), horizon=100.0)

    def test_no_warning_without_horizon(self):
        """Default validate() is unchanged: no horizon, no warning."""
        schedule = CrashSchedule({0: 250.0})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            schedule.validate(Topology([3, 3]))

    def test_late_crashes_diagnostic(self):
        schedule = CrashSchedule({0: 5.0, 3: 150.0, 4: 99.0})
        assert schedule.late_crashes(100.0) == {3: 150.0}
        assert schedule.late_crashes(200.0) == {}
        # Boundary: a crash exactly at the horizon is not late.
        assert schedule.late_crashes(99.0) == {3: 150.0}

    def test_truncated_drops_only_late_crashes(self):
        schedule = CrashSchedule({0: 5.0, 3: 150.0})
        cut = schedule.truncated(100.0)
        assert cut.crashes == {0: 5.0}
        # The original is untouched (schedules are immutable plans).
        assert schedule.crashes == {0: 5.0, 3: 150.0}

    def test_horizon_warning_still_validates_structure(self):
        """The warning is advisory; structural errors still raise."""
        schedule = CrashSchedule({0: 250.0, 1: 251.0})
        with pytest.warns(CrashHorizonWarning):
            with pytest.raises(ValueError, match="loses its majority"):
                schedule.validate(Topology([3, 3]), horizon=10.0)


class TestRecordObserved:
    def test_dynamic_crash_becomes_faulty(self):
        schedule = CrashSchedule.none()
        assert not schedule.is_faulty(2)
        schedule.record_observed(2, 17.5)
        assert schedule.is_faulty(2)
        assert schedule.crash_time(2) == 17.5

    def test_static_entry_wins_over_late_observation(self):
        schedule = CrashSchedule({2: 10.0})
        schedule.record_observed(2, 99.0)
        assert schedule.crash_time(2) == 10.0


class TestAccessors:
    def test_correct_processes_and_flags(self):
        topology = Topology([2, 2])
        schedule = CrashSchedule({1: 4.0})
        assert schedule.is_faulty(1) and not schedule.is_faulty(0)
        assert schedule.crash_time(1) == 4.0
        assert schedule.crash_time(2) is None
        assert schedule.correct_processes(topology) == [0, 2, 3]
        assert len(schedule) == 1
