"""Unit tests for the run-report module."""

import pytest

from repro.runtime.builder import build_system
from repro.runtime.report import LatencySummary, RunReport, percentile
from repro.workload.generators import (
    periodic_workload,
    schedule_workload,
    uniform_k_groups,
)


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 0.5) == 5.0
        assert percentile([5.0], 0.99) == 5.0

    def test_median_of_odd_population(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_extremes(self):
        values = list(map(float, range(1, 101)))
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 100.0

    def test_p90_of_uniform_range(self):
        values = list(map(float, range(1, 101)))
        assert 89.0 <= percentile(values, 0.9) <= 91.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestLatencySummary:
    def test_fields(self):
        s = LatencySummary.of([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.max == 4.0
        assert s.p50 in (2.0, 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencySummary.of([])


@pytest.fixture(scope="module")
def finished_run():
    system = build_system(protocol="a1", group_sizes=[2, 2, 2], seed=3)
    plans = periodic_workload(system.topology, period=1.0, count=12,
                              destinations=uniform_k_groups(2))
    plans += periodic_workload(system.topology, period=1.0, count=6,
                               destinations=uniform_k_groups(1),
                               start=0.5)
    schedule_workload(system, plans)
    system.run_quiescent()
    return system


class TestRunReport:
    def test_degree_histogram_totals(self, finished_run):
        report = RunReport(finished_run)
        hist = report.degree_histogram()
        assert sum(hist.values()) == 18
        assert all(deg >= 0 for deg in hist)

    def test_degree_by_destination_count(self, finished_run):
        report = RunReport(finished_run)
        by_k = report.degree_by_destination_count()
        assert set(by_k) == {1, 2}
        # The genuine lower bound holds per run: multi-group messages
        # never measure below 2.  Under cross-traffic contention they
        # may measure above it — a queued message's delivery happens
        # after later receives, which deepens its causal chain.
        assert min(by_k[2]) >= 2
        # The floor is attained by some message in this workload.
        assert 2 in by_k[2]

    def test_latency_summary(self, finished_run):
        report = RunReport(finished_run)
        summary = report.latency_summary()
        assert summary.count == 18
        assert summary.p50 <= summary.p90 <= summary.p99 <= summary.max

    def test_latency_by_destination_count(self, finished_run):
        report = RunReport(finished_run)
        by_k = report.latency_by_destination_count()
        # Cross-group messages are strictly slower than local ones.
        assert by_k[2].mean > by_k[1].mean

    def test_traffic_by_kind(self, finished_run):
        report = RunReport(finished_run)
        rows = report.traffic_by_kind()
        assert rows
        kinds = [kind for kind, _, _ in rows]
        assert any("cons" in k for k in kinds)
        for _, total, inter in rows:
            assert inter <= total

    def test_messages_per_cast(self, finished_run):
        report = RunReport(finished_run)
        per_cast = report.messages_per_cast()
        assert per_cast is not None and per_cast > 1.0

    def test_render_contains_all_sections(self, finished_run):
        text = RunReport(finished_run).render()
        assert "Latency degree histogram" in text
        assert "Worst-replica delivery latency" in text
        assert "Heaviest message kinds" in text
        assert "copies per application message" in text

    def test_empty_run_renders(self):
        system = build_system(protocol="a1", group_sizes=[2, 2], seed=1)
        text = RunReport(system).render()
        assert "Run report" in text
