"""Unit tests for topology, latency models and the simulated network."""

import random

import pytest

from repro.net.message import Message
from repro.net.network import Network
from repro.net.topology import Fixed, Jittered, LatencyModel, Topology, Uniform
from repro.net.trace import MessageTrace, NetworkStats
from repro.sim.kernel import Simulator
from repro.sim.process import Process


class TestTopology:
    def test_consecutive_pid_assignment(self):
        topo = Topology([3, 2])
        assert topo.members(0) == [0, 1, 2]
        assert topo.members(1) == [3, 4]
        assert topo.n_processes == 5

    def test_group_of(self):
        topo = Topology([2, 2])
        assert topo.group_of(0) == 0
        assert topo.group_of(3) == 1

    def test_same_group(self):
        topo = Topology([2, 2])
        assert topo.same_group(0, 1)
        assert not topo.same_group(1, 2)

    def test_processes_of_groups(self):
        topo = Topology([2, 2, 2])
        assert topo.processes_of_groups([2, 0]) == [0, 1, 4, 5]
        assert topo.processes_of_groups([1, 1]) == [2, 3]

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            Topology([3, 0])

    def test_no_groups_rejected(self):
        with pytest.raises(ValueError):
            Topology([])

    def test_group_ids(self):
        assert Topology([1, 1, 1]).group_ids == [0, 1, 2]


class TestDistributions:
    def test_fixed(self):
        assert Fixed(5.0).sample(random.Random(0)) == 5.0

    def test_uniform_within_bounds(self):
        rng = random.Random(0)
        dist = Uniform(1.0, 2.0)
        for _ in range(100):
            assert 1.0 <= dist.sample(rng) <= 2.0

    def test_jittered_at_least_base(self):
        rng = random.Random(0)
        dist = Jittered(10.0, 2.0)
        for _ in range(100):
            assert dist.sample(rng) >= 10.0

    def test_jittered_zero_jitter_is_fixed(self):
        assert Jittered(10.0, 0.0).sample(random.Random(0)) == 10.0


class TestLatencyModel:
    def test_intra_vs_inter(self):
        model = LatencyModel(intra=Fixed(1.0), inter=Fixed(100.0))
        rng = random.Random(0)
        assert model.sample(0, 0, rng) == 1.0
        assert model.sample(0, 1, rng) == 100.0

    def test_pairwise_override(self):
        model = LatencyModel(
            intra=Fixed(1.0), inter=Fixed(100.0),
            pairwise_inter={(0, 1): Fixed(250.0)},
        )
        rng = random.Random(0)
        assert model.sample(0, 1, rng) == 250.0
        assert model.sample(1, 0, rng) == 100.0  # override is directional

    def test_logical_model_unit_hops(self):
        model = LatencyModel.logical()
        rng = random.Random(0)
        assert model.sample(0, 1, rng) == 1.0
        assert model.sample(0, 0, rng) < 0.01

    def test_wan_model_scale(self):
        model = LatencyModel.wan(intra_ms=1.0, inter_ms=100.0)
        rng = random.Random(0)
        assert model.sample(0, 0, rng) < 10.0
        assert model.sample(0, 1, rng) >= 100.0


def _network(group_sizes=(2, 2), latency=None, trace=True):
    sim = Simulator()
    topo = Topology(list(group_sizes))
    net = Network(
        sim, topo, latency or LatencyModel(Fixed(1.0), Fixed(10.0)),
        random.Random(0), trace=MessageTrace(enabled=trace),
    )
    for pid in topo.processes:
        net.register(Process(pid, topo.group_of(pid), sim))
    return sim, topo, net


class TestNetwork:
    def test_point_to_point_delivery(self):
        sim, topo, net = _network()
        got = []
        net.process(1).register_handler("test", lambda m: got.append(m))
        net.send(0, 1, "test", {"x": 42})
        sim.run()
        assert len(got) == 1
        assert got[0].payload["x"] == 42
        assert sim.now == 1.0  # intra-group latency

    def test_inter_group_latency_applied(self):
        sim, topo, net = _network()
        got = []
        net.process(2).register_handler("test", lambda m: got.append(sim.now))
        net.send(0, 2, "test", {})
        sim.run()
        assert got == [10.0]

    def test_stats_count_scopes(self):
        sim, topo, net = _network()
        for pid in topo.processes:
            net.process(pid).register_handler("test", lambda m: None)
        net.send(0, 1, "test", {})   # intra
        net.send(0, 2, "test", {})   # inter
        net.send(0, 3, "test", {})   # inter
        sim.run()
        assert net.stats.intra_group_messages == 1
        assert net.stats.inter_group_messages == 2
        assert net.stats.total_messages == 3

    def test_crashed_sender_sends_nothing(self):
        sim, topo, net = _network()
        got = []
        net.process(1).register_handler("test", lambda m: got.append(m))
        net.process(0).crash()
        net.send(0, 1, "test", {})
        sim.run()
        assert got == []
        assert net.stats.total_messages == 0

    def test_crashed_destination_drops(self):
        sim, topo, net = _network()
        net.process(1).register_handler("test", lambda m: None)
        net.send(0, 1, "test", {})
        net.process(1).crash()
        sim.run()
        assert net.stats.dropped == 1

    def test_in_flight_survives_sender_crash(self):
        """Quasi-reliability: a copy already sent is delivered."""
        sim, topo, net = _network()
        got = []
        net.process(1).register_handler("test", lambda m: got.append(m))
        net.send(0, 1, "test", {})
        net.process(0).crash()
        sim.run()
        assert len(got) == 1

    def test_lamport_stamping_inter_group(self):
        sim, topo, net = _network()
        net.process(2).register_handler("test", lambda m: None)
        net.send(0, 2, "test", {})
        sim.run()
        assert net.process(2).lamport.value == 1
        assert net.process(0).lamport.value == 0

    def test_lamport_stamping_intra_group(self):
        sim, topo, net = _network()
        net.process(1).register_handler("test", lambda m: None)
        net.send(0, 1, "test", {})
        sim.run()
        assert net.process(1).lamport.value == 0

    def test_send_many_single_logical_step(self):
        """All copies of a one-to-many send carry the same timestamp."""
        sim, topo, net = _network()
        stamps = []
        for pid in (1, 2, 3):
            net.process(pid).register_handler(
                "test", lambda m: stamps.append(m.send_lamport))
        net.process(2).lamport.observe_receive(5)  # receiver clock differs
        net.send_many(0, [1, 2, 3], "test", {})
        sim.run()
        # Intra copy ts=0; both inter copies ts=1 (not 1 then 2).
        assert sorted(stamps) == [0, 1, 1]

    def test_delivery_filter_drops(self):
        sim, topo, net = _network()
        got = []
        net.process(1).register_handler("test", lambda m: got.append(m))
        net.add_delivery_filter(lambda m: m.dst != 1)
        net.send(0, 1, "test", {})
        sim.run()
        assert got == []
        assert net.stats.dropped == 1

    def test_duplicate_delivery_filter_rejected(self):
        """Installing one filter twice would double its observations."""
        sim, topo, net = _network()
        flt = lambda m: True
        net.add_delivery_filter(flt)
        with pytest.raises(ValueError, match="already installed"):
            net.add_delivery_filter(flt)

    def test_delivery_filter_removal(self):
        sim, topo, net = _network()
        got = []
        net.process(1).register_handler("test", lambda m: got.append(m))
        flt = lambda m: False
        net.add_delivery_filter(flt)
        net.send(0, 1, "test", {})
        sim.run()
        assert got == []
        net.remove_delivery_filter(flt)
        net.send(0, 1, "test", {})
        sim.run()
        assert len(got) == 1
        # A second removal is an error, not a silent no-op.
        with pytest.raises(ValueError, match="not installed"):
            net.remove_delivery_filter(flt)

    def test_bound_method_filter_round_trips(self):
        """Bound methods are re-created per attribute access; the
        dedup/removal API must match them by equality, not identity."""
        sim, topo, net = _network()

        class Counter:
            def flt(self, msg):
                return True

        counter = Counter()
        net.add_delivery_filter(counter.flt)
        with pytest.raises(ValueError, match="already installed"):
            net.add_delivery_filter(counter.flt)
        net.remove_delivery_filter(counter.flt)

    def test_delay_hook_perturbs_latency(self):
        sim, topo, net = _network()
        got = []
        net.process(1).register_handler("test", lambda m: got.append(sim.now))
        hook = lambda msg, delay: delay + 5.0
        net.add_delay_hook(hook)
        net.send(0, 1, "test", {})
        sim.run()
        assert got == [6.0]  # 1.0 intra latency + 5.0 injected
        net.remove_delay_hook(hook)
        net.send(0, 1, "test", {})
        sim.run()
        assert got[1] == pytest.approx(7.0)  # back to plain latency

    def test_delay_hooks_compose_in_order(self):
        sim, topo, net = _network()
        got = []
        net.process(1).register_handler("test", lambda m: got.append(sim.now))
        net.add_delay_hook(lambda msg, delay: delay * 2.0)
        net.add_delay_hook(lambda msg, delay: delay + 1.0)
        net.send(0, 1, "test", {})  # (1.0 * 2) + 1
        sim.run()
        assert got == [3.0]

    def test_delay_hook_applies_to_send_many(self):
        sim, topo, net = _network()
        times = []
        for pid in (1, 2):
            net.process(pid).register_handler(
                "test", lambda m: times.append(sim.now))
        net.add_delay_hook(
            lambda msg, delay: delay + (4.0 if msg.inter_group else 0.0))
        net.send_many(0, [1, 2], "test", {})
        sim.run()
        assert times == [1.0, 14.0]  # intra untouched, inter 10+4

    def test_duplicate_delay_hook_rejected(self):
        sim, topo, net = _network()
        hook = lambda msg, delay: delay
        net.add_delay_hook(hook)
        with pytest.raises(ValueError, match="already installed"):
            net.add_delay_hook(hook)
        with pytest.raises(ValueError, match="not installed"):
            net.remove_delay_hook(lambda m, d: d)

    def test_bound_method_delay_hook_round_trips(self):
        """Same equality contract as delivery filters: a bound method
        is a fresh object per attribute access, so dedup and removal
        must match by ==, not identity."""
        sim, topo, net = _network()

        class Skewer:
            def hook(self, msg, delay):
                return delay

        skewer = Skewer()
        net.add_delay_hook(skewer.hook)
        with pytest.raises(ValueError, match="already installed"):
            net.add_delay_hook(skewer.hook)
        net.remove_delay_hook(skewer.hook)
        # Fully removed: a second removal is the not-installed error.
        with pytest.raises(ValueError, match="not installed"):
            net.remove_delay_hook(skewer.hook)

    def test_inject_copy_delivers_a_fresh_accounted_clone(self):
        """The duplication seam: the clone is a distinct Message (so
        corrupting one copy can't leak into the other), shares the
        payload dict, carries the original wire word, and is counted
        as a real extra copy on the wire."""
        sim, topo, net = _network()
        got = []
        net.process(1).register_handler("test", lambda m: got.append(m))
        net.send(0, 1, "test", {"x": 1})
        # Grab the in-flight copy from the trace's send event.
        original = net.trace.events[0].msg
        net.inject_copy(original, 0.5)
        sim.run()
        assert len(got) == 2
        clone = got[0] if got[0] is not original else got[1]
        assert clone is not original
        assert clone.payload is original.payload
        assert clone.wire == original.wire
        assert clone.src == original.src
        assert clone.dst == original.dst
        assert net.stats.duplicated == 1
        # Both copies were accounted as sends (stats and trace alike).
        assert net.stats.total_messages == 2
        sends = [e for e in net.trace.events if e.event == "send"]
        assert len(sends) == 2

    def test_duplicate_registration_rejected(self):
        sim, topo, net = _network()
        with pytest.raises(ValueError):
            net.register(Process(0, 0, sim))

    def test_unknown_kind_raises(self):
        sim, topo, net = _network()
        net.send(0, 1, "nohandler", {})
        with pytest.raises(KeyError):
            sim.run()

    def test_trace_records_participants(self):
        sim, topo, net = _network()
        net.process(1).register_handler("test", lambda m: None)
        net.send(0, 1, "test", {})
        sim.run()
        assert net.trace.senders() == {0}
        assert net.trace.receivers() == {1}
        assert net.trace.participants() == {0, 1}

    def test_trace_disabled_records_nothing(self):
        sim, topo, net = _network(trace=False)
        net.process(1).register_handler("test", lambda m: None)
        net.send(0, 1, "test", {})
        sim.run()
        assert net.trace.events == []

    def test_sends_of_kind_prefix_query(self):
        sim, topo, net = _network()
        for pid in (1, 2):
            net.process(pid).register_handler("amc.ts", lambda m: None)
            net.process(pid).register_handler("amc.seq", lambda m: None)
            net.process(pid).register_handler("fd.hb", lambda m: None)
        net.send(0, 1, "amc.ts", {})
        net.send(0, 2, "fd.hb", {})
        net.send(0, 1, "amc.seq", {})
        net.send(0, 2, "amc.ts", {})
        sim.run()
        assert [e.msg.kind for e in net.trace.sends_of_kind("amc.")] == \
            ["amc.ts", "amc.seq", "amc.ts"]  # original send order
        assert len(net.trace.sends_of_kind("fd.")) == 1
        assert net.trace.sends_of_kind("nope") == []

    def test_sends_of_kind_index_invalidated_on_append(self):
        """The lazy index must not serve stale results after new sends."""
        sim, topo, net = _network()
        net.process(1).register_handler("amc.ts", lambda m: None)
        net.send(0, 1, "amc.ts", {})
        sim.run()
        assert len(net.trace.sends_of_kind("amc.")) == 1  # index built
        net.send(0, 1, "amc.ts", {})
        sim.run()
        assert len(net.trace.sends_of_kind("amc.")) == 2

    def test_trace_last_send_time_incremental(self):
        sim, topo, net = _network()
        net.process(1).register_handler("test", lambda m: None)
        assert net.trace.last_send_time() is None
        net.send(0, 1, "test", {})
        sim.run()
        assert net.trace.last_send_time() == 0.0


class TestProcess:
    def test_crashed_process_ignores_messages(self):
        sim, topo, net = _network()
        got = []
        proc = net.process(1)
        proc.register_handler("test", lambda m: got.append(m))
        proc.crashed = True
        proc.handle(Message(src=0, dst=1, kind="test", payload={}))
        assert got == []

    def test_duplicate_handler_rejected(self):
        sim, topo, net = _network()
        proc = net.process(0)
        proc.register_handler("k", lambda m: None)
        with pytest.raises(ValueError):
            proc.register_handler("k", lambda m: None)

    def test_crash_hooks_fire_once(self):
        sim, topo, net = _network()
        proc = net.process(0)
        fired = []
        proc.add_crash_hook(lambda: fired.append(1))
        proc.crash()
        proc.crash()
        assert fired == [1]
