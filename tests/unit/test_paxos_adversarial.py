"""Adversarial Paxos tests: contention, noise, nacks, string instances."""

import random

import pytest

from repro.consensus.paxos import GroupConsensus
from repro.failure.detectors import (
    EventuallyPerfectDetector,
    PerfectDetector,
)
from repro.net.network import Network
from repro.net.topology import Fixed, Jittered, LatencyModel, Topology
from repro.net.trace import MessageTrace
from repro.sim.kernel import Simulator
from repro.sim.process import Process


def _group(size=3, detector=None, seed=0, retry_timeout=20.0,
            jitter=False):
    sim = Simulator()
    topo = Topology([size])
    latency = LatencyModel(
        intra=Jittered(1.0, 0.5) if jitter else Fixed(1.0),
        inter=Fixed(100.0),
    )
    net = Network(sim, topo, latency, random.Random(seed),
                  trace=MessageTrace(False))
    for pid in topo.processes:
        net.register(Process(pid, 0, sim))
    if detector == "noisy":
        fd = EventuallyPerfectDetector(
            sim, net, random.Random(seed + 1), stabilise_at=60.0,
            false_suspicion_probability=0.3, delay=2.0,
        )
    else:
        fd = PerfectDetector(sim, net, delay=2.0)
    decisions = {pid: {} for pid in topo.processes}
    stacks = {}
    for pid in topo.processes:
        stack = GroupConsensus(net.process(pid), topo.members(0), fd,
                               retry_timeout=retry_timeout)
        stack.set_decision_handler(
            lambda k, v, pid=pid: decisions[pid].setdefault(k, v))
        stacks[pid] = stack
    return sim, net, stacks, decisions


class TestContention:
    def test_many_concurrent_instances(self):
        sim, net, stacks, decisions = _group(size=5, jitter=True)
        for k in range(1, 21):
            proposer = stacks[k % 5]
            proposer.propose(k, (f"v{k}",))
        sim.run()
        for pid in decisions:
            assert len(decisions[pid]) == 20
        # Agreement per instance across all members.
        for k in range(1, 21):
            values = {decisions[pid][k] for pid in decisions}
            assert values == {(f"v{k}",)}

    def test_all_propose_all_instances(self):
        """Heaviest contention: every member proposes in every instance."""
        sim, net, stacks, decisions = _group(size=3, jitter=True)
        for k in range(1, 6):
            for pid, stack in stacks.items():
                stack.propose(k, (f"p{pid}",))
        sim.run()
        for k in range(1, 6):
            values = {decisions[pid][k] for pid in decisions}
            assert len(values) == 1
            assert values.pop() in {("p0",), ("p1",), ("p2",)}

    def test_staggered_proposals_still_converge(self):
        sim, net, stacks, decisions = _group(size=3)
        stacks[1].propose(1, ("early",))
        sim.schedule(30.0, lambda: stacks[2].propose(1, ("late",)))
        sim.run()
        values = {decisions[pid][1] for pid in decisions}
        assert len(values) == 1


class TestNoisyDetector:
    def test_false_suspicions_cannot_break_agreement(self):
        """◊P mistakes cause competing ballots, never split decisions."""
        for seed in range(8):
            sim, net, stacks, decisions = _group(size=3, detector="noisy",
                                                 seed=seed, jitter=True)
            for pid, stack in stacks.items():
                stack.propose(1, (f"p{pid}",))
            sim.run(max_events=500_000)
            values = {decisions[pid].get(1) for pid in decisions}
            values.discard(None)
            assert len(values) <= 1, f"seed {seed} split: {values}"

    def test_eventual_decision_despite_noise(self):
        sim, net, stacks, decisions = _group(size=3, detector="noisy",
                                             seed=3, jitter=True)
        stacks[0].propose(1, ("v",))
        stacks[1].propose(1, ("w",))
        sim.run(max_events=500_000)
        # The detector stabilises at t=60; decisions must follow.
        for pid in decisions:
            assert 1 in decisions[pid]


class TestNackEscalation:
    def test_losing_ballot_retreats_and_retries(self):
        """A proposer whose ballot is beaten escalates via its timer
        instead of livelocking."""
        sim, net, stacks, decisions = _group(size=3, retry_timeout=10.0)
        # Crash the rank-0 leader *after* it promises nothing; member 1
        # and member 2 will duel with ballots 1 and 2.
        net.process(0).crash()
        stacks[1].propose(1, ("one",))
        stacks[2].propose(1, ("two",))
        sim.run(max_events=500_000)
        values = {decisions[pid].get(1) for pid in (1, 2)}
        assert len(values) == 1
        assert values.pop() in {("one",), ("two",)}

    def test_late_joiner_learns_via_forward_help(self):
        """Forwarding to a process that already decided triggers the
        catch-up decide reply."""
        sim, net, stacks, decisions = _group(size=3)
        stacks[0].propose(1, ("v",))
        sim.run()
        assert decisions[2][1] == ("v",)
        # Process 2 now proposes late; it must not hang or re-decide
        # differently.
        stacks[2].propose(2, ("w",))
        sim.run()
        assert decisions[0][2] == ("w",)


class TestStringInstances:
    """[10] keys instances by message id — exercised directly here."""

    def test_string_keys_work_end_to_end(self):
        sim, net, stacks, decisions = _group(size=3)
        stacks[0].propose("msg-abc", ("payload",))
        stacks[1].propose("msg-xyz", ("other",))
        sim.run()
        for pid in decisions:
            assert decisions[pid]["msg-abc"] == ("payload",)
            assert decisions[pid]["msg-xyz"] == ("other",)

    def test_mixed_key_types_are_independent(self):
        sim, net, stacks, decisions = _group(size=3)
        stacks[0].propose(1, ("int-keyed",))
        stacks[0].propose("1", ("str-keyed",))
        sim.run()
        assert decisions[1][1] == ("int-keyed",)
        assert decisions[1]["1"] == ("str-keyed",)


class TestQuiescenceOfConsensus:
    def test_no_lingering_timers_after_decisions(self):
        sim, net, stacks, decisions = _group(size=3)
        for k in range(1, 4):
            stacks[0].propose(k, (f"v{k}",))
        sim.run_until_quiescent(max_events=200_000)
        assert all(len(decisions[pid]) == 3 for pid in decisions)

    def test_timers_stop_even_with_crashed_minority(self):
        sim, net, stacks, decisions = _group(size=3)
        sim.schedule(0.5, net.process(2).crash)
        stacks[0].propose(1, ("v",))
        sim.run_until_quiescent(max_events=200_000)
        assert decisions[0][1] == ("v",)
        assert decisions[1][1] == ("v",)
