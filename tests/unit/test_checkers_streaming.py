"""Streaming checkers vs the pre-PR quadratic oracles.

The prefix-order and agreement checks were rewritten from pairwise
O(p²·m) scans into near-linear streaming passes.  This suite keeps the
*old* implementations alive (below, verbatim modulo naming) as oracles
and asserts the new code returns identical verdicts on adversarial logs:
conflicting prefixes, partial delivery, duplicate delivery, gaps,
cross-group inversions, and a seeded fuzz of mutated random logs.
"""

import random

import pytest

from repro.checkers.properties import (
    PropertyViolation,
    StreamingPropertyChecker,
    check_all,
    check_uniform_agreement,
    check_uniform_integrity,
    check_uniform_prefix_order,
    check_validity,
)
from repro.core.interfaces import AppMessage
from repro.failure.schedule import CrashSchedule
from repro.net.topology import Topology
from repro.runtime.results import DeliveryLog


# ----------------------------------------------------------------------
# The pre-PR quadratic implementations, kept as oracles
# ----------------------------------------------------------------------
def _oracle_project(sequence, cast, topology, p, q):
    gp, gq = topology.group_of(p), topology.group_of(q)
    return [
        mid for mid in sequence
        if gp in cast[mid].dest_groups and gq in cast[mid].dest_groups
    ]


def _oracle_is_prefix(a, b):
    return len(a) <= len(b) and list(b[: len(a)]) == list(a)


def oracle_prefix_order(log, topology):
    """The seed commit's pairwise prefix-order check, verbatim."""
    cast = log.cast_messages()
    pids = log.processes()
    for i, p in enumerate(pids):
        for q in pids[i + 1:]:
            sp = _oracle_project(log.sequence(p), cast, topology, p, q)
            sq = _oracle_project(log.sequence(q), cast, topology, p, q)
            if not _oracle_is_prefix(sp, sq) and \
                    not _oracle_is_prefix(sq, sp):
                raise PropertyViolation(
                    f"prefix order violated between {p} and {q}: "
                    f"{sp} vs {sq}"
                )


def oracle_agreement(log, topology, crashes):
    """The seed commit's uniform agreement (per-mid sequence scans)."""
    for mid, msg in log.cast_messages().items():
        delivered_by = {
            pid for pid in log.processes()
            if any(m.mid == mid for m in log.delivered_messages(pid))
        }
        if not delivered_by:
            continue
        for gid in msg.dest_groups:
            for pid in topology.members(gid):
                if crashes.is_faulty(pid):
                    continue
                if pid not in delivered_by:
                    raise PropertyViolation(
                        f"correct addressee {pid} never delivered {mid}"
                    )


def _verdict(check, *args):
    """None when the check passes, else the violation type."""
    try:
        check(*args)
        return None
    except PropertyViolation:
        return PropertyViolation


# ----------------------------------------------------------------------
# Log construction helpers
# ----------------------------------------------------------------------
def _msg(mid, sender=0, dest=(0, 1)):
    return AppMessage(mid=mid, sender=sender, dest_groups=dest)


def _log_with(casts, deliveries):
    log = DeliveryLog()
    for msg in casts.values():
        log.record_cast(msg)
    for pid, mids in deliveries.items():
        for mid in mids:
            log.record_delivery(pid, casts[mid])
    return log


TOPO = Topology([2, 2])
TOPO3 = Topology([2, 2, 2])


class TestAdversarialLogsMatchOracle:
    """Hand-built violations: streaming verdict == quadratic verdict."""

    CASES = {
        "clean_identical": (
            {"a": _msg("a"), "b": _msg("b")},
            {0: ["a", "b"], 1: ["a", "b"], 2: ["a", "b"], 3: ["a", "b"]},
        ),
        "true_prefix": (
            {"a": _msg("a"), "b": _msg("b")},
            {0: ["a", "b"], 2: ["a"]},
        ),
        "conflicting_prefixes_same_group": (
            {"a": _msg("a"), "b": _msg("b")},
            {0: ["a", "b"], 1: ["b", "a"]},
        ),
        "conflicting_prefixes_cross_group": (
            {"a": _msg("a"), "b": _msg("b")},
            {0: ["a", "b"], 2: ["b", "a"]},
        ),
        "gap_in_projection": (
            # p0 delivers a before b; p2 delivers b but never a.
            {"a": _msg("a"), "b": _msg("b")},
            {0: ["a", "b"], 2: ["b"]},
        ),
        "partial_delivery": (
            {"a": _msg("a")},
            {0: ["a"], 1: ["a"], 2: ["a"]},  # 3 never delivers
        ),
        "duplicate_delivery": (
            {"a": _msg("a"), "b": _msg("b")},
            {0: ["a", "a", "b"], 2: ["a", "b"]},
        ),
        "disjoint_projections_fine": (
            {"a": _msg("a", dest=(0,)), "b": _msg("b", dest=(1,)),
             "c": _msg("c", dest=(0, 1))},
            {0: ["a", "c"], 2: ["b", "c"]},
        ),
        "three_group_inversion": (
            {"x": AppMessage(mid="x", sender=0, dest_groups=(0, 1, 2)),
             "y": AppMessage(mid="y", sender=2, dest_groups=(0, 1, 2))},
            {0: ["x", "y"], 2: ["x", "y"], 4: ["y", "x"]},
        ),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_prefix_verdicts_identical(self, name):
        casts, deliveries = self.CASES[name]
        topology = TOPO3 if name == "three_group_inversion" else TOPO
        log = _log_with(casts, deliveries)
        assert _verdict(check_uniform_prefix_order, log, topology) == \
            _verdict(oracle_prefix_order, log, topology), name

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_agreement_verdicts_identical(self, name):
        casts, deliveries = self.CASES[name]
        topology = TOPO3 if name == "three_group_inversion" else TOPO
        log = _log_with(casts, deliveries)
        crashes = CrashSchedule.none()
        assert _verdict(check_uniform_agreement, log, topology, crashes) \
            == _verdict(oracle_agreement, log, topology, crashes), name


class TestFuzzedLogsMatchOracle:
    """Seeded random logs, mutated four ways, must agree with oracles."""

    def _random_log(self, rng, topology, n_messages):
        pids = topology.processes
        casts = {}
        for i in range(n_messages):
            k = rng.randint(1, len(topology.group_ids))
            dest = tuple(sorted(rng.sample(list(topology.group_ids), k)))
            casts[f"m{i}"] = AppMessage(
                mid=f"m{i}", sender=rng.choice(pids), dest_groups=dest)
        # A consistent global order, delivered as prefixes per process.
        order = list(casts)
        rng.shuffle(order)
        deliveries = {}
        for pid in pids:
            gid = topology.group_of(pid)
            addressed = [mid for mid in order
                         if gid in casts[mid].dest_groups]
            cut = rng.randint(0, len(addressed))
            deliveries[pid] = addressed[:cut]
        return casts, deliveries

    def _mutate(self, rng, deliveries, how):
        victims = [pid for pid, seq in deliveries.items() if len(seq) >= 2]
        if not victims:
            return deliveries
        pid = rng.choice(victims)
        seq = list(deliveries[pid])
        if how == "swap":              # conflicting prefix order
            i = rng.randrange(len(seq) - 1)
            seq[i], seq[i + 1] = seq[i + 1], seq[i]
        elif how == "drop":            # gap in the middle
            del seq[rng.randrange(len(seq) - 1)]
        elif how == "duplicate":       # delivered more than once
            seq.append(seq[rng.randrange(len(seq))])
        out = dict(deliveries)
        out[pid] = seq
        return out

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("mutation",
                             ["none", "swap", "drop", "duplicate"])
    def test_verdicts_identical(self, seed, mutation):
        rng = random.Random(seed * 101 + hash(mutation) % 1000)
        topology = TOPO3
        casts, deliveries = self._random_log(rng, topology, n_messages=14)
        if mutation != "none":
            deliveries = self._mutate(rng, deliveries, mutation)
        log = _log_with(casts, deliveries)
        crashes = CrashSchedule.none()
        assert _verdict(check_uniform_prefix_order, log, topology) == \
            _verdict(oracle_prefix_order, log, topology)
        assert _verdict(check_uniform_agreement, log, topology, crashes) \
            == _verdict(oracle_agreement, log, topology, crashes)


class TestStreamingIncremental:
    """The hook-fed checker agrees with the post-run functions."""

    def _feed(self, checker, casts, deliveries):
        for msg in casts.values():
            checker.on_cast(msg)
        # Interleave round-robin, the worst case for canonical races.
        cursors = {pid: 0 for pid in deliveries}
        progressed = True
        while progressed:
            progressed = False
            for pid in sorted(cursors):
                i = cursors[pid]
                if i < len(deliveries[pid]):
                    checker.on_delivery(pid, casts[deliveries[pid][i]])
                    cursors[pid] = i + 1
                    progressed = True

    @pytest.mark.parametrize(
        "name", sorted(TestAdversarialLogsMatchOracle.CASES))
    def test_matches_check_all(self, name):
        casts, deliveries = TestAdversarialLogsMatchOracle.CASES[name]
        topology = TOPO3 if name == "three_group_inversion" else TOPO
        log = _log_with(casts, deliveries)
        expected = _verdict(check_all, log, topology)

        checker = StreamingPropertyChecker(topology)
        try:
            self._feed(checker, casts, deliveries)
            checker.finalize()
            streaming = None
        except PropertyViolation:
            streaming = PropertyViolation
        assert streaming == expected, name

    def test_order_violation_raises_at_offending_delivery(self):
        checker = StreamingPropertyChecker(TOPO)
        a, b = _msg("a"), _msg("b")
        checker.on_cast(a)
        checker.on_cast(b)
        checker.on_delivery(0, a)
        checker.on_delivery(0, b)
        # p1 shares group 0, whose canonical order is now [a, b]; its
        # first delivery being b diverges right here, mid-run.
        with pytest.raises(PropertyViolation, match="prefix order"):
            checker.on_delivery(1, b)

    def test_duplicate_raises_immediately(self):
        checker = StreamingPropertyChecker(TOPO)
        a = _msg("a")
        checker.on_cast(a)
        checker.on_delivery(0, a)
        with pytest.raises(PropertyViolation, match="more than once"):
            checker.on_delivery(0, a)

    def test_uncast_raises_immediately(self):
        checker = StreamingPropertyChecker(TOPO)
        with pytest.raises(PropertyViolation, match="never cast"):
            checker.on_delivery(0, _msg("ghost"))

    def test_live_system_hookup(self):
        from repro.runtime.builder import build_system
        from repro.workload.generators import (
            poisson_workload,
            schedule_workload,
            uniform_k_groups,
        )

        system = build_system(protocol="a1", group_sizes=[2, 2, 2], seed=9)
        checker = system.install_streaming_checker()
        plans = poisson_workload(
            system.topology, system.rng.stream("wl"),
            rate=2.0, duration=15.0, destinations=uniform_k_groups(2),
        )
        schedule_workload(system, plans)
        system.run_quiescent()
        checker.finalize()
        assert checker.deliveries_checked == system.log.delivery_count()
        check_all(system.log, system.topology, system.crashes)
