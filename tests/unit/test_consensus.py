"""Unit tests for the Paxos-based uniform consensus substrate."""

import random

import pytest

from repro.consensus.paxos import GroupConsensus
from repro.consensus.sequence import ConsensusSequence
from repro.failure.detectors import PerfectDetector
from repro.net.network import Network
from repro.net.topology import Fixed, LatencyModel, Topology
from repro.net.trace import MessageTrace
from repro.sim.kernel import Simulator
from repro.sim.process import Process


def _group(size=3, detector_delay=2.0, retry_timeout=20.0):
    """One group of ``size`` processes with consensus attached."""
    sim = Simulator()
    topo = Topology([size])
    net = Network(sim, topo, LatencyModel(Fixed(1.0), Fixed(100.0)),
                  random.Random(0), trace=MessageTrace(False))
    for pid in topo.processes:
        net.register(Process(pid, 0, sim))
    fd = PerfectDetector(sim, net, delay=detector_delay)
    decisions = {pid: {} for pid in topo.processes}
    stacks = {}
    for pid in topo.processes:
        stack = GroupConsensus(net.process(pid), topo.members(0), fd,
                               retry_timeout=retry_timeout)
        stack.set_decision_handler(
            lambda k, v, pid=pid: decisions[pid].setdefault(k, v))
        stacks[pid] = stack
    return sim, net, stacks, decisions


class TestFailureFree:
    def test_single_proposer_decides(self):
        sim, net, stacks, decisions = _group()
        stacks[0].propose(1, ("v0",))
        sim.run()
        assert all(decisions[p] == {1: ("v0",)} for p in decisions)

    def test_all_propose_same_decision(self):
        sim, net, stacks, decisions = _group()
        for pid, stack in stacks.items():
            stack.propose(1, (f"v{pid}",))
        sim.run()
        values = {tuple(decisions[p].items()) for p in decisions}
        assert len(values) == 1  # uniform agreement

    def test_decided_value_was_proposed(self):
        sim, net, stacks, decisions = _group()
        for pid, stack in stacks.items():
            stack.propose(1, (f"v{pid}",))
        sim.run()
        decided = decisions[0][1]
        assert decided in {("v0",), ("v1",), ("v2",)}  # uniform integrity

    def test_follower_proposal_can_win_via_forward(self):
        """A non-leader's value decides when the leader has none."""
        sim, net, stacks, decisions = _group()
        stacks[2].propose(1, ("follower",))
        sim.run()
        assert decisions[0][1] == ("follower",)

    def test_independent_instances(self):
        sim, net, stacks, decisions = _group()
        stacks[0].propose(1, ("a",))
        stacks[0].propose(2, ("b",))
        sim.run()
        assert decisions[1] == {1: ("a",), 2: ("b",)}

    def test_instance_numbers_may_skip(self):
        """A1 jumps instance numbers; consensus must not care."""
        sim, net, stacks, decisions = _group()
        stacks[0].propose(1, ("a",))
        stacks[0].propose(7, ("b",))
        stacks[1].propose(100, ("c",))
        sim.run()
        assert decisions[2] == {1: ("a",), 7: ("b",), 100: ("c",)}

    def test_double_propose_rejected(self):
        sim, net, stacks, decisions = _group()
        stacks[0].propose(1, ("a",))
        with pytest.raises(ValueError):
            stacks[0].propose(1, ("b",))

    def test_decided_query(self):
        sim, net, stacks, decisions = _group()
        stacks[0].propose(1, ("a",))
        assert not stacks[0].decided(1)
        sim.run()
        assert stacks[0].decided(1)
        assert stacks[0].decision(1) == ("a",)

    def test_group_of_one(self):
        sim, net, stacks, decisions = _group(size=1)
        stacks[0].propose(1, ("solo",))
        sim.run()
        assert decisions[0] == {1: ("solo",)}

    def test_quiescent_after_decision(self):
        """No timers or messages linger once everything decided."""
        sim, net, stacks, decisions = _group()
        stacks[0].propose(1, ("a",))
        sim.run_until_quiescent(max_events=100_000)
        assert all(decisions[p] for p in decisions)


class TestWithCrashes:
    def test_leader_crash_before_propose(self):
        """Rank-0 crashes pre-run; a follower leads a higher ballot."""
        sim, net, stacks, decisions = _group()
        net.process(0).crash()
        stacks[1].propose(1, ("v1",))
        stacks[2].propose(1, ("v2",))
        sim.run()
        assert decisions[1][1] == decisions[2][1]
        assert decisions[1][1] in {("v1",), ("v2",)}

    def test_leader_crash_mid_instance(self):
        """Leader crashes after accepting locally; survivors agree."""
        sim, net, stacks, decisions = _group(size=5)
        for pid, stack in stacks.items():
            stack.propose(1, (f"v{pid}",))
        # Crash the leader shortly after the proposals go out.
        sim.schedule(1.5, net.process(0).crash)
        sim.run()
        survivors = [p for p in decisions if p != 0]
        values = {decisions[p].get(1) for p in survivors}
        assert len(values) == 1 and None not in values

    def test_uniformity_with_early_decider_crash(self):
        """If a process decided then crashed, survivors decide the same."""
        sim, net, stacks, decisions = _group(size=3)
        for pid, stack in stacks.items():
            stack.propose(1, (f"v{pid}",))
        sim.run()
        # Everyone decided the same already (stronger than needed).
        assert decisions[0][1] == decisions[1][1] == decisions[2][1]

    def test_minority_crash_preserves_liveness(self):
        sim, net, stacks, decisions = _group(size=5)
        sim.schedule(0.5, net.process(3).crash)
        sim.schedule(0.5, net.process(4).crash)
        for pid, stack in stacks.items():
            stack.propose(1, (f"v{pid}",))
        sim.run()
        for pid in (0, 1, 2):
            assert 1 in decisions[pid]


class TestConsensusSequence:
    def test_buffers_out_of_order_decisions(self):
        class FakeConsensus:
            def __init__(self):
                self.handler = None

            def set_decision_handler(self, h):
                self.handler = h

            def propose(self, k, v):
                pass

        fake = FakeConsensus()
        released = []

        def on_decide(k, v):
            released.append((k, v))
            seq.advance_to(k + 1)

        seq = ConsensusSequence(fake, on_decide, first_instance=1)
        fake.handler(3, "c")
        fake.handler(2, "b")
        assert released == []  # waiting for instance 1
        fake.handler(1, "a")
        assert released == [(1, "a"), (2, "b"), (3, "c")]

    def test_non_contiguous_advance(self):
        class FakeConsensus:
            def set_decision_handler(self, h):
                self.handler = h

            def propose(self, k, v):
                pass

        fake = FakeConsensus()
        released = []

        def on_decide(k, v):
            released.append(k)
            seq.advance_to(k + 10)  # jump, as A1 does

        seq = ConsensusSequence(fake, on_decide, first_instance=1)
        fake.handler(1, "a")
        fake.handler(2, "stale-should-never-release")
        fake.handler(11, "b")
        assert released == [1, 11]

    def test_backward_advance_rejected(self):
        class FakeConsensus:
            def set_decision_handler(self, h):
                self.handler = h

        fake = FakeConsensus()
        seq = ConsensusSequence(fake, lambda k, v: None, first_instance=5)
        with pytest.raises(ValueError):
            seq.advance_to(5)

    def test_stale_duplicate_ignored(self):
        class FakeConsensus:
            def set_decision_handler(self, h):
                self.handler = h

        fake = FakeConsensus()
        released = []

        def on_decide(k, v):
            released.append(k)
            seq.advance_to(k + 1)

        seq = ConsensusSequence(fake, on_decide, first_instance=1)
        fake.handler(1, "a")
        fake.handler(1, "a")  # duplicate decide from another peer
        assert released == [1]
