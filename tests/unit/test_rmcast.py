"""Unit tests for reliable multicast (non-uniform and uniform)."""

import random

from repro.failure.detectors import PerfectDetector
from repro.net.network import Network
from repro.net.topology import Fixed, LatencyModel, Topology
from repro.net.trace import MessageTrace
from repro.rmcast.reliable import ReliableMulticast, UniformReliableMulticast
from repro.sim.kernel import Simulator
from repro.sim.process import Process


def _setup(group_sizes=(3, 3), uniform=False, relay_after=5.0,
           detector_delay=1.0):
    sim = Simulator()
    topo = Topology(list(group_sizes))
    net = Network(sim, topo, LatencyModel(Fixed(1.0), Fixed(10.0)),
                  random.Random(0), trace=MessageTrace(False))
    for pid in topo.processes:
        net.register(Process(pid, topo.group_of(pid), sim))
    fd = PerfectDetector(sim, net, delay=detector_delay)
    cls = UniformReliableMulticast if uniform else ReliableMulticast
    delivered = {pid: [] for pid in topo.processes}
    stacks = {}
    for pid in topo.processes:
        stack = cls(net.process(pid), fd, relay_after=relay_after)
        stack.set_delivery_handler(
            lambda data, mid, sender, pid=pid: delivered[pid].append(mid))
        stacks[pid] = stack
    return sim, topo, net, stacks, delivered


class TestValidity:
    def test_correct_sender_reaches_all_addressees(self):
        sim, topo, net, stacks, delivered = _setup()
        stacks[0].multicast([0, 1, 3, 4], {"x": 1}, mid="m1")
        sim.run()
        for pid in (0, 1, 3, 4):
            assert delivered[pid] == ["m1"]

    def test_non_addressees_deliver_nothing(self):
        sim, topo, net, stacks, delivered = _setup()
        stacks[0].multicast([0, 1], {}, mid="m1")
        sim.run()
        assert delivered[2] == []
        assert delivered[3] == []

    def test_self_delivery(self):
        sim, topo, net, stacks, delivered = _setup()
        stacks[0].multicast([0], {}, mid="m1")
        sim.run()
        assert delivered[0] == ["m1"]


class TestIntegrity:
    def test_no_duplicate_delivery(self):
        sim, topo, net, stacks, delivered = _setup(uniform=True)
        stacks[0].multicast(list(range(6)), {}, mid="m1")
        sim.run()
        # Eager relays produce many copies; each delivers once.
        for pid in range(6):
            assert delivered[pid] == ["m1"]

    def test_auto_generated_ids_unique(self):
        sim, topo, net, stacks, delivered = _setup()
        a = stacks[0].multicast([1], {})
        b = stacks[0].multicast([1], {})
        assert a != b


class TestAgreement:
    def test_lazy_relay_covers_faulty_sender(self):
        """Sender's copies to group 1 are dropped; relays recover them."""
        sim, topo, net, stacks, delivered = _setup(relay_after=5.0,
                                                   detector_delay=1.0)
        # Drop the initial copies addressed to group 1 (pids 3..5) —
        # only copies sent directly by pid 0, to model a faulty sender
        # whose sends partially completed.
        net.add_delivery_filter(
            lambda m: not (m.kind.endswith("rmc.data") and m.src == 0
                           and m.dst >= 3))
        stacks[0].multicast(list(range(6)), {}, mid="m1")
        sim.schedule(0.5, net.process(0).crash)  # sender really is faulty
        sim.run()
        for pid in (1, 2, 3, 4, 5):
            assert delivered[pid] == ["m1"], f"pid {pid} missed the relay"

    def test_no_relay_when_sender_correct(self):
        """Lazy relaying keeps the optimal message count."""
        sim, topo, net, stacks, delivered = _setup()
        stacks[0].multicast(list(range(6)), {}, mid="m1")
        sim.run()
        # Exactly one copy per addressee, no relays.
        assert net.stats.total_messages == 6

    def test_uniform_relays_eagerly(self):
        sim, topo, net, stacks, delivered = _setup(uniform=True)
        stacks[0].multicast(list(range(6)), {}, mid="m1")
        sim.run()
        # 6 initial copies + 5 relays from each of 6 receivers.
        assert net.stats.total_messages == 6 + 6 * 5

    def test_uniform_delivery_despite_partial_initial_send(self):
        sim, topo, net, stacks, delivered = _setup(uniform=True)
        net.add_delivery_filter(
            lambda m: not (m.src == 0 and m.dst >= 2
                           and m.kind.endswith("rmc.data")))
        stacks[0].multicast(list(range(6)), {}, mid="m1")
        sim.schedule(0.1, net.process(0).crash)
        sim.run()
        for pid in (1, 2, 3, 4, 5):
            assert delivered[pid] == ["m1"]


class TestQuiescence:
    def test_primitive_is_halting(self):
        """Finite casts leave a drained event queue (paper footnote 12)."""
        sim, topo, net, stacks, delivered = _setup()
        stacks[0].multicast(list(range(6)), {}, mid="m1")
        stacks[3].multicast([3, 4, 5], {}, mid="m2")
        sim.run_until_quiescent(max_events=100_000)
        assert delivered[4] == ["m1", "m2"] or delivered[4] == ["m2", "m1"]

    def test_crashed_receiver_does_not_block(self):
        sim, topo, net, stacks, delivered = _setup()
        net.process(5).crash()
        stacks[0].multicast(list(range(6)), {}, mid="m1")
        sim.run_until_quiescent(max_events=100_000)
        assert delivered[5] == []
        assert delivered[4] == ["m1"]


class TestLatencyDegree:
    def test_degree_one_across_groups(self):
        """R-MCast to another group costs one inter-group hop."""
        sim, topo, net, stacks, delivered = _setup()
        stacks[0].multicast([0, 3], {}, mid="m1")
        sim.run()
        assert net.process(3).lamport.value == 1
        assert net.process(0).lamport.value == 0
