"""Unit tests for the timeline/inspection tools."""

import pytest

from repro.net.trace import MessageTrace
from repro.runtime.builder import build_system
from repro.tools.timeline import (
    lane_summary,
    render_hop_diagram,
    render_timeline,
)


@pytest.fixture(scope="module")
def traced_run():
    system = build_system(protocol="a1", group_sizes=[2, 2], seed=1,
                          trace=True)
    msg = system.cast(sender=0, dest_groups=(0, 1))
    system.run_quiescent()
    return system, msg


class TestRenderTimeline:
    def test_contains_sends_and_receives(self, traced_run):
        system, _ = traced_run
        text = render_timeline(system.network.trace)
        assert ">>" in text and "<<" in text
        assert "inter" in text and "intra" in text

    def test_kind_filter(self, traced_run):
        system, _ = traced_run
        text = render_timeline(system.network.trace,
                               kinds_prefix="amc.ts")
        assert "amc.ts" in text
        assert "rmc.data" not in text

    def test_time_window(self, traced_run):
        system, _ = traced_run
        text = render_timeline(system.network.trace, start=1e9)
        assert text == "(no events in range)"

    def test_limit_caps_output(self, traced_run):
        system, _ = traced_run
        text = render_timeline(system.network.trace, limit=3)
        assert "shown)" in text
        # 3 event lines + the truncation notice.
        assert len(text.splitlines()) == 4

    def test_requires_enabled_trace(self):
        with pytest.raises(ValueError):
            render_timeline(MessageTrace(enabled=False))


class TestHopDiagram:
    def test_follows_one_message(self, traced_run):
        system, msg = traced_run
        text = render_hop_diagram(system.network.trace, msg.mid)
        assert msg.mid not in ("",)
        assert ">>" in text
        # The R-MCast and the TS exchange both mention the message.
        assert "rmc.data" in text and "amc.ts" in text

    def test_unknown_needle(self, traced_run):
        system, _ = traced_run
        assert "no events mention" in render_hop_diagram(
            system.network.trace, "no-such-mid")

    def test_requires_enabled_trace(self):
        with pytest.raises(ValueError):
            render_hop_diagram(MessageTrace(enabled=False), "x")


class TestLaneSummary:
    def test_per_process_rows(self, traced_run):
        system, _ = traced_run
        text = lane_summary(system.network.trace)
        for pid in range(4):
            assert f"p{pid}" in text

    def test_counts_are_consistent(self, traced_run):
        system, _ = traced_run
        text = lane_summary(system.network.trace)
        rows = text.splitlines()[1:]
        sent = sum(int(r.split()[1]) for r in rows)
        assert sent == len([e for e in system.network.trace.events
                            if e.event == "send"])

    def test_requires_enabled_trace(self):
        with pytest.raises(ValueError):
            lane_summary(MessageTrace(enabled=False))
