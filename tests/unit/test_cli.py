"""CLI behaviour: listings, unknown-name exits, the campaign verb."""

import json
import os

import pytest

from repro.cli import EXPERIMENTS, main


class TestListing:
    def test_list_enumerates_experiments_and_campaigns(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        assert "campaigns" in out
        for name in ("wan-storm", "crash-storm", "zipf-fanout",
                     "cross-protocol", "fd-overhead"):
            assert name in out

    def test_campaign_list_flag(self, capsys):
        assert main(["campaign", "--list"]) == 0
        out = capsys.readouterr().out
        assert "cross-protocol" in out and "wan-storm" in out

    def test_list_enumerates_adversaries(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "adversaries" in out
        for name in ("link-skew", "delay-reorder", "partition-spike",
                     "phase-crash", "chaos", "torture"):
            assert name in out


class TestUnknownNames:
    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["no-such-experiment"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment(s): no-such-experiment" in err
        assert "available:" in err

    def test_unknown_experiment_mixed_with_known_exits_2(self, capsys):
        assert main(["fig1", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_unknown_campaign_exits_2(self, capsys):
        assert main(["campaign", "no-such-campaign"]) == 2
        err = capsys.readouterr().err
        assert "unknown campaign(s): no-such-campaign" in err
        assert "available:" in err

    def test_bad_seeds_are_usage_errors(self):
        """Exit 2 (usage), never 1 (reserved for checker failures)."""
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "wan-storm", "--seeds", "1,x"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "wan-storm", "--seeds", ","])
        assert excinfo.value.code == 2

    def test_nonpositive_jobs_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "wan-storm", "--jobs", "0"])
        assert excinfo.value.code == 2

    def test_duplicate_seeds_deduplicated(self, tmp_path):
        status = main([
            "campaign", "cross-protocol", "--seeds", "2,2,2",
            "--max-scenarios", "1", "--out", str(tmp_path),
        ])
        assert status == 0
        data = json.loads(
            (tmp_path / "CAMPAIGN_cross-protocol.json").read_text())
        assert data["task_count"] == 1

    def test_nonpositive_max_scenarios_is_usage_error(self):
        """A zero-scenario 'campaign' would write a vacuously green
        artifact; reject it up front."""
        for bad in ("0", "-1"):
            with pytest.raises(SystemExit) as excinfo:
                main(["campaign", "wan-storm", "--max-scenarios", bad])
            assert excinfo.value.code == 2


class TestCampaignVerb:
    def test_smoke_campaign_writes_artifacts(self, tmp_path, capsys):
        status = main([
            "campaign", "cross-protocol", "--jobs", "2", "--seeds", "3",
            "--max-scenarios", "2", "--out", str(tmp_path),
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "Campaign `cross-protocol`" in out
        json_path = tmp_path / "CAMPAIGN_cross-protocol.json"
        md_path = tmp_path / "CAMPAIGN_cross-protocol.md"
        assert json_path.exists() and md_path.exists()
        data = json.loads(json_path.read_text())
        assert data["campaign"] == "cross-protocol"
        assert data["jobs"] == 2
        assert data["scenario_count"] == 2
        assert data["all_checkers_ok"] is True
        for scenario in data["scenarios"].values():
            assert set(scenario["seeds"]) == {"3"}
            for seed_result in scenario["seeds"].values():
                assert seed_result["checkers"]
                assert all(v == "ok"
                           for v in seed_result["checkers"].values())

    def test_compare_serial_records_speedup(self, tmp_path):
        status = main([
            "campaign", "zipf-fanout", "--jobs", "2", "--seeds", "1",
            "--max-scenarios", "2", "--out", str(tmp_path),
            "--compare-serial",
        ])
        assert status == 0
        data = json.loads(
            (tmp_path / "CAMPAIGN_zipf-fanout.json").read_text())
        baseline = data["serial_baseline"]
        assert baseline["per_seed_metrics_identical"] is True
        assert baseline["wall_seconds"] > 0
        assert baseline["speedup"] > 0

    def test_fd_overhead_campaign_smoke(self, tmp_path):
        """The detector-axis campaign runs green at smoke size."""
        status = main([
            "campaign", "fd-overhead", "--seeds", "1",
            "--max-scenarios", "3", "--out", str(tmp_path),
        ])
        assert status == 0
        data = json.loads(
            (tmp_path / "CAMPAIGN_fd-overhead.json").read_text())
        assert data["all_checkers_ok"] is True
        detectors = {s["spec"]["detector"]
                     for s in data["scenarios"].values()}
        assert detectors == {"perfect", "heartbeat", "heartbeat-elided"}


class TestTortureVerb:
    def test_smoke_grid_is_green_and_writes_summary(self, tmp_path,
                                                    capsys):
        status = main(["torture", "--campaign", "torture",
                       "--seeds", "1", "--max-scenarios", "4",
                       "--out", str(tmp_path)])
        assert status == 0
        out = capsys.readouterr().out
        assert "4 cases, 0 counterexample(s)" in out
        data = json.loads(
            (tmp_path / "TORTURE_torture.json").read_text())
        assert data["schema"] == "repro.adversary.torture/v1"
        assert data["all_checkers_ok"] is True
        assert data["counterexamples"] == []
        assert data["case_count"] == 4
        assert len(data["adversaries"]) >= 2
        for runs in data["scenarios"].values():
            for record in runs.values():
                assert all(v == "ok"
                           for v in record["verdicts"].values())
                assert record["faults_injected"] > 0

    def test_selftest_catches_shrinks_and_replays(self, tmp_path,
                                                  capsys):
        status = main(["torture", "--selftest", "--out", str(tmp_path)])
        assert status == 0
        out = capsys.readouterr().out
        assert "selftest OK" in out
        artifacts = list(tmp_path.glob("COUNTEREXAMPLE_*.json"))
        assert len(artifacts) == 1
        data = json.loads(artifacts[0].read_text())
        assert data["violation"] is not None
        assert data["expected"]["total_faults"] <= 5
        assert data["shrink"]["runs_used"] > 0

    def test_unknown_campaign_exits_2(self, capsys):
        assert main(["torture", "--campaign", "bogus"]) == 2
        assert "unknown campaign" in capsys.readouterr().err

    def test_bad_budget_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["torture", "--shrink-budget", "0"])
        assert excinfo.value.code == 2

    def test_selftest_rejects_campaign_flags(self):
        """Grid-only flags would be silently ignored by --selftest."""
        for extra in (["--campaign", "crash-storm"],
                      ["--max-scenarios", "2"],
                      ["--no-shrink"]):
            with pytest.raises(SystemExit) as excinfo:
                main(["torture", "--selftest"] + extra)
            assert excinfo.value.code == 2


class TestReplayVerb:
    def test_missing_file_exits_2(self, capsys):
        assert main(["replay", "/no/such/artifact.json"]) == 2
        assert "artifact.json" in capsys.readouterr().err

    def test_malformed_scenario_dict_exits_2(self, tmp_path, capsys):
        """Schema-valid but structurally broken artifacts must fail
        cleanly (exit 2), not with an uncaught traceback."""
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "schema": "repro.adversary.artifact/v1",
            "scenario": {},
            "adversary": {"name": "none"},
            "seed": 1,
            "expected": {},
        }))
        assert main(["replay", str(bad)]) == 2
        assert "bad.json" in capsys.readouterr().err


class TestProfileVerb:
    def test_profile_prints_phase_breakdown(self, capsys):
        status = main(["profile", "--protocol", "a1", "--groups", "2,2",
                       "--rate", "2", "--duration", "8"])
        assert status == 0
        out = capsys.readouterr().out
        assert "Phase timings" in out
        assert "phase sum" in out

    def test_profile_json_record_sums_to_wall(self, tmp_path, capsys):
        path = tmp_path / "prof.json"
        status = main(["profile", "--protocol", "a1", "--groups", "2,2",
                       "--rate", "2", "--duration", "8",
                       "--json", str(path)])
        assert status == 0
        record = json.loads(path.read_text())
        timings = record["phase_timings"]
        assert {"kernel", "network", "checkers"} <= set(timings)
        total = sum(timings.values())
        # Phases are exclusive and cover the run+checker window, so
        # they must account for (nearly) all of the measured wall time.
        assert total == pytest.approx(record["wall_seconds"], rel=0.25)
        assert record["phase_sum_seconds"] == pytest.approx(total,
                                                            abs=1e-4)

    def test_profile_heartbeat_detector_attributed(self, tmp_path):
        path = tmp_path / "prof.json"
        status = main(["profile", "--protocol", "a1", "--groups", "2,2",
                       "--rate", "1", "--duration", "10",
                       "--detector", "heartbeat", "--json", str(path)])
        assert status == 0
        record = json.loads(path.read_text())
        assert record["phase_timings"].get("failure_detection", 0) > 0

    def test_profile_unknown_protocol_exits_2(self, capsys):
        assert main(["profile", "--protocol", "nope"]) == 2
        assert "unknown protocol" in capsys.readouterr().err

    def test_profile_unknown_detector_exits_2(self, capsys):
        assert main(["profile", "--detector", "psychic"]) == 2
        assert "unknown detector" in capsys.readouterr().err

    def test_profile_bad_groups_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["profile", "--groups", "2,x"])
        assert excinfo.value.code == 2


class TestStoreVerb:
    ARGS = ["store", "--groups", "2,2,2", "--keys", "12", "--rate", "0.8",
            "--duration", "15", "--multi-partition", "0.4", "--seed", "1"]

    def test_store_smoke_prints_involvement_and_verdicts(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "committed of" in out
        assert "involvement" in out
        assert "checker serializability: ok" in out
        assert "checker convergence: ok" in out
        assert "checker genuineness: ok" in out

    def test_store_spectator_groups_flagged(self, capsys):
        assert main(self.ARGS + ["--groups", "2,2,2,2",
                                 "--data-groups", "0,1"]) == 0
        out = capsys.readouterr().out
        assert "<- non-destination" in out
        assert "non-destination traffic: 0 copies" in out

    def test_store_json_record(self, tmp_path, capsys):
        path = tmp_path / "store.json"
        assert main(self.ARGS + ["--json", str(path)]) == 0
        record = json.loads(path.read_text())
        assert record["checkers"]["serializability"] == "ok"
        assert record["metrics"]["txn_committed"] > 0
        assert record["spec"]["store"]["routing"] == "genuine"

    def test_store_broadcast_routing(self, capsys):
        assert main(self.ARGS + ["--protocol", "a2",
                                 "--routing", "broadcast"]) == 0
        out = capsys.readouterr().out
        assert "broadcast routing" in out

    def test_store_unknown_protocol_exits_2(self, capsys):
        assert main(self.ARGS + ["--protocol", "nope"]) == 2
        assert "unknown protocol" in capsys.readouterr().err

    def test_store_genuine_over_broadcast_protocol_exits_2(self, capsys):
        assert main(self.ARGS + ["--protocol", "a2"]) == 2
        assert "invalid store scenario" in capsys.readouterr().err

    def test_store_bad_fraction_exits_2(self, capsys):
        assert main(self.ARGS + ["--read-fraction", "1.5"]) == 2
        assert "invalid store scenario" in capsys.readouterr().err

    def test_store_bad_groups_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "--groups", "2,x"])
        assert excinfo.value.code == 2

    def test_store_listed_in_campaigns(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "store-scaling" in out and "txn-mix" in out
