"""Unit tests for the declarative scenario specs and matrix expansion."""

import pickle
import random

import pytest

from repro.campaigns.spec import (
    CrashSpec,
    DestinationSpec,
    LatencySpec,
    ScenarioSpec,
    WorkloadSpec,
    matrix,
    with_seeds,
)
from repro.net.topology import Fixed, Jittered, Topology

TOPO = Topology([3, 3])


class TestLatencySpec:
    def test_logical_builds_fixed_links(self):
        model = LatencySpec.logical().build()
        assert isinstance(model.inter, Fixed)
        assert model.inter.value == 1.0

    def test_wan_builds_jittered_links(self):
        model = LatencySpec.wan(inter_ms=200.0, inter_jitter_ms=3.0).build()
        assert isinstance(model.inter, Jittered)
        assert model.inter.base == 200.0
        assert model.inter.jitter == 3.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown latency kind"):
            LatencySpec(kind="quantum").build()


class TestDestinationSpec:
    def test_kinds_build_choosers(self):
        rng = random.Random(1)
        assert DestinationSpec(kind="all").build()(rng, TOPO, 0) == (0, 1)
        assert DestinationSpec(kind="fixed", groups=(1,)).build()(
            rng, TOPO, 0) == (1,)
        assert len(DestinationSpec(kind="uniform-k", k=2).build()(
            rng, TOPO, 0)) == 2
        assert len(DestinationSpec(kind="zipf", max_k=2).build()(
            rng, TOPO, 0)) in (1, 2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown destination kind"):
            DestinationSpec(kind="everywhere").build()


class TestWorkloadSpec:
    def test_poisson_plans_are_seed_deterministic(self):
        spec = WorkloadSpec(kind="poisson", rate=1.0, duration=20.0)
        a = spec.plans(TOPO, random.Random(5))
        b = spec.plans(TOPO, random.Random(5))
        assert a == b and a

    def test_periodic_and_burst_plans(self):
        periodic = WorkloadSpec(kind="periodic", period=2.0, count=3)
        assert [p.time for p in periodic.plans(TOPO, random.Random(0))] \
            == [0.0, 2.0, 4.0]
        burst = WorkloadSpec(kind="burst", bursts=2, burst_size=3, gap=50.0)
        assert len(burst.plans(TOPO, random.Random(0))) == 6

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            WorkloadSpec(kind="tsunami").plans(TOPO, random.Random(0))


class TestCrashSpec:
    def test_none_and_explicit(self):
        assert len(CrashSpec().build(TOPO, random.Random(0))) == 0
        explicit = CrashSpec(kind="explicit", crashes=((1, 5.0),))
        schedule = explicit.build(TOPO, random.Random(0))
        assert schedule.crash_time(1) == 5.0

    def test_random_minority_is_rng_deterministic(self):
        spec = CrashSpec(kind="random-minority", window=20.0,
                         probability=1.0)
        a = spec.build(TOPO, random.Random(9)).crashes
        b = spec.build(TOPO, random.Random(9)).crashes
        assert a == b
        spec.build(TOPO, random.Random(9)).validate(TOPO)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown crash kind"):
            CrashSpec(kind="meteor").build(TOPO, random.Random(0))


class TestMatrix:
    BASE = ScenarioSpec(name="base")

    def test_cartesian_expansion_and_names(self):
        specs = matrix(self.BASE, {
            "protocol": ["a1", "skeen"],
            "workload.count": [5, 10],
        })
        assert len(specs) == 4
        assert [s.name for s in specs] == [
            "base/protocol=a1/count=5",
            "base/protocol=a1/count=10",
            "base/protocol=skeen/count=5",
            "base/protocol=skeen/count=10",
        ]
        assert specs[3].protocol == "skeen"
        assert specs[3].workload.count == 10
        # The base spec is untouched (frozen dataclasses all the way).
        assert self.BASE.protocol == "a1"
        assert self.BASE.workload.count == 10

    def test_nested_paths_reach_sub_specs(self):
        specs = matrix(self.BASE, {
            "latency.inter_ms": [50.0, 150.0],
            "workload.destinations.k": [2, 3],
        })
        assert {s.latency.inter_ms for s in specs} == {50.0, 150.0}
        assert {s.workload.destinations.k for s in specs} == {2, 3}

    def test_tuple_axis_values_make_readable_names(self):
        specs = matrix(self.BASE, {"group_sizes": [(2, 2), (3, 3, 3)]})
        assert [s.name for s in specs] == [
            "base/group_sizes=2x2", "base/group_sizes=3x3x3",
        ]

    def test_no_axes_returns_base(self):
        assert matrix(self.BASE, {}) == [self.BASE]

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError, match="no field 'velocity'"):
            matrix(self.BASE, {"velocity": [1]})
        with pytest.raises(KeyError, match="no field 'velocity'"):
            matrix(self.BASE, {"workload.velocity": [1]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            matrix(self.BASE, {"protocol": []})

    def test_with_seeds_overrides_every_spec(self):
        specs = with_seeds(matrix(self.BASE, {"protocol": ["a1", "a2"]}),
                           [7, 8, 9])
        assert all(s.seeds == (7, 8, 9) for s in specs)
        with pytest.raises(ValueError, match="at least one seed"):
            with_seeds(specs, [])


class TestPicklability:
    def test_specs_survive_pickling(self):
        """Workers receive specs over a pipe; nothing in them may close
        over live objects."""
        spec = ScenarioSpec(
            name="p", protocol="a2",
            latency=LatencySpec.wan(),
            workload=WorkloadSpec(
                kind="burst",
                destinations=DestinationSpec(kind="zipf", max_k=3)),
            crashes=CrashSpec(kind="random-minority"),
            protocol_kwargs=(("propose_delay", 1.0),),
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.kwargs_dict() == {"propose_delay": 1.0}
