"""White-box tests of Algorithm A2's round machinery."""

import pytest

from repro.net.topology import Fixed, LatencyModel
from repro.runtime.builder import build_system


def _slow_wan():
    return LatencyModel(intra=Fixed(0.01), inter=Fixed(10.0))


class TestRoundProgression:
    def test_round_counter_advances_per_completed_round(self):
        system = build_system(protocol="a2", group_sizes=[2, 2], seed=1)
        system.cast(sender=0)
        system.run_quiescent()
        endpoint = system.endpoints[0]
        # Round 1 (useful) + round 2 (empty) completed: K is now 3.
        assert endpoint.k == 3
        assert endpoint.rounds_executed == 2

    def test_rounds_lock_step_across_groups(self):
        system = build_system(protocol="a2", group_sizes=[3, 3], seed=2)
        for i in range(3):
            system.cast_at(float(i), i % 6)
        system.run_quiescent()
        ks = {system.endpoints[p].k for p in range(6)}
        assert len(ks) == 1  # every process finished the same round

    def test_bundle_for_future_round_is_buffered(self):
        """Lines 8-10: a bundle for round x > K parks in Msgs and
        pushes Barrier so the round eventually runs."""
        system = build_system(protocol="a2", group_sizes=[2, 2], seed=1,
                              latency=_slow_wan())
        system.cast(sender=0)
        probe = system.endpoints[2]  # group 1 observer

        barrier_seen = []

        def watch():
            barrier_seen.append(probe.barrier)
            if system.sim.pending_events:
                system.sim.schedule(1.0, watch)

        system.sim.schedule(0.5, watch)
        system.run_quiescent()
        # Group 1 was idle (Barrier 0) until group 0's round-1 bundle
        # arrived and lifted the barrier to 1.
        assert 0 in barrier_seen and max(barrier_seen) >= 1

    def test_empty_bundles_are_proposed_when_barrier_demands(self):
        """Line 12 may propose the empty set."""
        system = build_system(protocol="a2", group_sizes=[2, 2], seed=1)
        system.cast(sender=0)  # only group 0 has traffic
        system.run_quiescent()
        # Group 1 delivered group 0's message yet never R-Delivered
        # anything itself: its bundles were empty sets.
        endpoint = system.endpoints[2]
        assert endpoint.rdelivered == {}
        assert len(endpoint.adelivered) == 1


class TestBarrierLogic:
    def test_barrier_static_without_deliveries(self):
        system = build_system(protocol="a2", group_sizes=[2, 2], seed=1)
        system.start_rounds()  # Barrier 1, round 1 runs empty
        system.run_quiescent()
        endpoint = system.endpoints[0]
        assert endpoint.barrier == 1
        assert endpoint.rounds_executed == 1  # exactly one empty round

    def test_useful_round_extends_barrier(self):
        system = build_system(protocol="a2", group_sizes=[2, 2], seed=1)
        system.cast(sender=0)
        system.run_quiescent()
        endpoint = system.endpoints[0]
        # Round 1 delivered -> Barrier moved to 2; round 2 was empty.
        assert endpoint.barrier == 2

    def test_restart_lifts_remote_barriers(self):
        """Line 10 is the restart path for prediction mistakes."""
        system = build_system(protocol="a2", group_sizes=[2, 2], seed=1)
        system.cast(sender=0)
        system.cast_at(50.0, 0)  # after quiescence
        system.run_quiescent()
        remote = system.endpoints[2]
        assert remote.barrier >= 3
        assert len(remote.adelivered) == 2


class TestBundleHygiene:
    def test_completed_round_state_garbage_collected(self):
        system = build_system(protocol="a2", group_sizes=[2, 2], seed=1)
        for i in range(4):
            system.cast_at(float(i), 0)
        system.run_quiescent()
        endpoint = system.endpoints[0]
        assert endpoint.msgs == {}       # no bundle leaks
        assert endpoint.rdelivered == {} # everything moved to delivered

    def test_duplicate_bundles_ignored(self):
        """Several senders per group send the same bundle; the first
        copy wins and the rest are redundant by consensus agreement."""
        system = build_system(protocol="a2", group_sizes=[3, 3], seed=3)
        msg = system.cast(sender=0)
        system.run_quiescent()
        for pid in range(6):
            assert system.log.sequence(pid) == [msg.mid]

    def test_no_message_rides_two_rounds(self):
        system = build_system(protocol="a2", group_sizes=[2, 2], seed=4)
        for i in range(5):
            system.cast_at(i * 0.3, i % 4)
        system.run_quiescent()
        for pid in range(4):
            seq = system.log.sequence(pid)
            assert len(seq) == len(set(seq)) == 5


class TestProposeDelayWindow:
    def test_delayed_proposal_rereads_backlog(self):
        """A cast landing inside the bundling window joins the round."""
        system = build_system(protocol="a2", group_sizes=[2, 2], seed=1,
                              propose_delay=1.0)
        early = system.cast_at(0.0, 0)
        late = system.cast_at(0.5, 1)  # lands inside p0's window
        system.run_quiescent()
        # Both messages must share round 1 (delivered consecutively
        # with no empty round between).
        endpoint = system.endpoints[0]
        assert endpoint.useful_rounds == 1
        assert set(system.log.sequence(0)) == {early.mid, late.mid}

    def test_zero_delay_is_immediate(self):
        system = build_system(protocol="a2", group_sizes=[2, 2], seed=1,
                              propose_delay=0.0)
        system.cast(sender=0)
        system.run_quiescent()
        assert system.endpoints[0].useful_rounds == 1

    def test_window_does_not_break_quiescence(self):
        system = build_system(protocol="a2", group_sizes=[2, 2], seed=1,
                              propose_delay=5.0)
        system.cast(sender=0)
        system.run_quiescent(max_events=500_000)  # must drain
