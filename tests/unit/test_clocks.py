"""Unit tests for the modified Lamport clocks and the latency meter.

The clock rules are the ones of paper Section 2.3; the hand-computed
scenarios mirror the appendix proofs of Theorems 4.1, 5.1 and 5.2.
"""

from repro.clocks.lamport import LamportClock
from repro.clocks.latency import LatencyMeter
from repro.sim.kernel import Simulator
from repro.sim.process import Process


class TestLamportClock:
    def test_starts_at_zero(self):
        assert LamportClock().value == 0

    def test_local_event_does_not_advance(self):
        clock = LamportClock()
        assert clock.local_event() == 0
        assert clock.value == 0

    def test_intra_group_send_not_charged(self):
        clock = LamportClock()
        assert clock.timestamp_send(inter_group=False) == 0
        assert clock.value == 0

    def test_inter_group_send_charged_one_hop(self):
        clock = LamportClock()
        assert clock.timestamp_send(inter_group=True) == 1
        # The *send* does not advance the sender's own clock: a
        # one-to-many send is one logical step (Section 2.3).
        assert clock.value == 0

    def test_two_parallel_inter_sends_cost_one_hop_each(self):
        clock = LamportClock()
        ts1 = clock.timestamp_send(inter_group=True)
        ts2 = clock.timestamp_send(inter_group=True)
        assert ts1 == ts2 == 1

    def test_receive_advances_to_max(self):
        clock = LamportClock()
        assert clock.observe_receive(3) == 3
        assert clock.value == 3
        assert clock.observe_receive(1) == 3  # stale ts does not regress

    def test_chain_of_inter_group_hops_accumulates(self):
        a, b, c = LamportClock(), LamportClock(), LamportClock()
        b.observe_receive(a.timestamp_send(inter_group=True))
        c.observe_receive(b.timestamp_send(inter_group=True))
        assert c.local_event() == 2

    def test_intra_group_chain_costs_nothing(self):
        a, b, c = LamportClock(), LamportClock(), LamportClock()
        b.observe_receive(a.timestamp_send(inter_group=False))
        c.observe_receive(b.timestamp_send(inter_group=False))
        assert c.local_event() == 0


def _proc(pid, gid=0):
    return Process(pid, gid, Simulator())


class TestLatencyMeter:
    def test_degree_none_before_delivery(self):
        meter = LatencyMeter()
        meter.record_cast("m1", _proc(0))
        assert meter.latency_degree("m1") is None

    def test_degree_zero_for_local_delivery(self):
        meter = LatencyMeter()
        p = _proc(0)
        meter.record_cast("m1", p)
        meter.record_delivery("m1", p)
        assert meter.latency_degree("m1") == 0

    def test_degree_is_max_over_deliverers(self):
        meter = LatencyMeter()
        caster = _proc(0)
        near, far = _proc(1), _proc(2)
        near.lamport.observe_receive(1)
        far.lamport.observe_receive(2)
        meter.record_cast("m1", caster)
        meter.record_delivery("m1", near)
        meter.record_delivery("m1", far)
        assert meter.latency_degree("m1") == 2

    def test_theorem_4_1_hand_run(self):
        """Replay the appendix run of Theorem 4.1 by hand.

        g1 casts m to g1 and g2; groups exchange TS proposals; g1
        delivers after receiving g2's proposal (which took 2 hops from
        the cast: R-MCast then TS).
        """
        meter = LatencyMeter()
        p1 = _proc(0, gid=0)   # caster in g1
        q1 = _proc(1, gid=1)   # member of g2
        meter.record_cast("m", p1)
        # R-MCast: p1 -> q1 is inter-group (ts = 1).
        q1.lamport.observe_receive(p1.lamport.timestamp_send(True))
        # TS exchange: q1 -> p1 (ts = 2) and p1 -> q1 (ts = 1).
        p1.lamport.observe_receive(q1.lamport.timestamp_send(True))
        q1.lamport.observe_receive(1)
        meter.record_delivery("m", p1)   # delivers at LC = 2
        meter.record_delivery("m", q1)   # delivers at LC = 1
        assert meter.latency_degree("m") == 2

    def test_wall_latencies(self):
        meter = LatencyMeter()
        p, q = _proc(0), _proc(1)
        meter.record_cast("m1", p, now=10.0)
        meter.record_delivery("m1", p, now=12.0)
        meter.record_delivery("m1", q, now=16.0)
        rec = meter.record_for("m1")
        assert rec.worst_delivery_latency == 6.0
        assert rec.mean_delivery_latency == 4.0

    def test_min_max_degree_over_messages(self):
        meter = LatencyMeter()
        caster = _proc(0)
        fast, slow = _proc(1), _proc(2)
        slow.lamport.observe_receive(3)
        meter.record_cast("a", caster)
        meter.record_delivery("a", fast)
        meter.record_cast("b", caster)
        meter.record_delivery("b", slow)
        assert meter.min_degree() == 0
        assert meter.max_degree() == 3

    def test_records_sorted_by_id(self):
        meter = LatencyMeter()
        meter.record_cast("b", _proc(0))
        meter.record_cast("a", _proc(1))
        assert [r.msg_id for r in meter.records()] == ["a", "b"]

    def test_dest_groups_recorded(self):
        meter = LatencyMeter()
        meter.record_cast("m", _proc(0), dest_groups=(2, 0))
        assert meter.record_for("m").dest_groups == (0, 2)
