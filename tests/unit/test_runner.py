"""Unit tests for the multi-seed runner, plus one real use."""

import pytest

from repro.runtime.builder import build_system
from repro.runtime.runner import Aggregate, Repeated


class TestAggregate:
    def test_summary_statistics(self):
        agg = Aggregate("m", [1.0, 2.0, 3.0, 4.0])
        assert agg.n == 4
        assert agg.mean == 2.5
        assert agg.minimum == 1.0
        assert agg.maximum == 4.0
        assert agg.stdev == pytest.approx(1.2909944, rel=1e-6)
        assert agg.stderr == pytest.approx(agg.stdev / 2.0)

    def test_single_value_spread_is_zero(self):
        agg = Aggregate("m", [7.0])
        assert agg.stdev == 0.0
        assert agg.stderr == 0.0


class TestRepeated:
    def test_runs_every_seed_once(self):
        calls = []

        def body(seed):
            calls.append(seed)
            return {"x": seed * 2.0}

        rep = Repeated(body, seeds=[1, 2, 3]).run().run()  # idempotent
        assert calls == [1, 2, 3]
        assert rep.aggregate("x").values == [2.0, 4.0, 6.0]

    def test_aggregates_all_metrics(self):
        rep = Repeated(lambda s: {"a": s, "b": -s}, seeds=[1, 2])
        aggs = rep.aggregates()
        assert set(aggs) == {"a", "b"}
        assert aggs["b"].mean == -1.5

    def test_unknown_metric_rejected(self):
        rep = Repeated(lambda s: {"a": 1.0}, seeds=[1])
        with pytest.raises(KeyError):
            rep.aggregate("zzz")

    def test_inconsistent_metrics_rejected(self):
        def body(seed):
            return {"a": 1.0} if seed == 1 else {"b": 1.0}

        with pytest.raises(ValueError, match="inconsistent"):
            Repeated(body, seeds=[1, 2]).run()

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            Repeated(lambda s: {}, seeds=[])

    def test_assert_always_passes_and_fails(self):
        rep = Repeated(lambda s: {"deg": 2.0 + s % 2}, seeds=[0, 1, 2])
        rep.assert_always("deg", lambda v: v >= 2.0, "lower bound")
        with pytest.raises(AssertionError, match="violated"):
            rep.assert_always("deg", lambda v: v <= 2.0, "upper bound")


class TestRealUse:
    def test_a1_degree_floor_across_seeds(self):
        """The canonical multi-seed claim, via the runner."""

        def body(seed):
            system = build_system(protocol="a1", group_sizes=[2, 2],
                                  seed=seed)
            msg = system.cast(sender=0, dest_groups=(0, 1))
            system.run_quiescent()
            return {
                "degree": system.meter.latency_degree(msg.mid),
                "inter": system.inter_group_messages,
            }

        rep = Repeated(body, seeds=range(6))
        rep.assert_always("degree", lambda v: v == 2.0,
                          "genuine multicast optimum")
        assert rep.aggregate("inter").minimum > 0
