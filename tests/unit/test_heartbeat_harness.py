"""Determinism harness tests: elided heartbeats ≡ message heartbeats.

Each case builds the same protocol scenario under both detector modes
and asserts (via :func:`repro.failure.harness.compare_modes`) that the
suspicion-transition streams, protocol delivery orders and checker
verdicts are bit-identical — across crash-free runs, explicit crash
schedules, seed-derived random-minority schedules, and both A1 and A2.
"""

import pytest

from repro.failure.harness import SuspicionRecorder, compare_modes
from repro.failure.schedule import CrashSchedule
from repro.net.topology import Topology
from repro.runtime.builder import build_system
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.workload.generators import (
    poisson_workload,
    schedule_workload,
    uniform_k_groups,
)


def _make_factory(protocol, group_sizes, crashes, seed, rate=0.5,
                  duration=80.0, horizon=200.0):
    def make_system(mode):
        system = build_system(
            protocol=protocol, group_sizes=group_sizes, seed=seed,
            crashes=crashes,
            detector=("heartbeat-elided" if mode == "elided"
                      else "heartbeat"),
            heartbeat_period=5.0, heartbeat_timeout=20.0,
            heartbeat_horizon=horizon,
        )
        kwargs = ({"destinations": uniform_k_groups(2)}
                  if hasattr(system.endpoints[0], "a_mcast") else {})
        plans = poisson_workload(
            system.topology, system.rng.stream("wl"),
            rate=rate, duration=duration, **kwargs,
        )
        schedule_workload(system, plans)
        if hasattr(system.endpoints[0], "start_rounds"):
            system.start_rounds()
        return system

    return make_system


class TestModesAgree:
    def test_crash_free_run(self):
        # Horizon beyond run_until: heartbeats never fall silent, so a
        # crash-free run must record zero suspicion transitions.
        traces = compare_modes(
            _make_factory("a1", [3, 3], CrashSchedule.none(), seed=3,
                          horizon=300.0),
            run_until=260.0,
        )
        assert traces["messages"].suspicion_transitions == []
        assert traces["messages"].fd_messages > 0
        assert traces["elided"].kernel_events < \
            traces["messages"].kernel_events

    def test_explicit_crashes(self):
        crashes = CrashSchedule({1: 40.0, 4: 70.0})
        traces = compare_modes(
            _make_factory("a1", [3, 3], crashes, seed=5), run_until=260.0)
        observed = {(obs, peer)
                    for _, obs, peer, suspected
                    in traces["elided"].suspicion_transitions if suspected}
        assert (0, 1) in observed and (5, 4) in observed
        assert traces["elided"].checker_verdict == "ok"

    def test_crash_at_exact_beat_instant(self):
        """A crash at a beat time preempts the beat, in both modes."""
        crashes = CrashSchedule({2: 45.0})  # beat grid: 0, 5, 10, ...
        compare_modes(_make_factory("a1", [3, 3], crashes, seed=7),
                      run_until=260.0)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_minority_crash_scenarios(self, seed):
        topology = Topology([3, 3])
        crashes = CrashSchedule.random_minority(
            topology, RngRegistry(seed).stream("harness"), window=60.0)
        compare_modes(_make_factory("a1", [3, 3], crashes, seed=seed),
                      run_until=260.0)

    def test_a2_broadcast(self):
        crashes = CrashSchedule({0: 50.0})
        compare_modes(
            _make_factory("a2", [3, 3], crashes, seed=11, rate=0.3),
            run_until=260.0,
        )


class TestSuspicionRecorder:
    def test_records_transitions_both_ways(self):
        """A suspicion that appears and clears yields two transitions."""

        class FlipFlop:
            def __init__(self, sim):
                self.sim = sim

            def suspects(self, p, q):
                return p == 0 and q == 1 and 10.0 < self.sim.now < 20.0

        sim = Simulator()
        detector = FlipFlop(sim)
        recorder = SuspicionRecorder(sim, detector, Topology([2]),
                                     until=30.0, period=1.0, offset=0.5)
        sim.run(until=30.0)
        # Probes at 10.5 ... 19.5 see True; 20.5 is the first False.
        assert recorder.transitions == [(10.5, 0, 1, True),
                                        (20.5, 0, 1, False)]

    def test_rejects_bad_period(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="period"):
            SuspicionRecorder(sim, None, Topology([2]), until=10.0,
                              period=0.0)


class TestHarnessCatchesDivergence:
    def test_mismatched_scenarios_flagged(self):
        """Feeding the harness two different scenarios must fail."""

        def make_system(mode):
            crashes = (CrashSchedule({1: 40.0}) if mode == "elided"
                       else CrashSchedule.none())
            return _make_factory("a1", [3, 3], crashes, seed=3)(mode)

        with pytest.raises(AssertionError):
            compare_modes(make_system, run_until=260.0)
