"""Unit tests for the lossy-channel decision engine and the transport.

The layers beneath the adversary grids: :class:`ChannelModel`'s draw
discipline and burst chain, the corrupt injector's frame-word
semantics, the reliable transport's zero-loss behaviour, the
stabilization checker's violation paths, and kernel selection when a
transport is mounted.
"""

import random
from types import SimpleNamespace

import pytest

from repro.adversary.injectors import apply_adversary
from repro.adversary.spec import AdversarySpec, InjectorSpec
from repro.checkers.properties import check_all
from repro.checkers.stabilization import (
    StabilizationViolation,
    StreamingStabilizationChecker,
    check_stabilization,
)
from repro.net.channel import ChannelModel
from repro.net.message import Message
from repro.runtime.builder import build_system
from repro.sim.kernel import Simulator
from repro.workload.generators import (
    poisson_workload,
    schedule_workload,
    uniform_k_groups,
)


def _adversary(kind: str, **params) -> AdversarySpec:
    return AdversarySpec(
        name=f"unit-{kind}",
        injectors=(InjectorSpec(kind=kind,
                                params=tuple(params.items())),),
    )


class TestChannelModel:
    def test_probability_must_be_in_unit_interval(self):
        rng = random.Random(0)
        with pytest.raises(ValueError, match="probability"):
            ChannelModel(rng, 0.0)
        with pytest.raises(ValueError, match="probability"):
            ChannelModel(rng, 1.5)

    @pytest.mark.parametrize("knob", ["burst_probability", "burst_enter",
                                      "burst_exit"])
    def test_burst_knobs_must_be_in_unit_interval(self, knob):
        with pytest.raises(ValueError, match=knob):
            ChannelModel(random.Random(0), 0.5, **{knob: 1.01})

    def test_burst_enter_without_burst_probability_rejected(self):
        with pytest.raises(ValueError, match="no-op"):
            ChannelModel(random.Random(0), 0.5, burst_enter=0.3)

    def test_exactly_two_draws_per_roll_regardless_of_config(self):
        """Turning bursts on/off must not realign later decisions:
        every configuration consumes exactly two draws per roll."""
        configs = [
            dict(),
            dict(burst_probability=0.9, burst_enter=0.3, burst_exit=0.1),
            dict(burst_probability=0.5, burst_enter=1.0, burst_exit=0.0),
        ]
        leftovers = []
        for config in configs:
            rng = random.Random(1234)
            model = ChannelModel(rng, 0.5, **config)
            for i in range(100):
                model.roll(i % 3, (i + 1) % 3)
            leftovers.append(rng.random())
        assert len(set(leftovers)) == 1, \
            "configs consumed different numbers of draws"

    def test_certain_fault_always_fires(self):
        model = ChannelModel(random.Random(7), 1.0)
        assert all(model.roll(0, 1)[0] for _ in range(50))

    def test_default_chain_never_enters_burst(self):
        model = ChannelModel(random.Random(7), 0.5)
        for _ in range(200):
            model.roll(0, 1)
        assert not model.in_burst(0, 1)

    def test_sticky_burst_entered_and_held_per_link(self):
        """burst_enter=1, burst_exit=0: the first roll drags the link
        into the bad state forever — and only that link."""
        model = ChannelModel(random.Random(7), 0.01,
                             burst_probability=1.0,
                             burst_enter=1.0, burst_exit=0.0)
        model.roll(0, 1)
        for _ in range(20):
            fault, _ = model.roll(0, 1)
            assert fault  # bad state faults with burst_probability=1
        assert model.in_burst(0, 1)
        assert not model.in_burst(1, 0)

    def test_burst_exit_leaves_the_bad_state(self):
        model = ChannelModel(random.Random(7), 0.01,
                             burst_probability=1.0,
                             burst_enter=1.0, burst_exit=1.0)
        model.roll(0, 1)  # enters on the transition draw...
        model.roll(0, 1)  # ...and exits on the next one
        assert not model.in_burst(0, 1)


class TestCorruptInjectorSemantics:
    def _system_with_corrupt(self):
        system = build_system("a1", group_sizes=[2, 2], seed=1)
        applied = apply_adversary(system,
                                  _adversary("corrupt", probability=1.0))
        return system, applied.injectors[0]

    def test_sequenced_frame_checksum_damaged_seq_intact(self):
        """Corruption flips checksum bits only: the sequence number
        survives, so the receiving transport sees a checksum mismatch
        on the right link slot — detectable, repairable damage."""
        _, injector = self._system_with_corrupt()
        msg = Message(0, 2, "amcast.ts", {}, True, 0, 0.0, (5 << 8) | 0xAB)
        assert injector._on_delivery(msg) is True  # delivered, damaged
        assert msg.wire != (5 << 8) | 0xAB
        assert msg.wire >> 8 == 5
        assert msg.wire & 0xFF != 0xAB

    def test_unsequenced_copy_is_dropped_outright(self):
        """No frame word means no CRC to damage: the link eats it."""
        _, injector = self._system_with_corrupt()
        msg = Message(0, 2, "amcast.ts", {}, True, 0, 0.0, None)
        assert injector._on_delivery(msg) is False
        assert msg.wire is None


class TestZeroLossTransport:
    def test_clean_run_costs_acks_only(self):
        """Without faults the transport never retransmits, never
        buffers, never suppresses — it sequences, acks, and drains."""
        system = build_system("a1", group_sizes=[3, 3], seed=3,
                              transport="reliable")
        plans = poisson_workload(
            system.topology, system.rng.stream("wl"),
            rate=1.5, duration=15.0, destinations=uniform_k_groups(2),
        )
        schedule_workload(system, plans)
        system.run_quiescent()

        stats = system.transport.stats
        assert stats.wrapped_sends > 0
        assert stats.data_copies > 0
        assert stats.retransmits == 0
        assert stats.dup_suppressed == 0
        assert stats.corrupt_detected == 0
        assert stats.buffered == 0
        assert stats.acks_sent > 0
        assert stats.released == stats.data_copies
        assert system.transport.outstanding() == {"unacked": {},
                                                  "buffered": {}}
        check_all(system.log, system.topology)


class TestStabilizationCheckerViolations:
    def test_pending_events_are_a_violation(self):
        sim = Simulator()
        sim.schedule_action(10.0, lambda: None)
        system = SimpleNamespace(sim=sim)
        with pytest.raises(StabilizationViolation, match="quiesce"):
            check_stabilization(system)

    def test_undrained_transport_is_a_violation(self):
        sim = Simulator()
        transport = SimpleNamespace(
            outstanding=lambda: {"unacked": {(0, 1): 3}, "buffered": {}})
        system = SimpleNamespace(sim=sim, transport=transport)
        with pytest.raises(StabilizationViolation, match="did not[\\s]+drain"):
            check_stabilization(system)

    def test_fault_past_the_horizon_is_a_violation(self):
        system = build_system("a1", group_sizes=[2, 2], seed=1,
                              transport="reliable")
        applied = apply_adversary(
            system, _adversary("drop", probability=0.2, until=5.0))
        system.applied_adversary = applied
        system.run_quiescent()  # nothing scheduled: quiesces clean
        applied.injectors[0].last_fault_time = 6.0  # claim a late fault
        with pytest.raises(StabilizationViolation, match="horizon"):
            check_stabilization(system)

    def test_clean_run_reports_horizon_and_settling(self):
        system = build_system("a1", group_sizes=[2, 2], seed=1,
                              transport="reliable")
        applied = apply_adversary(
            system, _adversary("drop", probability=0.2, until=5.0))
        system.applied_adversary = applied
        system.stabilization_checker = (
            StreamingStabilizationChecker().attach(system))
        plans = poisson_workload(
            system.topology, system.rng.stream("wl"),
            rate=1.0, duration=10.0, destinations=uniform_k_groups(2),
        )
        schedule_workload(system, plans)
        system.run_quiescent()
        report = check_stabilization(system)
        assert report.stabilized
        assert report.horizon == 5.0
        assert report.last_delivery_at is not None
        assert report.settle_after_horizon is not None
        assert report.settle_after_horizon >= 0.0


class TestKernelSelectionWithTransport:
    def _spec(self, kernel: str):
        from repro.campaigns.spec import (
            DestinationSpec,
            ScenarioSpec,
            WorkloadSpec,
        )

        return ScenarioSpec(
            name=f"kernel-{kernel}",
            protocol="a1",
            group_sizes=(2, 2),
            workload=WorkloadSpec(
                kind="periodic", period=2.0, count=6,
                destinations=DestinationSpec(kind="uniform-k", k=2),
            ),
            checkers=("properties",),
            transport="reliable",
            kernel=kernel,
        )

    def test_parallel_kernel_rejects_transport(self):
        from repro.campaigns.runner import build_scenario_system
        from repro.runtime.parallel import ParallelKernelError

        with pytest.raises(ParallelKernelError, match="transport"):
            build_scenario_system(self._spec("parallel"), seed=1)

    def test_auto_kernel_degrades_to_serial(self):
        from repro.campaigns.runner import build_scenario_system
        from repro.runtime.parallel import ParallelSystem

        system, plans, applied = build_scenario_system(
            self._spec("auto"), seed=1)
        assert not isinstance(system, ParallelSystem)
        assert system.transport is not None
        system.run_quiescent()
        check_all(system.log, system.topology)


class TestLossyNetCampaign:
    def test_lossy_net_scenarios_mount_the_transport(self):
        from repro.campaigns.library import get_campaign

        campaign = get_campaign("lossy-net")
        scenarios = campaign.scenarios
        assert len(scenarios) >= 6
        for scenario in scenarios:
            assert scenario.transport == "reliable"
            assert "properties" in scenario.checkers
            assert "stabilization" in scenario.checkers
            assert scenario.adversary.startswith("lossy-")
