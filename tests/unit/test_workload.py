"""Unit tests for workload generators and the results module."""

import random

import pytest

from repro.core.interfaces import AppMessage
from repro.net.topology import Topology
from repro.runtime.results import DeliveryLog, Row, format_table
from repro.workload.generators import (
    all_groups,
    burst_workload,
    fixed_groups,
    periodic_workload,
    poisson_workload,
    uniform_k_groups,
    zipf_group_count,
)

TOPO = Topology([2, 2, 2])


class TestDestinationChoosers:
    def test_all_groups(self):
        assert all_groups(random.Random(0), TOPO, 0) == (0, 1, 2)

    def test_fixed_groups_dedupes_and_sorts(self):
        chooser = fixed_groups([2, 0, 2])
        assert chooser(random.Random(0), TOPO, 0) == (0, 2)

    def test_uniform_k_includes_sender_group(self):
        chooser = uniform_k_groups(2)
        rng = random.Random(1)
        for sender in (0, 2, 4):
            dest = chooser(rng, TOPO, sender)
            assert len(dest) == 2
            assert TOPO.group_of(sender) in dest

    def test_uniform_k_without_sender_group(self):
        chooser = uniform_k_groups(2, include_sender_group=False)
        rng = random.Random(1)
        for _ in range(20):
            dest = chooser(rng, TOPO, 0)
            assert len(dest) == 2

    def test_uniform_k_too_large_rejected(self):
        chooser = uniform_k_groups(5)
        with pytest.raises(ValueError):
            chooser(random.Random(0), TOPO, 0)

    def test_zipf_prefers_small_destination_sets(self):
        chooser = zipf_group_count(3, skew=1.5)
        rng = random.Random(2)
        sizes = [len(chooser(rng, TOPO, 0)) for _ in range(300)]
        assert sizes.count(1) > sizes.count(2) > sizes.count(3)
        assert set(sizes) <= {1, 2, 3}


class TestArrivalProcesses:
    def test_poisson_respects_duration(self):
        plans = poisson_workload(TOPO, random.Random(3), rate=2.0,
                                 duration=10.0)
        assert plans
        assert all(0.0 <= p.time < 10.0 for p in plans)

    def test_poisson_rate_roughly_matches(self):
        plans = poisson_workload(TOPO, random.Random(4), rate=5.0,
                                 duration=100.0)
        assert 350 < len(plans) < 650  # ~500 expected

    def test_poisson_restricted_senders(self):
        plans = poisson_workload(TOPO, random.Random(5), rate=2.0,
                                 duration=10.0, senders=[1, 3])
        assert {p.sender for p in plans} <= {1, 3}

    def test_poisson_deterministic_per_seed(self):
        a = poisson_workload(TOPO, random.Random(7), rate=1.0, duration=10.0)
        b = poisson_workload(TOPO, random.Random(7), rate=1.0, duration=10.0)
        assert a == b

    def test_poisson_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="positive rate.*0.0"):
            poisson_workload(TOPO, random.Random(1), rate=0.0, duration=10.0)
        with pytest.raises(ValueError, match="positive rate.*-3"):
            poisson_workload(TOPO, random.Random(1), rate=-3, duration=10.0)

    def test_periodic_spacing_and_round_robin(self):
        plans = periodic_workload(TOPO, period=2.0, count=4,
                                  senders=[0, 3])
        assert [p.time for p in plans] == [0.0, 2.0, 4.0, 6.0]
        assert [p.sender for p in plans] == [0, 3, 0, 3]

    def test_periodic_rejects_nonpositive_period(self):
        with pytest.raises(ValueError, match="positive period.*0.0"):
            periodic_workload(TOPO, period=0.0, count=4)
        with pytest.raises(ValueError, match="positive period.*-1"):
            periodic_workload(TOPO, period=-1, count=4)

    def test_periodic_rejects_negative_count(self):
        with pytest.raises(ValueError, match="non-negative count.*-2"):
            periodic_workload(TOPO, period=1.0, count=-2)

    def test_periodic_zero_count_is_empty(self):
        assert periodic_workload(TOPO, period=1.0, count=0) == []

    def test_burst_rejects_nonpositive_shape(self):
        with pytest.raises(ValueError, match="positive burst count.*0"):
            burst_workload(TOPO, random.Random(1), bursts=0,
                           burst_size=4, gap=10.0)
        with pytest.raises(ValueError, match="positive burst size.*-1"):
            burst_workload(TOPO, random.Random(1), bursts=2,
                           burst_size=-1, gap=10.0)

    def test_burst_rejects_negative_gap_and_spread(self):
        with pytest.raises(ValueError, match="non-negative gap.*-5"):
            burst_workload(TOPO, random.Random(1), bursts=2,
                           burst_size=4, gap=-5.0)
        with pytest.raises(ValueError, match="non-negative spread.*-0.5"):
            burst_workload(TOPO, random.Random(1), bursts=2,
                           burst_size=4, gap=10.0, spread=-0.5)

    def test_burst_structure(self):
        plans = burst_workload(TOPO, random.Random(8), bursts=3,
                               burst_size=4, gap=100.0, spread=1.0)
        assert len(plans) == 12
        assert [p.time for p in plans] == sorted(p.time for p in plans)
        # Each burst's casts fall within [base, base + spread].
        for plan in plans:
            offset = plan.time % 100.0
            assert offset <= 1.0


class TestDeliveryLog:
    def test_sequences_and_counts(self):
        log = DeliveryLog()
        a = AppMessage(mid="a", sender=0, dest_groups=(0,))
        b = AppMessage(mid="b", sender=0, dest_groups=(0,))
        log.record_cast(a)
        log.record_cast(b)
        log.record_delivery(0, a)
        log.record_delivery(0, b)
        log.record_delivery(1, a)
        assert log.sequence(0) == ["a", "b"]
        assert log.sequence(1) == ["a"]
        assert log.sequence(9) == []
        assert log.delivery_count() == 3
        assert log.processes() == [0, 1]
        assert sorted(log.deliveries_of("a")) == [0, 1]
        assert set(log.cast_messages()) == {"a", "b"}


class TestFormatTable:
    def test_alignment_and_content(self):
        table = format_table(
            "Title", ["col", "value"],
            [Row("first", [1]), Row("longer-label", [2.5])],
            note="a note",
        )
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert "col" in lines[2]
        assert "first" in table and "longer-label" in table
        assert "2.50" in table  # float formatting
        assert table.endswith("a note")

    def test_wide_values_stretch_columns(self):
        table = format_table("T", ["c1", "c2"],
                             [Row("x", ["a-very-wide-cell-value"])])
        header, divider, row = table.splitlines()[2:5]
        assert len(divider) >= len("a-very-wide-cell-value")
