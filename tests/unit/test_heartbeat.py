"""Unit and integration tests for the heartbeat failure detector."""

import random

import pytest

from repro.checkers.properties import check_all
from repro.consensus.paxos import GroupConsensus
from repro.core.amcast import AtomicMulticastA1
from repro.failure.heartbeat import HeartbeatFailureDetector
from repro.net.network import Network
from repro.net.topology import Fixed, LatencyModel, Topology
from repro.net.trace import MessageTrace
from repro.sim.kernel import Simulator
from repro.sim.process import Process


def _system(group_sizes=(3,), period=10.0, timeout=35.0,
            mode="messages", horizon=None):
    sim = Simulator()
    topo = Topology(list(group_sizes))
    net = Network(sim, topo, LatencyModel(Fixed(1.0), Fixed(50.0)),
                  random.Random(0), trace=MessageTrace(False))
    for pid in topo.processes:
        net.register(Process(pid, topo.group_of(pid), sim))
    fd = HeartbeatFailureDetector(sim, net, topo, period=period,
                                  timeout=timeout, mode=mode,
                                  horizon=horizon)
    return sim, topo, net, fd


class TestDetectorBehaviour:
    def test_timeout_must_exceed_period(self):
        with pytest.raises(ValueError):
            _system(period=10.0, timeout=5.0)

    def test_no_false_suspicions_among_correct_processes(self):
        sim, topo, net, fd = _system()
        sim.run(until=500.0)
        for p in topo.processes:
            for q in topo.processes:
                assert not fd.suspects(p, q)

    def test_crashed_process_eventually_suspected(self):
        sim, topo, net, fd = _system()
        sim.call_at(100.0, net.process(1).crash)
        sim.run(until=100.0 + 35.0 + 15.0)
        assert fd.suspects(0, 1)
        assert fd.suspects(2, 1)

    def test_not_suspected_before_timeout(self):
        sim, topo, net, fd = _system()
        sim.call_at(100.0, net.process(1).crash)
        sim.run(until=110.0)
        assert not fd.suspects(0, 1)

    def test_self_never_suspected(self):
        sim, topo, net, fd = _system()
        sim.run(until=200.0)
        assert not fd.suspects(0, 0)

    def test_cross_group_peers_not_suspected(self):
        """Heartbeats are group-scoped; outsiders default to trusted."""
        sim, topo, net, fd = _system(group_sizes=(2, 2))
        sim.call_at(50.0, net.process(3).crash)
        sim.run(until=300.0)
        assert fd.suspects(2, 3)       # same group: suspected
        assert not fd.suspects(0, 3)   # other group: not covered

    def test_leader_election_moves_past_crash(self):
        sim, topo, net, fd = _system()
        sim.call_at(50.0, net.process(0).crash)
        sim.run(until=150.0)
        assert fd.leader(1, topo.members(0)) == 1

    def test_stop_ends_heartbeat_traffic(self):
        sim, topo, net, fd = _system()
        sim.run(until=100.0)
        fd.stop()
        sim.run_until_quiescent(max_events=100_000)  # drains now

    def test_stop_cancels_outstanding_beat_timers(self):
        """Regression: stop() must not leave beats in the queue.

        Before the fix, a stopped detector's pending beat still fired
        (as a no-op) one period later, delaying run_until_quiescent —
        the drain time must equal the stop time, not stop + period.
        """
        sim, topo, net, fd = _system(period=10.0, timeout=35.0)
        # Stop mid-period (beats at 90 delivered at 91): nothing is in
        # flight, so the only queued event is the next beat timer.
        sim.run(until=95.0)
        assert fd.pending_timers == 1
        fd.stop()
        assert fd.pending_timers == 0
        assert sim.pending_events == 0
        assert sim.run_until_quiescent(max_events=100_000) == 95.0

    def test_horizon_stops_beats_and_drains(self):
        sim, topo, net, fd = _system(period=10.0, timeout=35.0,
                                     horizon=50.0)
        end = sim.run_until_quiescent(max_events=100_000)
        # Last beat at 50, its copies arrive one intra delay later.
        assert end == 51.0
        assert fd.pending_timers == 0

    def test_one_timer_per_group_not_per_process(self):
        """Coalescing: n processes in g groups keep only g timers."""
        sim, topo, net, fd = _system(group_sizes=(4, 4, 4))
        sim.run(until=25.0)
        assert fd.pending_timers == 3

    def test_group_timer_dies_when_whole_group_crashes(self):
        sim, topo, net, fd = _system(group_sizes=(2, 2))
        net.process(2).crash()
        net.process(3).crash()
        sim.run(until=50.0)
        assert fd.pending_timers == 1  # only group 0 still beats

    def test_last_heartbeat_diagnostic(self):
        sim, topo, net, fd = _system()
        sim.run(until=50.0)
        assert fd.last_heartbeat(0, 1) is not None
        assert fd.last_heartbeat(0, 99) is None

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            _system(mode="psychic")


def _advance(sim, t):
    """Advance the virtual clock to ``t``.

    The elided detector schedules nothing, so an otherwise empty queue
    would leave ``sim.now`` at the last event; a sentinel no-op event
    pins the clock where the test wants to probe.
    """
    sim.call_at(t, lambda: None)
    sim.run(until=t)


class TestElidedMode:
    """The analytic mode answers like message mode, with zero traffic."""

    def test_no_events_no_messages(self):
        sim, topo, net, fd = _system(mode="elided")
        assert sim.pending_events == 0
        assert sim.run_until_quiescent(max_events=10) == 0.0
        assert net.stats.total_messages == 0

    def test_no_false_suspicions_among_correct_processes(self):
        sim, topo, net, fd = _system(mode="elided")
        _advance(sim, 500.0)
        for p in topo.processes:
            for q in topo.processes:
                assert not fd.suspects(p, q)

    def test_crashed_process_eventually_suspected(self):
        sim, topo, net, fd = _system(mode="elided")
        sim.call_at(100.0, net.process(1).crash)
        _advance(sim, 150.0)
        assert fd.suspects(0, 1)
        assert fd.suspects(2, 1)
        assert not fd.suspects(0, 2)

    def test_not_suspected_before_timeout(self):
        sim, topo, net, fd = _system(mode="elided")
        sim.call_at(100.0, net.process(1).crash)
        _advance(sim, 110.0)
        assert not fd.suspects(0, 1)

    def test_suspicion_instant_matches_message_mode(self):
        """Transition times agree at sub-period probe resolution.

        A crash at exactly a beat instant preempts the beat (the crash
        event was scheduled first), so the last beat of process 1 is at
        90, arriving at 91; suspicion begins strictly after 91 + 35.
        """
        for mode in ("messages", "elided"):
            sim, topo, net, fd = _system(mode=mode)
            sim.call_at(100.0, net.process(1).crash)
            transitions = []
            for t in (125.5, 126.5, 127.5):
                _advance(sim, t)
                transitions.append((t, fd.suspects(0, 1)))
            assert transitions == [(125.5, False), (126.5, True),
                                   (127.5, True)], mode

    def test_cross_group_peers_not_suspected(self):
        sim, topo, net, fd = _system(group_sizes=(2, 2), mode="elided")
        sim.call_at(50.0, net.process(3).crash)
        _advance(sim, 300.0)
        assert fd.suspects(2, 3)
        assert not fd.suspects(0, 3)

    def test_horizon_caps_analytic_beats(self):
        sim, topo, net, fd = _system(mode="elided", horizon=50.0)
        _advance(sim, 300.0)
        # Last analytic beat at 50 arrives at 51; by 300 everyone has
        # been silent for 249 > timeout, exactly as message mode would.
        assert fd.suspects(0, 1)

    def test_jittered_intra_latency_rejected(self):
        from repro.net.topology import Jittered

        sim = Simulator()
        topo = Topology([3])
        net = Network(sim, topo, LatencyModel(Jittered(1.0, 0.5),
                                              Fixed(50.0)),
                      random.Random(0), trace=MessageTrace(False))
        for pid in topo.processes:
            net.register(Process(pid, topo.group_of(pid), sim))
        with pytest.raises(ValueError, match="fixed intra-group"):
            HeartbeatFailureDetector(sim, net, topo, mode="elided")

    def test_last_heartbeat_analytic(self):
        sim, topo, net, fd = _system(mode="elided")
        _advance(sim, 50.0)
        # Beats at 0, 10, ..., 50 arrive one unit later; last <= 50 is
        # the beat of 40, seen at 41.
        assert fd.last_heartbeat(0, 1) == 41.0
        assert fd.last_heartbeat(0, 99) is None

    def test_stop_caps_analytic_beats_like_message_mode(self):
        """After stop(), both modes fall silent at the same instant."""
        answers = {}
        for mode in ("messages", "elided"):
            sim, topo, net, fd = _system(mode=mode)
            _advance(sim, 95.0)
            fd.stop()
            probes = []
            # Last beat at 90, seen at 91; suspicion after 126.
            for t in (120.5, 126.5, 200.0):
                _advance(sim, t)
                probes.append((t, fd.suspects(0, 1)))
            answers[mode] = probes
        assert answers["messages"] == answers["elided"]
        assert answers["elided"] == [(120.5, False), (126.5, True),
                                     (200.0, True)]


class TestProtocolsOverHeartbeats:
    """The stacks need only the FailureDetector interface."""

    def test_consensus_decides_with_heartbeat_detector(self):
        sim, topo, net, fd = _system()
        decisions = {}
        stacks = {}
        for pid in topo.processes:
            stack = GroupConsensus(net.process(pid), topo.members(0), fd,
                                   retry_timeout=40.0)
            stack.set_decision_handler(
                lambda k, v, pid=pid: decisions.setdefault(pid, v))
            stacks[pid] = stack
        stacks[0].propose(1, ("value",))
        sim.run(until=300.0)
        assert decisions == {0: ("value",), 1: ("value",), 2: ("value",)}

    def test_consensus_survives_leader_crash(self):
        sim, topo, net, fd = _system(period=5.0, timeout=20.0)
        decisions = {}
        stacks = {}
        for pid in topo.processes:
            stack = GroupConsensus(net.process(pid), topo.members(0), fd,
                                   retry_timeout=30.0)
            stack.set_decision_handler(
                lambda k, v, pid=pid: decisions.setdefault(pid, v))
            stacks[pid] = stack
        net.process(0).crash()  # rank-0 leader is already gone
        stacks[1].propose(1, ("survivor",))
        sim.run(until=500.0)
        assert decisions.get(1) == ("survivor",)
        assert decisions.get(2) == ("survivor",)

    def test_a1_full_run_with_heartbeats(self):
        from repro.core.interfaces import AppMessage
        from repro.runtime.results import DeliveryLog

        sim, topo, net, fd = _system(group_sizes=(2, 2))
        log = DeliveryLog()
        endpoints = {}
        for pid in topo.processes:
            endpoint = AtomicMulticastA1(net.process(pid), topo, fd)
            endpoint.set_delivery_handler(
                lambda m, pid=pid: log.record_delivery(pid, m))
            endpoints[pid] = endpoint
        msg = AppMessage.fresh(sender=0, dest_groups=(0, 1))
        log.record_cast(msg)
        endpoints[0].a_mcast(msg)
        sim.run(until=500.0)
        check_all(log, topo)
        for pid in topo.processes:
            assert log.sequence(pid) == [msg.mid]
