"""Unit and integration tests for the heartbeat failure detector."""

import random

import pytest

from repro.checkers.properties import check_all
from repro.consensus.paxos import GroupConsensus
from repro.core.amcast import AtomicMulticastA1
from repro.failure.heartbeat import HeartbeatFailureDetector
from repro.net.network import Network
from repro.net.topology import Fixed, LatencyModel, Topology
from repro.net.trace import MessageTrace
from repro.sim.kernel import Simulator
from repro.sim.process import Process


def _system(group_sizes=(3,), period=10.0, timeout=35.0):
    sim = Simulator()
    topo = Topology(list(group_sizes))
    net = Network(sim, topo, LatencyModel(Fixed(1.0), Fixed(50.0)),
                  random.Random(0), trace=MessageTrace(False))
    for pid in topo.processes:
        net.register(Process(pid, topo.group_of(pid), sim))
    fd = HeartbeatFailureDetector(sim, net, topo, period=period,
                                  timeout=timeout)
    return sim, topo, net, fd


class TestDetectorBehaviour:
    def test_timeout_must_exceed_period(self):
        with pytest.raises(ValueError):
            _system(period=10.0, timeout=5.0)

    def test_no_false_suspicions_among_correct_processes(self):
        sim, topo, net, fd = _system()
        sim.run(until=500.0)
        for p in topo.processes:
            for q in topo.processes:
                assert not fd.suspects(p, q)

    def test_crashed_process_eventually_suspected(self):
        sim, topo, net, fd = _system()
        sim.call_at(100.0, net.process(1).crash)
        sim.run(until=100.0 + 35.0 + 15.0)
        assert fd.suspects(0, 1)
        assert fd.suspects(2, 1)

    def test_not_suspected_before_timeout(self):
        sim, topo, net, fd = _system()
        sim.call_at(100.0, net.process(1).crash)
        sim.run(until=110.0)
        assert not fd.suspects(0, 1)

    def test_self_never_suspected(self):
        sim, topo, net, fd = _system()
        sim.run(until=200.0)
        assert not fd.suspects(0, 0)

    def test_cross_group_peers_not_suspected(self):
        """Heartbeats are group-scoped; outsiders default to trusted."""
        sim, topo, net, fd = _system(group_sizes=(2, 2))
        sim.call_at(50.0, net.process(3).crash)
        sim.run(until=300.0)
        assert fd.suspects(2, 3)       # same group: suspected
        assert not fd.suspects(0, 3)   # other group: not covered

    def test_leader_election_moves_past_crash(self):
        sim, topo, net, fd = _system()
        sim.call_at(50.0, net.process(0).crash)
        sim.run(until=150.0)
        assert fd.leader(1, topo.members(0)) == 1

    def test_stop_ends_heartbeat_traffic(self):
        sim, topo, net, fd = _system()
        sim.run(until=100.0)
        fd.stop()
        sim.run_until_quiescent(max_events=100_000)  # drains now

    def test_last_heartbeat_diagnostic(self):
        sim, topo, net, fd = _system()
        sim.run(until=50.0)
        assert fd.last_heartbeat(0, 1) is not None
        assert fd.last_heartbeat(0, 99) is None


class TestProtocolsOverHeartbeats:
    """The stacks need only the FailureDetector interface."""

    def test_consensus_decides_with_heartbeat_detector(self):
        sim, topo, net, fd = _system()
        decisions = {}
        stacks = {}
        for pid in topo.processes:
            stack = GroupConsensus(net.process(pid), topo.members(0), fd,
                                   retry_timeout=40.0)
            stack.set_decision_handler(
                lambda k, v, pid=pid: decisions.setdefault(pid, v))
            stacks[pid] = stack
        stacks[0].propose(1, ("value",))
        sim.run(until=300.0)
        assert decisions == {0: ("value",), 1: ("value",), 2: ("value",)}

    def test_consensus_survives_leader_crash(self):
        sim, topo, net, fd = _system(period=5.0, timeout=20.0)
        decisions = {}
        stacks = {}
        for pid in topo.processes:
            stack = GroupConsensus(net.process(pid), topo.members(0), fd,
                                   retry_timeout=30.0)
            stack.set_decision_handler(
                lambda k, v, pid=pid: decisions.setdefault(pid, v))
            stacks[pid] = stack
        net.process(0).crash()  # rank-0 leader is already gone
        stacks[1].propose(1, ("survivor",))
        sim.run(until=500.0)
        assert decisions.get(1) == ("survivor",)
        assert decisions.get(2) == ("survivor",)

    def test_a1_full_run_with_heartbeats(self):
        from repro.core.interfaces import AppMessage
        from repro.runtime.results import DeliveryLog

        sim, topo, net, fd = _system(group_sizes=(2, 2))
        log = DeliveryLog()
        endpoints = {}
        for pid in topo.processes:
            endpoint = AtomicMulticastA1(net.process(pid), topo, fd)
            endpoint.set_delivery_handler(
                lambda m, pid=pid: log.record_delivery(pid, m))
            endpoints[pid] = endpoint
        msg = AppMessage.fresh(sender=0, dest_groups=(0, 1))
        log.record_cast(msg)
        endpoints[0].a_mcast(msg)
        sim.run(until=500.0)
        check_all(log, topo)
        for pid in topo.processes:
            assert log.sequence(pid) == [msg.mid]
