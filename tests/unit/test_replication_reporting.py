"""Divergence-report pinpointing and replication-layer guards.

Covers the thin spots called out in PR 5's satellites: the ledger's
unit-level behaviour, convergence failures naming the exact diverging
pid/key, the partition map's memoised hashing plus its empty-key guard,
and the KV store's empty-batch validation.
"""

import pytest

from repro.net.topology import Topology
from repro.replication import (
    KVCluster,
    LedgerCluster,
    PartitionMap,
    describe_divergence,
)


def kv_cluster():
    cluster = KVCluster.build(
        [2, 2], partitions={"users": 0, "orders": 1}, protocol="a1",
        seed=1,
    )
    cluster.store(0).put("users", "alice")
    cluster.store(2).put("orders", ["o1"])
    cluster.system.run_quiescent()
    return cluster


def ledger_cluster():
    cluster = LedgerCluster.build(
        [2, 2], initial_balances={"a": 100, "b": 50}, protocol="a2",
        seed=1,
    )
    cluster.ledger(0).transfer("a", "b", 30)
    cluster.system.run_quiescent()
    return cluster


class TestDescribeDivergence:
    def test_names_key_and_per_pid_values(self):
        detail = describe_divergence({0: {"x": 1}, 1: {"x": 2}})
        assert "key 'x'" in detail
        assert "pid 0: 1" in detail and "pid 1: 2" in detail

    def test_missing_key_reported_as_missing(self):
        detail = describe_divergence({0: {"x": 1}, 1: {}})
        assert "pid 1: <missing>" in detail

    def test_multiple_diverging_keys_all_listed(self):
        detail = describe_divergence(
            {0: {"x": 1, "y": 1}, 1: {"x": 2, "y": 2}})
        assert "key 'x'" in detail and "key 'y'" in detail


class TestKVConvergenceReporting:
    def test_green_run_converges(self):
        kv_cluster().assert_convergence()

    def test_failure_pinpoints_pid_and_key(self):
        cluster = kv_cluster()
        cluster.store(1).state["users"] = "mallory"
        with pytest.raises(AssertionError) as exc:
            cluster.assert_convergence()
        message = str(exc.value)
        assert "group 0" in message
        assert "key 'users'" in message
        assert "pid 1: 'mallory'" in message
        assert "pid 0: 'alice'" in message

    def test_crashed_replicas_excluded_from_comparison(self):
        cluster = kv_cluster()
        cluster.store(1).state["users"] = "mallory"
        cluster.system.network.process(1).crashed = True
        cluster.assert_convergence()  # only correct replicas compared


class TestLedgerReporting:
    def test_green_run_converges(self):
        ledger_cluster().assert_convergence()

    def test_balance_divergence_pinpoints_account(self):
        cluster = ledger_cluster()
        cluster.ledger(3).balances["a"] = 999
        with pytest.raises(AssertionError) as exc:
            cluster.assert_convergence()
        message = str(exc.value)
        assert "balances diverged" in message
        assert "key 'a'" in message
        assert "pid 3: 999" in message

    def test_order_divergence_pinpoints_replicas(self):
        cluster = ledger_cluster()
        cluster.ledger(2).committed.append("txFAKE")
        with pytest.raises(AssertionError) as exc:
            cluster.assert_convergence()
        message = str(exc.value)
        assert "commit orders diverged" in message
        assert "pid 2" in message and "txFAKE" in message

    def test_rejected_transfers_tracked(self):
        cluster = ledger_cluster()
        cluster.ledger(1).transfer("a", "b", 10_000)  # insufficient
        cluster.system.run_quiescent()
        cluster.assert_convergence()
        assert len(cluster.ledger(0).rejected) == 1
        assert cluster.ledger(0).balance("a") == 70

    def test_balance_of_unknown_account_is_zero(self):
        assert ledger_cluster().ledger(0).balance("nobody") == 0


class TestPartitionMapMemo:
    def test_hash_assignment_memoised(self):
        pmap = PartitionMap(Topology([2, 2, 2]))
        first = pmap.group_of("hot-key")
        assert pmap._hash_memo == {"hot-key": first}
        # Poison the memo: a second lookup must come from it, proving
        # the sha256 path is not re-run per call.
        pmap._hash_memo["hot-key"] = (first + 1) % 3
        assert pmap.group_of("hot-key") == (first + 1) % 3

    def test_explicit_keys_bypass_memo(self):
        pmap = PartitionMap(Topology([2, 2]), explicit={"users": 1})
        assert pmap.group_of("users") == 1
        assert "users" not in pmap._hash_memo

    def test_groups_of_empty_keys_rejected(self):
        pmap = PartitionMap(Topology([2, 2]))
        with pytest.raises(ValueError, match="at least one key"):
            pmap.groups_of(())
        with pytest.raises(ValueError, match="at least one key"):
            pmap.groups_of([])


class TestPutManyValidation:
    def test_empty_write_batch_rejected(self):
        cluster = KVCluster.build([2, 2], protocol="a1", seed=1)
        with pytest.raises(ValueError, match="non-empty write batch"):
            cluster.store(0).put_many({})
