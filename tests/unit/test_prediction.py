"""Unit tests for the quiescence-prediction strategies."""

import pytest

from repro.core.prediction import (
    LingerPredictor,
    PaperPredictor,
    RateAdaptivePredictor,
)
from repro.runtime.builder import build_system


class TestPaperPredictor:
    def test_continues_after_useful_round(self):
        assert PaperPredictor().should_continue(delivered=True, now=0.0)

    def test_stops_after_empty_round(self):
        assert not PaperPredictor().should_continue(delivered=False, now=0.0)


class TestLingerPredictor:
    def test_tolerates_streak_up_to_limit(self):
        p = LingerPredictor(linger_rounds=2)
        assert p.should_continue(False, 0.0)   # streak 1
        assert p.should_continue(False, 1.0)   # streak 2
        assert not p.should_continue(False, 2.0)  # streak 3: stop

    def test_useful_round_resets_streak(self):
        p = LingerPredictor(linger_rounds=1)
        assert p.should_continue(False, 0.0)
        assert p.should_continue(True, 1.0)
        assert p.should_continue(False, 2.0)  # streak restarted

    def test_zero_linger_equals_paper_rule(self):
        p = LingerPredictor(linger_rounds=0)
        assert p.should_continue(True, 0.0)
        assert not p.should_continue(False, 1.0)

    def test_negative_linger_rejected(self):
        with pytest.raises(ValueError):
            LingerPredictor(linger_rounds=-1)


class TestRateAdaptivePredictor:
    def test_no_history_falls_back_to_paper_rule(self):
        p = RateAdaptivePredictor()
        assert not p.should_continue(False, 10.0)
        assert p.should_continue(True, 10.0)

    def test_keeps_running_while_next_message_due(self):
        p = RateAdaptivePredictor(patience=3.0)
        for t in (0.0, 10.0, 20.0):   # steady 10-unit gaps
            p.observe_cast(t)
        # 25 units after the last cast is within 3 * 10 = 30.
        assert p.should_continue(False, 45.0)
        # 35 units after is beyond patience.
        assert not p.should_continue(False, 56.0)

    def test_ewma_adapts_to_faster_traffic(self):
        p = RateAdaptivePredictor(patience=2.0, alpha=1.0)  # newest wins
        p.observe_cast(0.0)
        p.observe_cast(100.0)   # gap estimate: 100
        assert p.should_continue(False, 250.0)
        p.observe_cast(251.0)
        p.observe_cast(252.0)   # gap estimate: 1
        assert not p.should_continue(False, 260.0)

    def test_max_gap_caps_the_estimate(self):
        p = RateAdaptivePredictor(patience=1.0, alpha=1.0, max_gap=5.0)
        p.observe_cast(0.0)
        p.observe_cast(1000.0)  # raw gap 1000, capped to 5
        assert not p.should_continue(False, 1010.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RateAdaptivePredictor(patience=0.0)
        with pytest.raises(ValueError):
            RateAdaptivePredictor(alpha=0.0)
        with pytest.raises(ValueError):
            RateAdaptivePredictor(alpha=1.5)


class TestPredictorIntegration:
    def test_linger_extends_rounds_but_still_quiesces(self):
        """Bounded lingering preserves Proposition A.9."""
        system = build_system(
            protocol="a2", group_sizes=[2, 2], seed=1,
            predictor_factory=lambda: LingerPredictor(linger_rounds=4),
        )
        system.cast(sender=0)
        system.run_quiescent(max_events=500_000)  # must drain
        endpoint = system.endpoints[0]
        # 1 useful round + 4 lingered empty rounds + the final empty
        # round that triggered the stop decision chain.
        assert endpoint.useful_rounds == 1
        assert endpoint.rounds_executed >= 5

    def test_paper_predictor_is_the_default(self):
        system = build_system(protocol="a2", group_sizes=[2, 2], seed=1)
        system.cast(sender=0)
        system.run_quiescent()
        endpoint = system.endpoints[0]
        assert endpoint.rounds_executed == 2  # useful + one empty

    def test_wakeups_counted_for_cold_casts(self):
        system = build_system(protocol="a2", group_sizes=[2, 2], seed=1)
        system.cast(sender=0)
        system.cast_at(100.0, 0)   # after quiescence: one wakeup
        system.run_quiescent()
        caster_group_wakeups = sum(
            system.endpoints[p].wakeups for p in (0, 1))
        assert caster_group_wakeups >= 2  # both cold casts woke group 0

    def test_per_process_predictor_instances(self):
        """The factory must produce one predictor per endpoint."""
        system = build_system(
            protocol="a2", group_sizes=[2, 2], seed=1,
            predictor_factory=lambda: LingerPredictor(linger_rounds=1),
        )
        predictors = {id(ep.predictor) for ep in system.endpoints.values()}
        assert len(predictors) == 4
