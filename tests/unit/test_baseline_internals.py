"""White-box tests of the baseline protocols' distinctive mechanisms."""

import pytest

from repro.net.topology import Fixed, LatencyModel
from repro.runtime.builder import build_system


def _slow_inter():
    return LatencyModel(intra=Fixed(0.01), inter=Fixed(10.0))


class TestSkeenInternals:
    def test_clock_advances_past_finals(self):
        """Skeen's clock absorbs final timestamps, so later proposals
        can never undercut a delivered message."""
        system = build_system(protocol="skeen", group_sizes=[2, 2], seed=1)
        system.cast(sender=0, dest_groups=(0, 1))
        system.run_quiescent()
        endpoint = system.endpoints[0]
        assert endpoint.clock >= 1
        assert endpoint.entries == {}  # everything finalised + delivered

    def test_pending_entry_blocks_delivery(self):
        """A known-but-unfinalised message gates later-finalised ones."""
        system = build_system(protocol="skeen", group_sizes=[2, 2], seed=1,
                              latency=_slow_inter())
        slow = system.cast(sender=0, dest_groups=(0, 1))
        fast = system.cast_at(0.5, 0, (0,))
        # The single-group message finalises quickly but both are held
        # to (final ts, id) order at every shared destination.
        system.run_quiescent()
        assert set(system.log.sequence(0)) == {slow.mid, fast.mid}

    def test_proposal_before_data_is_buffered(self):
        """Proposals may outrun the data copy; the stub must upgrade."""
        system = build_system(
            protocol="skeen", group_sizes=[2, 2], seed=1,
            # Inter-group faster than intra: remote proposals arrive
            # before the local data copy.
            latency=LatencyModel(intra=Fixed(5.0), inter=Fixed(0.1)),
        )
        msg = system.cast(sender=0, dest_groups=(0, 1))
        system.run_quiescent()
        for pid in range(4):
            assert system.log.sequence(pid) == [msg.mid]


class TestRingInternals:
    def test_floor_rises_with_finals(self):
        system = build_system(protocol="ring", group_sizes=[2, 2], seed=1)
        system.cast(sender=0, dest_groups=(0, 1))
        system.run_quiescent()
        for pid in range(4):
            assert system.endpoints[pid].floor >= 1

    def test_group_blocks_while_message_in_flight(self):
        """One ring message at a time per group (the paper's 'waits for
        a final acknowledgment')."""
        system = build_system(protocol="ring", group_sizes=[2, 2], seed=1,
                              latency=_slow_inter())
        first = system.cast(sender=0, dest_groups=(0, 1))
        second = system.cast_at(0.5, 1, (0, 1))
        system.run(until=5.0)   # first handed off, final not yet back
        endpoint = system.endpoints[0]
        assert endpoint.current == first.mid
        assert second.mid in endpoint.pending  # queued, not handled
        system.run_quiescent()
        assert endpoint.current is None
        assert set(system.log.sequence(0)) == {first.mid, second.mid}

    def test_last_group_finalises_locally(self):
        """The final group never blocks (it needs no acknowledgment)."""
        system = build_system(protocol="ring", group_sizes=[2, 2], seed=1,
                              latency=_slow_inter())
        system.cast(sender=0, dest_groups=(0, 1))
        system.run(until=15.0)  # handoff arrived at group 1, decided
        assert system.endpoints[2].current is None

    def test_handoff_timestamps_monotone_along_ring(self):
        """Each hop assigns max(incoming, K, floor): never decreases."""
        system = build_system(protocol="ring", group_sizes=[2, 2, 2],
                              seed=2)
        for i in range(3):
            system.cast_at(float(i), 0, (0, 1, 2))
        system.run_quiescent()
        # Delivery order identical at every process of every group.
        seqs = {tuple(system.log.sequence(p)) for p in range(6)}
        assert len(seqs) == 1


class TestSequencerInternals:
    def test_noop_slots_fill_gaps(self):
        """A sequencer with no traffic announces empty slots on demand
        so the deterministic merge can pass its rank."""
        system = build_system(protocol="sequencer", group_sizes=[2, 2],
                              seed=1)
        msg = system.cast(sender=1)  # only group 0's sequencer emits
        system.run_quiescent()
        # Group 1's sequencer (pid 2) must have announced a no-op for
        # index 0, or nobody would have delivered.
        assert 0 in system.endpoints[2]._announced_noop
        for pid in range(4):
            assert system.log.sequence(pid) == [msg.mid]

    def test_majority_ack_required_before_final(self):
        system = build_system(protocol="sequencer", group_sizes=[2, 2],
                              seed=1)
        msg = system.cast(sender=1)
        system.run_quiescent()
        endpoint = system.endpoints[3]
        assert len(endpoint._acks.get(msg.mid, ())) >= 3  # majority of 4

    def test_slots_consumed_in_rank_order(self):
        system = build_system(protocol="sequencer", group_sizes=[2, 2],
                              seed=2)
        a = system.cast_at(0.0, 1)
        b = system.cast_at(0.0, 3)
        system.run_quiescent()
        seqs = {tuple(system.log.sequence(p)) for p in range(4)}
        assert len(seqs) == 1  # one merge order everywhere


class TestOptimisticInternals:
    def test_optimistic_order_may_diverge_final_never(self):
        """The point of [12]: spontaneous order is only a guess."""
        system = build_system(
            protocol="optimistic", group_sizes=[2, 2], seed=3,
            # Heavy jitter maximises spontaneous-order mistakes.
            latency=LatencyModel(intra=Fixed(0.5), inter=Fixed(10.0)),
        )
        a = system.cast_at(0.0, 1)
        b = system.cast_at(0.05, 3)
        system.run_quiescent()
        final_orders = {tuple(system.log.sequence(p)) for p in range(4)}
        assert len(final_orders) == 1
        optimistic_orders = {
            tuple(system.endpoints[p].optimistic_deliveries)
            for p in range(4)
        }
        # Senders sit in different groups: each group sees its own
        # message first, so the optimistic guesses genuinely diverge.
        assert len(optimistic_orders) > 1

    def test_sequencer_gap_stalls_final_delivery_until_filled(self):
        system = build_system(protocol="optimistic", group_sizes=[2, 2],
                              seed=1)
        msgs = [system.cast_at(0.1 * i, (1, 2, 3)[i % 3]) for i in range(5)]
        system.run_quiescent()
        for pid in range(4):
            assert len(system.log.sequence(pid)) == 5


class TestDetmergeInternals:
    def test_slot_cursor_walks_every_publisher(self):
        system = build_system(protocol="detmerge", group_sizes=[2, 2],
                              seed=1)
        system.cast(sender=0)
        system.run_quiescent()
        endpoint = system.endpoints[3]
        index, rank = endpoint._cursor
        assert index >= 1  # passed at least the slot round carrying m

    def test_outbox_drains_into_next_slot(self):
        system = build_system(protocol="detmerge", group_sizes=[2, 2],
                              seed=1)
        a = system.cast(sender=0)
        b = system.cast(sender=0)  # same tick window -> same slot
        system.run_quiescent()
        seq = system.log.sequence(2)
        assert set(seq) == {a.mid, b.mid}
        assert system.endpoints[0]._outbox == []

    def test_quiescent_after_traffic_stops(self):
        system = build_system(protocol="detmerge", group_sizes=[2, 2],
                              seed=1)
        system.cast(sender=1)
        end = system.run_quiescent(max_events=200_000)
        assert end < 100.0  # no unbounded slot streaming
