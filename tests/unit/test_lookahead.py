"""Lookahead derivation for the conservative parallel kernel.

The parallel kernel's epoch width is ``LatencyModel.min_inter_group()``
— the smallest delay any inter-group link can ever produce.  These
tests pin the derivation across fixed, heterogeneous (pairwise
override) and WAN (jittered) models, plus the fail-fast contract: a
non-positive or missing bound must raise ``ValueError`` rather than
hand the synchronizer a zero-width window it can never advance through.
"""

import pytest

from repro.campaigns.spec import LatencySpec
from repro.net.topology import Fixed, Jittered, LatencyModel, Uniform


class TestMinInterGroup:
    def test_fixed_model_uses_inter_value(self):
        model = LatencyModel(intra=Fixed(0.001), inter=Fixed(1.0))
        assert model.min_inter_group() == 1.0

    def test_intra_latency_does_not_constrain_lookahead(self):
        # Intra-group messages never cross a sub-kernel boundary, so a
        # tiny intra delay must not shrink the window.
        model = LatencyModel(intra=Fixed(1e-6), inter=Fixed(5.0))
        assert model.min_inter_group() == 5.0

    def test_heterogeneous_pairwise_overrides_take_the_min(self):
        model = LatencyModel(
            intra=Fixed(0.001), inter=Fixed(10.0),
            pairwise_inter={(0, 1): Fixed(3.0), (1, 0): Fixed(7.0)})
        assert model.min_inter_group() == 3.0

    def test_wan_jittered_bound_is_the_base(self):
        # Exponential jitter has support [0, inf); the floor is the base.
        model = LatencyModel.wan(inter_ms=100.0, inter_jitter_ms=5.0)
        assert model.min_inter_group() == 100.0

    def test_uniform_bound_is_lo(self):
        model = LatencyModel(intra=Fixed(0.001), inter=Uniform(2.0, 9.0))
        assert model.min_inter_group() == 2.0

    def test_zero_bound_raises(self):
        model = LatencyModel(intra=Fixed(0.001), inter=Fixed(0.0))
        with pytest.raises(ValueError, match="strictly positive"):
            model.min_inter_group()

    def test_zero_pairwise_bound_raises(self):
        # One degenerate link poisons the whole window.
        model = LatencyModel(
            intra=Fixed(0.001), inter=Fixed(1.0),
            pairwise_inter={(2, 0): Jittered(0.0, 5.0)})
        with pytest.raises(ValueError, match="strictly positive"):
            model.min_inter_group()

    def test_missing_inter_distribution_raises(self):
        model = LatencyModel(intra=Fixed(0.001), inter=None)
        with pytest.raises(ValueError, match="no inter-group"):
            model.min_inter_group()


class TestAllFixed:
    def test_logical_model_is_all_fixed(self):
        assert LatencyModel.logical().all_fixed()

    def test_wan_model_is_not_all_fixed(self):
        assert not LatencyModel.wan().all_fixed()

    def test_one_sampled_pairwise_link_breaks_all_fixed(self):
        model = LatencyModel(
            intra=Fixed(0.001), inter=Fixed(1.0),
            pairwise_inter={(0, 1): Uniform(1.0, 2.0)})
        assert not model.all_fixed()


class TestLatencySpecHelper:
    def test_logical_spec_lookahead(self):
        assert LatencySpec(kind="logical").min_inter_group() == 1.0

    def test_wan_spec_lookahead_is_base(self):
        spec = LatencySpec(kind="wan", inter_ms=80.0, inter_jitter_ms=4.0)
        assert spec.min_inter_group() == 80.0
