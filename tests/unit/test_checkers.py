"""Unit tests for the property checkers (they must catch violations)."""

import pytest

from repro.checkers.genuineness import (
    GenuinenessViolation,
    allowed_participants,
    check_genuineness,
)
from repro.checkers.properties import (
    PropertyViolation,
    check_all,
    check_uniform_agreement,
    check_uniform_integrity,
    check_uniform_prefix_order,
    check_validity,
)
from repro.checkers.quiescence import QuiescenceViolation, check_quiescence
from repro.core.interfaces import AppMessage
from repro.failure.schedule import CrashSchedule
from repro.net.message import Message
from repro.net.topology import Topology
from repro.net.trace import MessageTrace
from repro.runtime.results import DeliveryLog
from repro.sim.kernel import Simulator


def _msg(mid, sender=0, dest=(0, 1)):
    return AppMessage(mid=mid, sender=sender, dest_groups=dest)


def _log_with(casts, deliveries):
    """Build a DeliveryLog from {mid: msg} and {pid: [mid, ...]}."""
    log = DeliveryLog()
    for msg in casts.values():
        log.record_cast(msg)
    for pid, mids in deliveries.items():
        for mid in mids:
            log.record_delivery(pid, casts[mid])
    return log


TOPO = Topology([2, 2])


class TestUniformIntegrity:
    def test_clean_run_passes(self):
        casts = {"a": _msg("a")}
        log = _log_with(casts, {0: ["a"], 2: ["a"]})
        check_uniform_integrity(log, TOPO)

    def test_duplicate_delivery_caught(self):
        casts = {"a": _msg("a")}
        log = _log_with(casts, {0: ["a", "a"]})
        with pytest.raises(PropertyViolation, match="more than once"):
            check_uniform_integrity(log, TOPO)

    def test_phantom_message_caught(self):
        casts = {"a": _msg("a")}
        log = DeliveryLog()
        log.record_cast(casts["a"])
        log.record_delivery(0, _msg("ghost"))
        with pytest.raises(PropertyViolation, match="never cast"):
            check_uniform_integrity(log, TOPO)

    def test_non_addressee_delivery_caught(self):
        casts = {"a": _msg("a", dest=(0,))}
        log = _log_with(casts, {2: ["a"]})  # pid 2 is in group 1
        with pytest.raises(PropertyViolation, match="addressed to"):
            check_uniform_integrity(log, TOPO)


class TestValidity:
    def test_correct_caster_all_deliver_passes(self):
        casts = {"a": _msg("a")}
        log = _log_with(casts, {0: ["a"], 1: ["a"], 2: ["a"], 3: ["a"]})
        check_validity(log, TOPO, CrashSchedule.none())

    def test_missing_correct_addressee_caught(self):
        casts = {"a": _msg("a")}
        log = _log_with(casts, {0: ["a"], 1: ["a"], 2: ["a"]})
        with pytest.raises(PropertyViolation, match="never delivered"):
            check_validity(log, TOPO, CrashSchedule.none())

    def test_faulty_caster_excused(self):
        """Validity only binds correct casters."""
        casts = {"a": _msg("a", sender=0)}
        log = _log_with(casts, {})  # nobody delivered
        check_validity(log, TOPO, CrashSchedule({0: 1.0}))

    def test_faulty_addressee_excused(self):
        casts = {"a": _msg("a")}
        log = _log_with(casts, {0: ["a"], 1: ["a"], 2: ["a"]})
        check_validity(log, TOPO, CrashSchedule({3: 1.0}))


class TestUniformAgreement:
    def test_no_delivery_at_all_is_fine(self):
        """Agreement binds only once someone delivers."""
        casts = {"a": _msg("a", sender=0)}
        log = _log_with(casts, {})
        check_uniform_agreement(log, TOPO, CrashSchedule({0: 1.0}))

    def test_partial_delivery_caught(self):
        """Even a faulty process's delivery obligates everyone."""
        casts = {"a": _msg("a")}
        log = _log_with(casts, {0: ["a"]})
        with pytest.raises(PropertyViolation):
            check_uniform_agreement(log, TOPO, CrashSchedule.none())


class TestUniformPrefixOrder:
    def test_identical_orders_pass(self):
        casts = {"a": _msg("a"), "b": _msg("b")}
        log = _log_with(casts, {0: ["a", "b"], 2: ["a", "b"]})
        check_uniform_prefix_order(log, TOPO)

    def test_true_prefix_passes(self):
        casts = {"a": _msg("a"), "b": _msg("b")}
        log = _log_with(casts, {0: ["a", "b"], 2: ["a"]})
        check_uniform_prefix_order(log, TOPO)

    def test_divergent_orders_caught(self):
        casts = {"a": _msg("a"), "b": _msg("b")}
        log = _log_with(casts, {0: ["a", "b"], 2: ["b", "a"]})
        with pytest.raises(PropertyViolation, match="prefix order"):
            check_uniform_prefix_order(log, TOPO)

    def test_projection_ignores_disjoint_messages(self):
        """Messages not addressed to both processes don't constrain."""
        casts = {
            "a": _msg("a", dest=(0,)),
            "b": _msg("b", dest=(1,)),
            "c": _msg("c", dest=(0, 1)),
        }
        # p0 delivers a then c; p2 delivers b then c — projected on the
        # pair, both sequences are just [c].
        log = _log_with(casts, {0: ["a", "c"], 2: ["b", "c"]})
        check_uniform_prefix_order(log, TOPO)

    def test_check_all_runs_every_property(self):
        casts = {"a": _msg("a")}
        log = _log_with(casts, {0: ["a"], 1: ["a"], 2: ["a"], 3: ["a"]})
        check_all(log, TOPO)


class TestGenuineness:
    def _trace_with_participants(self, pairs):
        trace = MessageTrace(enabled=True)
        for src, dst in pairs:
            msg = Message(src=src, dst=dst, kind="x", payload={})
            trace.on_send(0.0, msg)
            trace.on_deliver(0.0, msg)
        return trace

    def test_allowed_participants(self):
        casts = {"a": _msg("a", sender=3, dest=(0,))}
        log = _log_with(casts, {})
        assert allowed_participants(log, TOPO) == {0, 1, 3}

    def test_clean_trace_passes(self):
        casts = {"a": _msg("a", sender=0, dest=(0,))}
        log = _log_with(casts, {})
        trace = self._trace_with_participants([(0, 1)])
        check_genuineness(trace, log, TOPO)

    def test_outsider_caught(self):
        casts = {"a": _msg("a", sender=0, dest=(0,))}
        log = _log_with(casts, {})
        trace = self._trace_with_participants([(0, 1), (2, 3)])
        with pytest.raises(GenuinenessViolation):
            check_genuineness(trace, log, TOPO)

    def test_disabled_trace_rejected(self):
        casts = {"a": _msg("a")}
        log = _log_with(casts, {})
        with pytest.raises(ValueError, match="trace=True"):
            check_genuineness(MessageTrace(enabled=False), log, TOPO)


class TestQuiescence:
    def test_draining_queue_passes(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        report = check_quiescence(sim)
        assert report.quiescent
        assert report.drained_at == 1.0

    def test_livelock_caught(self):
        sim = Simulator()

        def tick():
            sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        with pytest.raises(QuiescenceViolation):
            check_quiescence(sim, max_events=50)

    def test_reports_last_send_time(self):
        sim = Simulator()
        trace = MessageTrace(enabled=True)
        msg = Message(src=0, dst=1, kind="x", payload={})
        sim.schedule(2.0, lambda: trace.on_send(sim.now, msg))
        report = check_quiescence(sim, trace)
        assert report.last_send_at == 2.0
