"""Unit and integration tests for the phase profiler."""

import time

import pytest

from repro.runtime.builder import build_system
from repro.runtime.profiler import PhaseProfiler, classify_kind
from repro.runtime.report import RunReport
from repro.workload.generators import (
    poisson_workload,
    schedule_workload,
    uniform_k_groups,
)


class TestClassifyKind:
    def test_failure_detector_namespace(self):
        assert classify_kind("fd.hb") == "failure_detection"

    def test_nested_consensus_namespace(self):
        assert classify_kind("amc.cons.propose") == "consensus"
        assert classify_kind("cons.accept") == "consensus"

    def test_protocol_fallback(self):
        assert classify_kind("amc.ts") == "protocol"
        assert classify_kind("amc.rmc.data") == "protocol"
        assert classify_kind("seq.order") == "protocol"


class TestPhaseProfilerMechanics:
    def test_exclusive_nesting(self):
        profiler = PhaseProfiler()
        profiler.push("kernel")
        time.sleep(0.01)
        profiler.push("network")
        time.sleep(0.01)
        profiler.pop()
        time.sleep(0.01)
        profiler.pop()
        timings = profiler.timings()
        assert set(timings) == {"kernel", "network"}
        assert timings["kernel"] >= 0.015     # the two outer sleeps
        assert timings["network"] >= 0.008    # only the inner sleep
        assert timings["network"] < timings["kernel"]

    def test_total_spans_outermost_window(self):
        profiler = PhaseProfiler()
        t0 = time.perf_counter()
        profiler.push("kernel")
        profiler.push("network")
        profiler.push("consensus")
        time.sleep(0.005)
        profiler.pop()
        profiler.pop()
        profiler.pop()
        window = time.perf_counter() - t0
        # Exclusive times sum to (at most) the outer window; additivity
        # is the invariant the CI smoke asserts.
        assert profiler.total() == pytest.approx(window, rel=0.5)
        assert profiler.total() <= window

    def test_repeated_phases_accumulate(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            profiler.push("checkers")
            profiler.pop()
        assert list(profiler.timings()) == ["checkers"]

    def test_phase_context_manager_pops_on_error(self):
        profiler = PhaseProfiler()
        with pytest.raises(RuntimeError):
            with profiler.phase("checkers"):
                raise RuntimeError("boom")
        assert profiler._stack == []

    def test_canonical_ordering(self):
        profiler = PhaseProfiler()
        for phase in ("workload", "consensus", "kernel", "zebra"):
            profiler.push(phase)
            profiler.pop()
        assert list(profiler.timings()) == [
            "kernel", "consensus", "workload", "zebra"]

    def test_fraction(self):
        profiler = PhaseProfiler()
        assert profiler.fraction("kernel") is None
        profiler.push("kernel")
        time.sleep(0.002)
        profiler.pop()
        assert profiler.fraction("kernel") == pytest.approx(1.0)

    def test_render_has_total_row(self):
        profiler = PhaseProfiler()
        profiler.push("kernel")
        profiler.pop()
        assert "total" in profiler.render()

    def test_sync_is_a_canonical_phase(self):
        # The parallel kernel charges barrier/coordination time to
        # "sync"; it must render in canonical order, not as a stray.
        profiler = PhaseProfiler()
        for phase in ("zebra", "sync", "kernel"):
            profiler.push(phase)
            profiler.pop()
        assert list(profiler.timings()) == ["kernel", "sync", "zebra"]

    def test_absorb_merges_subkernel_timings_additively(self):
        """Per-sub-kernel timings folded into the host profiler must sum
        exactly — merging across sub-kernels cannot invent or lose time."""
        host = PhaseProfiler()
        host.push("sync")
        time.sleep(0.002)
        host.pop()
        sync_before = host.timings()["sync"]

        workers = []
        for _ in range(3):
            worker = PhaseProfiler()
            worker.push("kernel")
            time.sleep(0.002)
            worker.push("network")
            time.sleep(0.001)
            worker.pop()
            worker.pop()
            workers.append(worker.timings())

        for timings in workers:
            host.absorb(timings)

        merged = host.timings()
        for phase in ("kernel", "network"):
            expected = sum(t[phase] for t in workers)
            assert merged[phase] == pytest.approx(expected, abs=1e-12)
        # Absorbing worker time must not disturb host-side phases.
        assert merged["sync"] == sync_before
        assert sum(merged.values()) == pytest.approx(
            sync_before + sum(sum(t.values()) for t in workers), abs=1e-12)


class TestProfiledSystem:
    def _run(self, **kwargs):
        system = build_system(protocol="a1", group_sizes=[2, 2],
                              seed=3, profile=True, **kwargs)
        plans = poisson_workload(
            system.topology, system.rng.stream("wl"),
            rate=3.0, duration=10.0, destinations=uniform_k_groups(2),
        )
        schedule_workload(system, plans)
        system.run_quiescent()
        return system

    def test_phases_present_and_additive(self):
        system = self._run()
        timings = RunReport(system).phase_timings()
        assert {"kernel", "network", "protocol", "consensus",
                "workload"} <= set(timings)
        assert all(seconds >= 0.0 for seconds in timings.values())
        assert sum(timings.values()) > 0.0

    def test_heartbeat_run_attributes_failure_detection(self):
        system = self._run(detector="heartbeat", heartbeat_period=2.0,
                           heartbeat_timeout=10.0, heartbeat_horizon=40.0)
        timings = RunReport(system).phase_timings()
        assert timings.get("failure_detection", 0.0) > 0.0

    def test_unprofiled_system_reports_empty(self):
        system = build_system(protocol="a1", group_sizes=[2, 2], seed=3)
        assert RunReport(system).phase_timings() == {}
        assert system.profiler is None

    def test_render_includes_phase_table(self):
        system = self._run()
        assert "Phase timings" in RunReport(system).render()

    def test_checkers_phase_via_context_manager(self):
        from repro.checkers.properties import check_all

        system = self._run()
        with system.profiler.phase("checkers"):
            check_all(system.log, system.topology, system.crashes)
        assert RunReport(system).phase_timings()["checkers"] > 0.0
