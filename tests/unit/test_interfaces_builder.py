"""Unit tests for AppMessage, the protocol registry and the builder."""

import pytest

from repro.core.interfaces import AppMessage
from repro.failure.schedule import CrashSchedule
from repro.net.topology import Topology
from repro.runtime.builder import PROTOCOLS, build_system


class TestAppMessage:
    def test_dest_groups_normalised(self):
        msg = AppMessage(mid="m", sender=0, dest_groups=(2, 0, 2))
        assert msg.dest_groups == (0, 2)

    def test_wire_roundtrip(self):
        msg = AppMessage(mid="m", sender=3, dest_groups=(1, 2),
                         payload=("x", 1))
        assert AppMessage.from_wire(msg.to_wire()) == msg

    def test_fresh_ids_unique_and_ordered(self):
        a = AppMessage.fresh(sender=0, dest_groups=(0,))
        b = AppMessage.fresh(sender=0, dest_groups=(0,))
        assert a.mid != b.mid
        assert a.mid < b.mid  # zero-padded counter keeps ids sortable

    def test_fresh_respects_explicit_mid(self):
        msg = AppMessage.fresh(sender=0, dest_groups=(0,), mid="custom")
        assert msg.mid == "custom"

    def test_messages_are_hashable_and_orderable(self):
        a = AppMessage(mid="a", sender=0, dest_groups=(0,))
        b = AppMessage(mid="b", sender=0, dest_groups=(0,))
        assert len({a, b}) == 2
        assert a < b


class TestProtocolRegistry:
    def test_all_protocols_constructible(self):
        for name in PROTOCOLS:
            system = build_system(protocol=name, group_sizes=[2, 2],
                                  seed=1)
            assert len(system.endpoints) == 4

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            build_system(protocol="nope", group_sizes=[2, 2])

    def test_unknown_detector_rejected(self):
        with pytest.raises(ValueError, match="unknown detector"):
            build_system(protocol="a1", group_sizes=[2, 2],
                         detector="psychic")

    def test_eventually_perfect_detector_option(self):
        system = build_system(protocol="a1", group_sizes=[2, 2], seed=1,
                              detector="eventually-perfect",
                              stabilise_at=5.0)
        msg = system.cast(sender=0, dest_groups=(0, 1))
        system.run_quiescent()
        for pid in range(4):
            assert system.log.sequence(pid) == [msg.mid]


class TestSystemCasting:
    def test_default_destinations_are_all_groups(self):
        system = build_system(protocol="a2", group_sizes=[2, 2], seed=1)
        msg = system.cast(sender=0)
        assert msg.dest_groups == (0, 1)

    def test_broadcast_protocol_rejects_partial_destinations(self):
        system = build_system(protocol="sequencer", group_sizes=[2, 2],
                              seed=1)
        with pytest.raises(ValueError, match="broadcast protocol"):
            system.cast(sender=0, dest_groups=(0,))

    def test_cast_at_rejects_partial_destinations_for_broadcast(self):
        """cast_at applies the same validation as cast, at scheduling
        time — a partial destination set must not silently reach
        a_bcast when the event fires."""
        system = build_system(protocol="sequencer", group_sizes=[2, 2],
                              seed=1)
        with pytest.raises(ValueError, match="broadcast protocol"):
            system.cast_at(1.0, 0, dest_groups=(0,))
        system.run_quiescent()
        assert system.log.cast_messages() == {}

    def test_cast_at_accepts_full_destinations_for_broadcast(self):
        system = build_system(protocol="sequencer", group_sizes=[2, 2],
                              seed=1)
        msg = system.cast_at(1.0, 0, dest_groups=(0, 1))
        system.run_quiescent()
        assert msg.mid in system.log.cast_messages()

    def test_cast_at_meters_at_fire_time(self):
        system = build_system(protocol="a1", group_sizes=[2, 2], seed=1)
        msg = system.cast_at(5.0, 0, (0, 1))
        assert system.meter.record_for(msg.mid) is None  # not yet cast
        system.run_quiescent()
        assert system.meter.record_for(msg.mid).cast_time == 5.0

    def test_crash_schedule_validated_at_build(self):
        with pytest.raises(ValueError, match="majority"):
            build_system(protocol="a1", group_sizes=[2, 2],
                         crashes=CrashSchedule({0: 1.0}))

    def test_seed_reproducibility(self):
        def run(seed):
            system = build_system(protocol="a1", group_sizes=[3, 3],
                                  seed=seed)
            for i in range(4):
                # Explicit mids: the auto-id counter is process-global,
                # so it would differ between repetitions.
                system.cast_at(float(i), i % 6, (0, 1), mid=f"m{i}")
            system.run_quiescent()
            return (tuple(system.log.sequence(0)),
                    system.inter_group_messages,
                    system.sim.now)

        assert run(9) == run(9)
        # (With the logical latency model all distributions are fixed,
        # so different seeds may legitimately coincide; determinism per
        # seed is the property that matters.)

    def test_stats_shortcuts(self):
        system = build_system(protocol="a1", group_sizes=[2, 2], seed=1)
        system.cast(sender=0, dest_groups=(0, 1))
        system.run_quiescent()
        assert system.inter_group_messages > 0
        assert system.intra_group_messages > 0
        assert set(system.degrees().values()) == {2}


class TestCrashScheduleUnit:
    def test_validate_requires_correct_member(self):
        topo = Topology([1, 1])
        with pytest.raises(ValueError, match="no correct process"):
            CrashSchedule({0: 1.0}).validate(topo, require_majority=False)

    def test_random_minority_always_valid(self):
        import random

        topo = Topology([3, 5, 4])
        for seed in range(20):
            schedule = CrashSchedule.random_minority(
                topo, random.Random(seed), crash_probability=0.9)
            schedule.validate(topo)

    def test_correct_processes(self):
        topo = Topology([2, 2])
        schedule = CrashSchedule({1: 5.0})
        assert schedule.correct_processes(topo) == [0, 2, 3]
        assert schedule.is_faulty(1)
        assert schedule.crash_time(1) == 5.0
        assert schedule.crash_time(0) is None
