"""White-box tests of Algorithm A1's stage machine.

These reach into the endpoint state (PENDING stages, group clock K,
timestamp proposals) to pin the pseudocode line by line — complementary
to the black-box integration suite.
"""

import pytest

from repro.core.interfaces import (
    STAGE_S0,
    STAGE_S1,
    STAGE_S2,
    STAGE_S3,
    AppMessage,
)
from repro.net.topology import Fixed, LatencyModel
from repro.runtime.builder import build_system


def _asymmetric_latency():
    """Make group 1 slow so stage transitions are observable mid-run."""
    return LatencyModel(intra=Fixed(0.01), inter=Fixed(10.0))


class TestStageTransitions:
    def test_message_enters_pending_at_s0(self):
        system = build_system(protocol="a1", group_sizes=[2, 2], seed=1,
                              latency=_asymmetric_latency())
        msg = system.cast(sender=0, dest_groups=(0, 1))
        # Before any consensus decision: R-Deliver put it at stage s0.
        system.run(until=0.02)
        endpoint = system.endpoints[0]
        assert endpoint.pending[msg.mid].stage == STAGE_S0

    def test_multi_group_message_reaches_s1_after_consensus(self):
        system = build_system(protocol="a1", group_sizes=[2, 2], seed=1,
                              latency=_asymmetric_latency())
        msg = system.cast(sender=0, dest_groups=(0, 1))
        system.run(until=1.0)  # group 0 decided; TS still in flight
        endpoint = system.endpoints[0]
        assert endpoint.pending[msg.mid].stage == STAGE_S1

    def test_single_group_message_jumps_to_s3(self):
        """Lines 28-29: second consensus not needed."""
        system = build_system(protocol="a1", group_sizes=[2, 2], seed=1,
                              latency=_asymmetric_latency())
        msg = system.cast(sender=0, dest_groups=(0,))
        system.run(until=1.0)
        endpoint = system.endpoints[0]
        # Already delivered — which means it passed through s3.
        assert msg.mid in endpoint.adelivered

    def test_noskip_single_group_message_visits_s2(self):
        system = build_system(protocol="a1-noskip", group_sizes=[2, 2],
                              seed=1, latency=_asymmetric_latency())
        msg = system.cast(sender=0, dest_groups=(0,))
        seen_stages = set()
        endpoint = system.endpoints[0]

        def watch():
            entry = endpoint.pending.get(msg.mid)
            if entry is not None:
                seen_stages.add(entry.stage)
            if msg.mid not in endpoint.adelivered:
                system.sim.schedule(0.005, watch)

        system.sim.schedule(0.005, watch)
        system.run_quiescent()
        assert STAGE_S2 in seen_stages
        assert msg.mid in endpoint.adelivered

    def test_group_clock_jumps_past_decided_timestamps(self):
        """Line 31: K <- max(max ts, K) + 1."""
        system = build_system(protocol="a1", group_sizes=[2, 2], seed=1)
        system.cast(sender=0, dest_groups=(0, 1))
        system.run_quiescent()
        for pid in range(4):
            assert system.endpoints[pid].k >= 2

    def test_group_clocks_agree_within_group(self):
        """Lemma A.1: members' K sequences are prefix-related; at
        quiescence they are equal."""
        system = build_system(protocol="a1", group_sizes=[3, 3], seed=2)
        for i in range(5):
            system.cast(sender=i % 6, dest_groups=(0, 1))
        system.run_quiescent()
        for gid in (0, 1):
            ks = {system.endpoints[p].k
                  for p in system.topology.members(gid)}
            assert len(ks) == 1


class TestTimestampExchange:
    def test_ts_proposals_buffered_before_stage_s1(self):
        """A TS message may arrive before the local consensus decided
        (the guard of line 33 must not lose it)."""
        # Group 1 is made slow at consensus by crashing nobody but
        # letting group 0's TS arrive instantly relative to group 1's
        # intra steps: use inter latency below intra latency.
        system = build_system(
            protocol="a1", group_sizes=[2, 2], seed=1,
            latency=LatencyModel(intra=Fixed(5.0), inter=Fixed(0.1)),
        )
        msg = system.cast(sender=0, dest_groups=(0, 1))
        system.run_quiescent()
        # Despite the inverted timing, everything delivered consistently.
        for pid in range(4):
            assert system.log.sequence(pid) == [msg.mid]

    def test_final_timestamp_is_max_of_proposals(self):
        """Stage s1 -> s3/s2 picks the maximum group proposal."""
        system = build_system(protocol="a1", group_sizes=[2, 2], seed=3)
        # Pre-load group 1's clock with local traffic so its proposal
        # for the probe message is higher than group 0's.
        for _ in range(4):
            system.cast(sender=2, dest_groups=(1,))
        probe = system.cast_at(0.5, 0, (0, 1))
        system.run_quiescent()
        rec = system.meter.record_for(probe.mid)
        assert rec.latency_degree == 2
        # All processes delivered it (same final timestamp everywhere —
        # otherwise prefix order would have tripped in other tests).
        assert len(rec.delivery_lamport) == 4

    def test_ts_message_introduces_unknown_message(self):
        """Footnote 4: a (TS, m) from another group must create the
        pending entry if the R-MCast copy is still missing."""
        system = build_system(protocol="a1", group_sizes=[2, 2], seed=1,
                              trace=True)
        # Drop the caster's direct copies into group 1; the TS message
        # from group 0 is then group 1's only way to learn about m.
        system.network.add_delivery_filter(
            lambda m: not (m.kind == "amc.rmc.data" and m.src == 0
                           and m.dst >= 2))
        # The lazy rmcast relay would also recover m eventually; crash
        # the caster so the relay logic (suspicion-driven) kicks in too,
        # but the TS path is faster.
        msg = system.cast(sender=0, dest_groups=(0, 1))
        system.sim.call_at(0.5, system.network.process(0).crash)
        system.run_quiescent()
        for pid in (1, 2, 3):
            assert system.log.sequence(pid) == [msg.mid]


class TestDeliveryRule:
    def test_smaller_timestamp_blocks_larger(self):
        """Line 4: a pending message with a smaller (ts, id) gates
        delivery even if a later message reached s3 first."""
        system = build_system(
            protocol="a1", group_sizes=[2, 2, 2], seed=4,
            latency=LatencyModel(intra=Fixed(0.01), inter=Fixed(10.0)),
        )
        slow = system.cast(sender=0, dest_groups=(0, 2))   # 10ms hops
        fast = system.cast(sender=0, dest_groups=(0,))     # local
        system.run_quiescent()
        seq = system.log.sequence(0)
        assert set(seq) == {slow.mid, fast.mid}
        # Whatever the order, both groups see consistent projections —
        # and the sequencing respected (ts, id), checked indirectly by
        # the prefix checker used across the suite.

    def test_tie_broken_by_message_id(self):
        """(ts, id) ordering: equal timestamps fall back to ids.

        Ties cannot be provoked from the public API with a single
        proposer, so this drives the delivery test directly: two s3
        entries with the same timestamp must come out in id order.
        """
        from repro.core.amcast import _Pending

        system = build_system(protocol="a1", group_sizes=[1], seed=5)
        endpoint = system.endpoints[0]
        za = AppMessage(mid="zz-later", sender=0, dest_groups=(0,))
        aa = AppMessage(mid="aa-early", sender=0, dest_groups=(0,))
        system.log.record_cast(za)
        system.log.record_cast(aa)
        endpoint.pending["zz-later"] = _Pending(msg=za, ts=7,
                                                stage=STAGE_S3)
        endpoint.pending["aa-early"] = _Pending(msg=aa, ts=7,
                                                stage=STAGE_S3)
        endpoint._adelivery_test()
        seq = system.log.sequence(0)
        assert seq == ["aa-early", "zz-later"]

    def test_adelivered_set_prevents_reprocessing(self):
        system = build_system(protocol="a1", group_sizes=[2, 2], seed=6)
        msg = system.cast(sender=0, dest_groups=(0, 1))
        system.run_quiescent()
        endpoint = system.endpoints[0]
        assert msg.mid in endpoint.adelivered
        assert msg.mid not in endpoint.pending
        # Replaying the R-Deliver does nothing.
        endpoint._ensure_pending(
            AppMessage(mid=msg.mid, sender=0, dest_groups=(0, 1)))
        assert msg.mid not in endpoint.pending
