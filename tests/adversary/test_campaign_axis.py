"""The ``adversary=`` ScenarioSpec axis through the campaign engine."""

import pytest

from repro.campaigns.library import torture
from repro.campaigns.runner import run_scenario_seed
from repro.campaigns.spec import (
    DestinationSpec,
    ScenarioSpec,
    WorkloadSpec,
    matrix,
)

BASE = ScenarioSpec(
    name="axis",
    protocol="a1",
    group_sizes=(3, 3),
    workload=WorkloadSpec(
        kind="poisson", rate=1.0, duration=12.0,
        destinations=DestinationSpec(kind="uniform-k", k=2),
    ),
    checkers=("properties",),
)


class TestAdversaryAxis:
    def test_matrix_expands_adversary_like_any_axis(self):
        specs = matrix(BASE, {"adversary": ["none", "link-skew"],
                              "protocol": ["a1", "a2"]})
        assert len(specs) == 4
        assert {s.adversary for s in specs} == {"none", "link-skew"}
        assert "adversary=link-skew" in specs[2].name

    def test_runner_applies_named_adversary(self):
        import dataclasses

        spec = dataclasses.replace(BASE, adversary="delay-reorder")
        result = run_scenario_seed(spec, seed=1)
        assert result.ok
        assert result.metrics["faults_injected"] > 0

    def test_benign_scenario_reports_no_fault_metric(self):
        result = run_scenario_seed(BASE, seed=1)
        assert result.ok
        assert "faults_injected" not in result.metrics

    def test_adversary_runs_are_deterministic(self):
        import dataclasses

        spec = dataclasses.replace(BASE, adversary="chaos")
        a = run_scenario_seed(spec, seed=5)
        b = run_scenario_seed(spec, seed=5)
        assert a.metrics == b.metrics

    def test_unknown_adversary_fails_fast(self):
        import dataclasses

        spec = dataclasses.replace(BASE, adversary="gremlins")
        with pytest.raises(ValueError, match="unknown adversary"):
            run_scenario_seed(spec, seed=1)

    def test_describe_includes_adversary(self):
        import dataclasses

        spec = dataclasses.replace(BASE, adversary="phase-crash")
        assert spec.describe()["adversary"] == "phase-crash"


class TestTortureCampaign:
    def test_grid_shape(self):
        campaign = torture(seeds=(1,))
        assert len(campaign.scenarios) == 16
        protocols = {s.protocol for s in campaign.scenarios}
        assert protocols == {"a1", "a1-noskip", "a2", "nongenuine"}
        adversaries = {s.adversary for s in campaign.scenarios}
        assert adversaries == {"link-skew", "delay-reorder",
                               "partition-spike", "phase-crash"}

    def test_smoke_prefix_covers_two_adversaries_and_protocols(self):
        """CI truncates to 4 scenarios; that slice must still span two
        adversaries x two protocols (the axis-order contract)."""
        head = torture(seeds=(1,)).scenarios[:4]
        assert len({s.adversary for s in head}) >= 2
        assert len({s.protocol for s in head}) >= 2

    def test_one_scenario_runs_green_through_campaign_engine(self):
        campaign = torture(seeds=(1,))
        result = run_scenario_seed(campaign.scenarios[0], seed=1)
        assert result.ok
        assert result.metrics["faults_injected"] > 0
