"""Golden-file replay: committed artifacts must reproduce exactly.

Two minimised adversary artifacts are committed under ``golden/``:

* ``broken_fifo_counterexample.json`` — the shrunk counterexample for
  the intentionally broken FIFO-sequencer fixture (one injected fault,
  two singleton groups, a prefix-order violation);
* ``a1_partition_green.json`` — a green A1 run under the
  partition-spike adversary.

Replaying them asserts the engine's full determinism contract across
code changes: same seeds -> same schedule -> same checker verdicts and
same per-process delivery orders, byte for byte.  If a legitimate
engine change alters scheduling (e.g. a new RNG stream consumer on the
hot path), regenerate the artifacts deliberately — see
``tests/adversary/golden/README.md``.
"""

import json
import os

import pytest

from repro.adversary.artifact import SCHEMA, load_artifact, replay_file
from repro.cli import main

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
BROKEN = os.path.join(GOLDEN_DIR, "broken_fifo_counterexample.json")
GREEN = os.path.join(GOLDEN_DIR, "a1_partition_green.json")


@pytest.mark.parametrize("path", [BROKEN, GREEN])
def test_golden_artifacts_have_valid_schema(path):
    data = load_artifact(path)
    assert data["schema"] == SCHEMA
    assert data["expected"]["delivery_orders"]


def test_broken_fifo_counterexample_reproduces():
    result = replay_file(BROKEN)
    assert result.reproduced, result.diffs
    assert result.case.violation is not None
    assert result.case.violation.checker == "properties"
    assert "prefix order" in result.case.violation.message
    # The committed reproducer is minimal: a single injected fault.
    data = json.loads(open(BROKEN).read())
    assert data["expected"]["total_faults"] <= 5
    assert result.case.total_faults == data["expected"]["total_faults"]


def test_green_partition_run_reproduces():
    result = replay_file(GREEN)
    assert result.reproduced, result.diffs
    assert result.case.violation is None
    assert result.case.verdicts == {"properties": "ok"}


def test_cli_replay_verb_on_golden_files(capsys):
    assert main(["replay", BROKEN, GREEN]) == 0
    out = capsys.readouterr().out
    assert out.count("reproduced bit-identically") == 2


def test_cli_replay_rejects_non_artifact(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{}")
    assert main(["replay", str(bogus)]) == 2
    assert "not an adversary artifact" in capsys.readouterr().err
