"""Quasi-reliable invariants hold under every built-in injector.

Seeded property-based tests (plain pytest parametrisation, no
hypothesis dependency): for a grid of (adversary, seed) points the
network trace must show that adversarial perturbation stays inside the
paper's link semantics —

* **no corruption** — every delivered copy is the exact object the
  sender put on the wire;
* **no duplication** — no copy is delivered twice;
* **no invention** — nothing is delivered that was never sent;
* **eventual delivery** — after a quiescent run, every copy addressed
  to a never-crashed destination was delivered (copies to crashed
  processes may drop: quasi-reliability permits exactly that).

These are the invariants that make the torture campaign's verdicts
meaningful: an injector that corrupted or dropped correct-to-correct
traffic would "find" protocol violations the model does not allow.

The ``lossy-*`` adversaries break the quasi-reliable axioms *by
design* (drop, duplicate, corrupt), so they are excluded from that
grid.  Their contract is different: mounted **beneath** the
``reliable`` transport, the composition must restore exactly-once
in-order per-link delivery — the second half of this module tests
precisely that, by recording every frame the transport releases
upward and asserting each link saw the unbroken sequence
``0, 1, 2, ...``.
"""

from collections import defaultdict

import pytest

from repro.adversary.injectors import apply_adversary
from repro.adversary.spec import ADVERSARIES, get_adversary
from repro.checkers.properties import check_all
from repro.checkers.stabilization import (
    StreamingStabilizationChecker,
    check_stabilization,
)
from repro.runtime.builder import build_system
from repro.transport import ACK_KIND
from repro.workload.generators import (
    poisson_workload,
    schedule_workload,
    uniform_k_groups,
)

#: Adversaries that must preserve the quasi-reliable link axioms.
ADVERSARY_NAMES = [name for name in ADVERSARIES
                   if name != "none" and not name.startswith("lossy-")]
#: Adversaries that break them on purpose (paired with the transport).
LOSSY_NAMES = [name for name in ADVERSARIES if name.startswith("lossy-")]


def _run_traced(adversary_name: str, seed: int):
    system = build_system("a1", group_sizes=[3, 3], seed=seed,
                          trace=True)
    applied = apply_adversary(system, get_adversary(adversary_name))
    plans = poisson_workload(
        system.topology, system.rng.stream("wl"),
        rate=1.5, duration=25.0, destinations=uniform_k_groups(2),
    )
    schedule_workload(system, plans)
    system.run_quiescent()
    return system, applied


@pytest.mark.parametrize("adversary_name", ADVERSARY_NAMES)
@pytest.mark.parametrize("seed", [1, 2, 7])
def test_quasi_reliable_invariants(adversary_name, seed):
    system, applied = _run_traced(adversary_name, seed)
    sends = [e.msg for e in system.network.trace.events
             if e.event == "send"]
    delivers = [e.msg for e in system.network.trace.events
                if e.event == "deliver"]
    sent_ids = {id(msg) for msg in sends}

    delivered_ids = set()
    for msg in delivers:
        # No invention, and no corruption: the delivered object IS the
        # sent object, payload untouched by construction.
        assert id(msg) in sent_ids, \
            f"delivered a copy that was never sent: {msg}"
        # No duplication.
        assert id(msg) not in delivered_ids, \
            f"copy delivered twice: {msg}"
        delivered_ids.add(id(msg))

    # Eventual delivery: every copy whose destination never crashed
    # must have arrived by quiescence.  (Messages *to* a crashed
    # process may be dropped; the phase-crash adversary exercises
    # that, and the run's crash schedule records its dynamic crash.)
    for msg in sends:
        if system.crashes.is_faulty(msg.dst):
            continue
        assert id(msg) in delivered_ids, (
            f"copy to correct process never delivered: {msg} "
            f"(adversary {adversary_name}, seed {seed})"
        )


@pytest.mark.parametrize("adversary_name", ADVERSARY_NAMES)
def test_injectors_actually_inject(adversary_name):
    """The grid is only a test of the adversary if faults really fire."""
    _, applied = _run_traced(adversary_name, seed=1)
    assert applied.total_faults > 0, \
        f"{adversary_name} injected nothing on this workload"


@pytest.mark.parametrize("seed", [1, 5])
def test_fault_window_alignment(seed):
    """Moving the fault window never reshuffles the fault stream.

    With ``skip_faults=k`` the injector must perturb exactly the faults
    it would have perturbed anyway, minus the first k — the alignment
    property the shrinker's bisection depends on.  Observable here as:
    the skipped run's faults are a subset count and the system still
    runs deterministically.
    """
    from repro.adversary.spec import AdversarySpec, InjectorSpec

    def faults_with(skip, max_faults):
        spec = AdversarySpec(
            name="probe",
            injectors=(InjectorSpec(
                kind="delay-reorder",
                params=(("probability", 0.2),),
                skip_faults=skip, max_faults=max_faults,
            ),),
        )
        system = build_system("a1", group_sizes=[2, 2], seed=seed)
        applied = apply_adversary(system, spec)
        plans = poisson_workload(
            system.topology, system.rng.stream("wl"),
            rate=1.0, duration=15.0, destinations=uniform_k_groups(2),
        )
        schedule_workload(system, plans)
        system.run_quiescent()
        injector = applied.injectors[0]
        return injector.opportunities, injector.faults_injected

    opportunities, faults = faults_with(0, None)
    assert faults > 2
    # Skipping everything injects nothing: the run is benign.
    _, benign_faults = faults_with(10 ** 9, None)
    assert benign_faults == 0
    # Capping at 1 injects exactly one.
    _, one = faults_with(0, 1)
    assert one == 1
    # max_faults=0 is the explicit benign window.
    _, none = faults_with(0, 0)
    assert none == 0


# ----------------------------------------------------------------------
# Lossy adversaries beneath the reliable transport
# ----------------------------------------------------------------------

def _run_reliable(adversary_name: str, seed: int):
    """Run a1 over lossy links with the transport mounted.

    Every protocol handler is wrapped so that each frame the transport
    releases upward records its link sequence number — the raw
    observable behind the exactly-once in-order contract.
    """
    system = build_system("a1", group_sizes=[3, 3], seed=seed,
                          transport="reliable")
    applied = apply_adversary(system, get_adversary(adversary_name))
    system.applied_adversary = applied
    system.stabilization_checker = StreamingStabilizationChecker()
    system.stabilization_checker.attach(system)

    released = defaultdict(list)
    for process in system.network.processes():
        for kind, handler in list(process._handlers.items()):
            if kind == ACK_KIND:
                continue

            def recorder(msg, _handler=handler):
                if msg.wire is not None:
                    released[(msg.src, msg.dst)].append(msg.wire >> 8)
                _handler(msg)

            process._handlers[kind] = recorder

    plans = poisson_workload(
        system.topology, system.rng.stream("wl"),
        rate=1.5, duration=18.0, destinations=uniform_k_groups(2),
    )
    schedule_workload(system, plans)
    system.run_quiescent()
    return system, applied, released


@pytest.mark.parametrize("adversary_name", LOSSY_NAMES)
@pytest.mark.parametrize("seed", [1, 7])
def test_reliable_transport_exactly_once_in_order(adversary_name, seed):
    """Under every loss adversary, each link releases 0, 1, 2, ...

    No duplicate (a repeated seq), no gap (a skipped seq), no
    reordering (a seq out of place), no corruption passed upward (a
    corrupted frame fails its checksum, is dropped, and must be
    retransmitted — so it still shows up exactly once).
    """
    system, applied, released = _run_reliable(adversary_name, seed)
    assert applied.total_faults > 0, \
        f"{adversary_name} injected nothing — the test is vacuous"

    for link, seqs in released.items():
        assert seqs == list(range(len(seqs))), (
            f"link {link} released {seqs[:20]}... not the unbroken "
            f"sequence (adversary {adversary_name}, seed {seed})"
        )

    stats = system.transport.stats
    total = sum(len(seqs) for seqs in released.values())
    assert total == stats.released
    # Everything the senders sequenced was eventually released: no
    # crash injector here, so no link is exempt.
    assert stats.released == stats.data_copies
    drained = system.transport.outstanding()
    assert drained == {"unacked": {}, "buffered": {}}


@pytest.mark.parametrize("adversary_name", LOSSY_NAMES)
def test_reliable_transport_run_is_correct_and_stabilizes(adversary_name):
    """The composition passes the paper's checkers and self-stabilizes."""
    system, applied, _ = _run_reliable(adversary_name, seed=1)
    assert applied.total_faults > 0
    check_all(system.log, system.topology)
    report = check_stabilization(system)
    assert report.stabilized
    assert report.horizon == 25.0
    assert report.last_fault_at is not None
    assert report.last_fault_at < report.horizon
    assert report.last_delivery_at is not None


def test_lossy_medium_exercises_every_defence():
    """The medium adversary makes the transport earn each counter."""
    system, _, _ = _run_reliable("lossy-medium", seed=1)
    stats = system.transport.stats
    assert stats.retransmits > 0, "drops never forced a retransmission"
    assert stats.dup_suppressed > 0, "duplicates never reached dedup"
    assert stats.corrupt_detected > 0, "corruption never hit a checksum"
    assert stats.acks_sent > 0
