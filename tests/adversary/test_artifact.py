"""Artifact serialisation, schema validation, and replay diffing."""

import json

import pytest

from repro.adversary.artifact import (
    SCHEMA,
    case_to_artifact,
    load_artifact,
    replay,
    replay_file,
    write_artifact,
)
from repro.adversary.explorer import run_case
from repro.adversary.selftest import (
    PROTOCOL_NAME,
    register_selftest_protocol,
)
from repro.adversary.spec import AdversarySpec, get_adversary
from repro.campaigns.spec import ScenarioSpec, WorkloadSpec

register_selftest_protocol()

GREEN = ScenarioSpec(
    name="artifact-green",
    protocol="a1",
    group_sizes=(2, 2),
    workload=WorkloadSpec(kind="periodic", period=2.0, count=8),
    checkers=("properties",),
)

BROKEN = ScenarioSpec(
    name="artifact-broken",
    protocol=PROTOCOL_NAME,
    group_sizes=(2, 2),
    workload=WorkloadSpec(kind="poisson", rate=2.0, duration=10.0),
    checkers=("properties",),
)


def test_round_trip_preserves_specs(tmp_path):
    case = run_case(GREEN, get_adversary("partition-spike"), seed=4)
    path = str(tmp_path / "a.json")
    write_artifact(case, path)
    data = load_artifact(path)
    assert ScenarioSpec.from_dict(data["scenario"]) == GREEN
    assert (AdversarySpec.from_dict(data["adversary"])
            == get_adversary("partition-spike"))
    assert data["seed"] == 4
    assert data["violation"] is None


def test_green_artifact_replays(tmp_path):
    case = run_case(GREEN, get_adversary("delay-reorder"), seed=2)
    path = str(tmp_path / "g.json")
    write_artifact(case, path)
    result = replay_file(path)
    assert result.reproduced, result.diffs
    assert result.case.violation is None


def test_failing_artifact_replays_the_violation(tmp_path):
    case = run_case(BROKEN, get_adversary("delay-reorder"), seed=1)
    assert not case.ok
    path = str(tmp_path / "b.json")
    write_artifact(case, path)
    result = replay_file(path)
    assert result.reproduced, result.diffs
    assert result.case.violation is not None
    assert result.case.violation.checker == "properties"


def test_tampered_expectations_are_detected(tmp_path):
    case = run_case(GREEN, get_adversary("delay-reorder"), seed=2)
    data = case_to_artifact(case)
    pid, order = next((pid, order)
                      for pid, order in data["expected"]
                      ["delivery_orders"].items() if len(order) >= 2)
    data["expected"]["delivery_orders"][pid] = order[::-1]
    data["expected"]["casts"] += 1
    result = replay(data)
    assert not result.reproduced
    assert any("delivery order" in d for d in result.diffs)
    assert any("casts" in d for d in result.diffs)


def test_schema_mismatch_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "something/else"}))
    with pytest.raises(ValueError, match="not an adversary artifact"):
        load_artifact(str(path))


def test_missing_sections_rejected(tmp_path):
    path = tmp_path / "incomplete.json"
    path.write_text(json.dumps({"schema": SCHEMA, "seed": 1}))
    with pytest.raises(ValueError, match="missing"):
        load_artifact(str(path))


def test_artifact_records_fault_accounting(tmp_path):
    case = run_case(BROKEN, get_adversary("delay-reorder"), seed=1)
    data = case_to_artifact(case, shrink_summary={"runs_used": 0})
    expected = data["expected"]
    assert expected["total_faults"] == case.total_faults
    assert expected["fault_counts"] == case.fault_counts
    assert data["shrink"] == {"runs_used": 0}
    # The whole artifact must be valid JSON end to end.
    json.loads(json.dumps(data))
