"""Spec-level contracts for the lossy injector kinds.

Round-trips of the drop/duplicate/corrupt specs (including the
Gilbert–Elliott burst knobs and the ``until`` horizon), the error
messages that advertise the new kinds, and the committed
``COUNTEREXAMPLE_lossy_channel.json`` — the shrunk proof that lossy
links without the transport break a real checker, pinned at the repo
root the way the campaign reports are.
"""

import json
import os

import pytest

from repro.adversary.artifact import SCHEMA, load_artifact, replay_file
from repro.adversary.injectors import INJECTOR_TYPES
from repro.adversary.spec import (
    ADVERSARIES,
    INJECTOR_KINDS,
    AdversarySpec,
    InjectorSpec,
    get_adversary,
)

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
COUNTEREXAMPLE = os.path.abspath(
    os.path.join(REPO_ROOT, "COUNTEREXAMPLE_lossy_channel.json"))

LOSSY_SPECS = {
    "drop": InjectorSpec(
        kind="drop",
        params=(("probability", 0.15), ("until", 25.0)),
    ),
    "drop-burst": InjectorSpec(
        kind="drop",
        params=(("probability", 0.05), ("burst_probability", 0.6),
                ("burst_enter", 0.05), ("burst_exit", 0.2),
                ("until", 25.0)),
    ),
    "duplicate": InjectorSpec(
        kind="duplicate",
        params=(("probability", 0.10), ("until", 25.0)),
        max_faults=50,
    ),
    "corrupt": InjectorSpec(
        kind="corrupt",
        params=(("probability", 0.05),),
        skip_faults=3,
    ),
}


class TestRoundTrips:
    @pytest.mark.parametrize("label", sorted(LOSSY_SPECS))
    def test_injector_spec_round_trips(self, label):
        spec = AdversarySpec(name=label,
                             injectors=(LOSSY_SPECS[label],))
        again = AdversarySpec.from_dict(spec.to_dict())
        assert again == spec
        # Value-level checks so equality can't hide a lossy encoder.
        injector = again.injectors[0]
        assert injector.params == LOSSY_SPECS[label].params
        assert injector.skip_faults == LOSSY_SPECS[label].skip_faults
        assert injector.max_faults == LOSSY_SPECS[label].max_faults

    @pytest.mark.parametrize(
        "name", [n for n in ADVERSARIES if n.startswith("lossy-")])
    def test_builtin_lossy_adversaries_round_trip(self, name):
        spec = get_adversary(name)
        assert AdversarySpec.from_dict(spec.to_dict()) == spec
        # And survive JSON, the artifact transport.
        data = json.loads(json.dumps(spec.to_dict()))
        assert AdversarySpec.from_dict(data) == spec

    def test_with_window_preserves_lossy_params(self):
        spec = LOSSY_SPECS["drop-burst"]
        windowed = spec.with_window(skip_faults=2, max_faults=7)
        assert windowed.params == spec.params
        assert windowed.skip_faults == 2
        assert windowed.max_faults == 7


class TestErrorMessages:
    def test_unknown_kind_lists_the_lossy_kinds(self):
        with pytest.raises(ValueError) as err:
            InjectorSpec(kind="nope")
        message = str(err.value)
        for kind in ("drop", "duplicate", "corrupt"):
            assert kind in message, \
                f"error message does not advertise {kind!r}: {message}"

    def test_spec_kinds_and_injector_registry_agree(self):
        """The spec-level allowlist and the factory registry are the
        same set, so the apply-time error can never disagree with the
        construction-time one."""
        assert set(INJECTOR_KINDS) == set(INJECTOR_TYPES)


class TestCommittedCounterexample:
    def test_artifact_is_valid_and_minimal(self):
        data = load_artifact(COUNTEREXAMPLE)
        assert data["schema"] == SCHEMA
        assert data["scenario"]["transport"] == "none"
        kinds = [inj["kind"] for inj in data["adversary"]["injectors"]]
        assert kinds == ["drop"]
        # The shrinker got it down to a single dropped message.
        assert data["expected"]["total_faults"] == 1
        assert data["violation"] is not None

    def test_artifact_reproduces_bit_identically(self):
        result = replay_file(COUNTEREXAMPLE)
        assert result.reproduced, result.diffs
        violation = result.case.violation
        assert violation is not None
        assert violation.checker == "quiescence"
        assert result.case.total_faults == 1
