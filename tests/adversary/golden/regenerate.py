"""Regenerate the golden adversary artifacts (run from the repo root).

Only do this after an *intentional* scheduling change; the golden
replay tests exist to catch accidental ones.  See README.md here.
"""

import os

from repro.adversary import get_adversary, run_case, shrink
from repro.adversary.artifact import replay_file, write_artifact
from repro.adversary.selftest import (
    PROTOCOL_NAME,
    register_selftest_protocol,
)
from repro.campaigns.spec import (
    DestinationSpec,
    ScenarioSpec,
    WorkloadSpec,
)

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    register_selftest_protocol()

    broken = ScenarioSpec(
        name="golden-broken-fifo",
        protocol=PROTOCOL_NAME,
        group_sizes=(2, 2),
        workload=WorkloadSpec(kind="poisson", rate=2.0, duration=15.0),
        checkers=("properties",),
    )
    case = run_case(broken, get_adversary("delay-reorder"), seed=1)
    assert not case.ok, "the broken fixture must fail under delay-reorder"
    outcome = shrink(case)
    path = os.path.join(GOLDEN_DIR, "broken_fifo_counterexample.json")
    write_artifact(outcome.minimal, path,
                   shrink_summary=outcome.summary())
    print(f"wrote {path}: {outcome.minimal.describe()}")

    green = ScenarioSpec(
        name="golden-a1-partition",
        protocol="a1",
        group_sizes=(2, 2),
        workload=WorkloadSpec(
            kind="periodic", period=1.5, count=10,
            destinations=DestinationSpec(kind="uniform-k", k=2),
        ),
        checkers=("properties",),
    )
    gcase = run_case(green, get_adversary("partition-spike"), seed=7)
    assert gcase.ok, gcase.violation
    path = os.path.join(GOLDEN_DIR, "a1_partition_green.json")
    write_artifact(gcase, path)
    print(f"wrote {path}: {gcase.describe()}")

    for name in ("broken_fifo_counterexample.json",
                 "a1_partition_green.json"):
        result = replay_file(os.path.join(GOLDEN_DIR, name))
        assert result.reproduced, result.diffs
        print(f"{name}: {result.describe()}")


if __name__ == "__main__":
    main()
