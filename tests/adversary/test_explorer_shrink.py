"""Explorer + shrinker behaviour, including the broken-protocol canary.

The acceptance bar for the whole subsystem: correct protocols stay
green under every adversary; the intentionally broken FIFO-sequencer
fixture passes benignly, is caught under delay/reorder, and shrinks to
a reproducer of at most 5 faults that replays deterministically.
"""

import dataclasses

import pytest

from repro.adversary.explorer import run_case
from repro.adversary.selftest import (
    PROTOCOL_NAME,
    register_selftest_protocol,
)
from repro.adversary.shrink import shrink
from repro.adversary.spec import (
    ADVERSARIES,
    AdversarySpec,
    InjectorSpec,
    get_adversary,
)
from repro.campaigns.spec import (
    DestinationSpec,
    ScenarioSpec,
    WorkloadSpec,
)

register_selftest_protocol()

A1_SCENARIO = ScenarioSpec(
    name="explorer-a1",
    protocol="a1",
    group_sizes=(3, 3),
    workload=WorkloadSpec(
        kind="poisson", rate=1.0, duration=20.0,
        destinations=DestinationSpec(kind="uniform-k", k=2),
    ),
    checkers=("properties",),
)

# The lossy adversaries break quasi-reliability on purpose; a1 only
# stays green above them with the transport mounted (and then the run
# must also self-stabilize once the faults stop).
A1_RELIABLE_SCENARIO = dataclasses.replace(
    A1_SCENARIO, name="explorer-a1-reliable", transport="reliable",
    checkers=("properties", "stabilization"),
)

BROKEN_SCENARIO = ScenarioSpec(
    name="selftest",
    protocol=PROTOCOL_NAME,
    group_sizes=(2, 2),
    workload=WorkloadSpec(kind="poisson", rate=2.0, duration=15.0),
    checkers=("properties",),
)


class TestRunCase:
    @pytest.mark.parametrize(
        "adversary_name",
        [n for n in ADVERSARIES
         if n != "none" and not n.startswith("lossy-")])
    def test_a1_green_under_every_adversary(self, adversary_name):
        case = run_case(A1_SCENARIO, get_adversary(adversary_name),
                        seed=1)
        assert case.ok, case.violation.message
        assert case.verdicts == {"properties": "ok"}
        assert case.total_faults > 0

    @pytest.mark.parametrize(
        "adversary_name",
        [n for n in ADVERSARIES if n.startswith("lossy-")])
    def test_a1_green_under_lossy_with_transport(self, adversary_name):
        case = run_case(A1_RELIABLE_SCENARIO,
                        get_adversary(adversary_name), seed=1)
        assert case.ok, case.violation.message
        assert case.verdicts == {"properties": "ok",
                                 "stabilization": "ok"}
        assert case.total_faults > 0

    def test_case_is_deterministic(self):
        a = run_case(A1_SCENARIO, get_adversary("delay-reorder"), seed=2)
        b = run_case(A1_SCENARIO, get_adversary("delay-reorder"), seed=2)
        assert a.delivery_orders == b.delivery_orders
        assert a.verdicts == b.verdicts
        assert a.casts == b.casts
        assert a.fault_counts == b.fault_counts

    def test_canonical_mids_are_cast_ordered(self):
        case = run_case(A1_SCENARIO, get_adversary("none"), seed=1)
        seen = {mid for order in case.delivery_orders.values()
                for mid in order}
        assert seen == {f"c{i:06d}" for i in range(case.casts)}

    def test_seed_changes_the_schedule(self):
        a = run_case(A1_SCENARIO, get_adversary("delay-reorder"), seed=1)
        b = run_case(A1_SCENARIO, get_adversary("delay-reorder"), seed=9)
        assert a.delivery_orders != b.delivery_orders

    def test_explicit_adversary_overrides_scenario_axis(self):
        import dataclasses

        named = dataclasses.replace(A1_SCENARIO, adversary="phase-crash")
        case = run_case(named, get_adversary("none"), seed=1)
        # The explicit benign spec wins: no faults were injected.
        assert case.total_faults == 0


class TestBrokenFixture:
    def test_benign_schedule_passes(self):
        case = run_case(BROKEN_SCENARIO, get_adversary("none"), seed=1)
        assert case.ok

    def test_delay_reorder_catches_it_with_context(self):
        case = run_case(BROKEN_SCENARIO, get_adversary("delay-reorder"),
                        seed=1)
        assert not case.ok
        violation = case.violation
        assert violation.checker == "properties"
        assert "prefix order" in violation.message
        assert violation.context["property"] == "uniform_prefix_order"
        assert violation.context["faults_injected"] > 0
        # Violation text uses canonical mids, so it is replay-stable.
        assert "c0000" in violation.message

    def test_shrinks_to_at_most_five_faults(self):
        case = run_case(BROKEN_SCENARIO, get_adversary("delay-reorder"),
                        seed=1)
        outcome = shrink(case)
        minimal = outcome.minimal
        assert not minimal.ok
        assert minimal.total_faults <= 5
        assert minimal.total_faults <= case.total_faults
        assert minimal.casts <= case.casts
        assert outcome.runs_used <= 120
        assert outcome.steps, "shrinker accepted no reduction at all"

    def test_shrunk_case_replays_identically(self):
        case = run_case(BROKEN_SCENARIO, get_adversary("delay-reorder"),
                        seed=1)
        minimal = shrink(case).minimal
        again = run_case(minimal.scenario, minimal.adversary,
                         minimal.seed)
        assert not again.ok
        assert again.delivery_orders == minimal.delivery_orders
        assert again.violation.message == minimal.violation.message


class TestLossyWithoutTransport:
    """``transport="none"`` + drop genuinely breaks a checker.

    The mirror image of the green lossy grid above, and the proof that
    those runs are not vacuous: strip the transport and the very same
    fault class produces a real, shrinkable, replayable counterexample
    — exactly like the broken-FIFO fixture does for reordering.
    """

    SCENARIO = ScenarioSpec(
        name="lossy-no-transport",
        protocol="a1",
        group_sizes=(2, 2),
        workload=WorkloadSpec(
            kind="poisson", rate=2.0, duration=8.0,
            destinations=DestinationSpec(kind="uniform-k", k=2),
        ),
        checkers=("properties",),
        # a1 livelocks on a dropped protocol message (it retransmits
        # nothing itself); a tight event cap turns that livelock into
        # a fast, deterministic quiescence violation.
        max_events=200_000,
    )
    DROP = AdversarySpec(
        name="drop-only",
        injectors=(InjectorSpec(kind="drop",
                                params=(("probability", 0.35),)),),
    )

    def test_drop_without_transport_breaks_a_checker(self):
        case = run_case(self.SCENARIO, self.DROP, seed=1)
        assert not case.ok
        assert case.violation.checker == "quiescence"
        assert case.total_faults > 0

    def test_violation_shrinks_and_replays_via_artifact(self, tmp_path):
        from repro.adversary.artifact import replay_file, write_artifact

        case = run_case(self.SCENARIO, self.DROP, seed=1)
        outcome = shrink(case, budget=16)
        minimal = outcome.minimal
        assert not minimal.ok
        # One dropped message is enough to wedge a1 — the shrinker
        # finds that minimal schedule.
        assert minimal.total_faults == 1

        path = tmp_path / "lossy_counterexample.json"
        write_artifact(minimal, str(path),
                       shrink_summary=outcome.summary())
        result = replay_file(str(path))
        assert result.reproduced, result.diffs
        assert result.case.violation.checker == "quiescence"

    def test_transport_repairs_the_same_schedule(self):
        """Mounting the transport turns the red cell green, same seed."""
        repaired = dataclasses.replace(
            self.SCENARIO, name="lossy-repaired", transport="reliable",
            checkers=("properties", "stabilization"),
        )
        case = run_case(repaired, self.DROP, seed=1)
        assert case.ok, case.violation.message
        assert case.total_faults > 0


class TestShrinkMechanics:
    def test_shrinking_a_passing_case_is_an_error(self):
        case = run_case(A1_SCENARIO, get_adversary("none"), seed=1)
        with pytest.raises(ValueError, match="passing case"):
            shrink(case)

    def test_budget_bounds_candidate_runs(self):
        case = run_case(BROKEN_SCENARIO, get_adversary("delay-reorder"),
                        seed=1)
        outcome = shrink(case, budget=3)
        assert outcome.runs_used <= 3
        assert not outcome.minimal.ok  # still a real counterexample

    def test_drops_redundant_injectors(self):
        """A chaos-style composition shrinks to the one injector the
        failure needs — "fewer faults" at the composition level."""
        composite = AdversarySpec(
            name="composite",
            injectors=(
                InjectorSpec(kind="link-skew",
                             params=(("factor", 3.0), ("src_gid", 0))),
                InjectorSpec(kind="delay-reorder",
                             params=(("probability", 0.15),)),
            ),
        )
        case = run_case(BROKEN_SCENARIO, composite, seed=1)
        assert not case.ok
        minimal = shrink(case).minimal
        assert len(minimal.adversary.injectors) == 1
        assert minimal.adversary.injectors[0].kind == "delay-reorder"
