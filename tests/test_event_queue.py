"""Cancellation semantics and determinism of the event queue.

The engine refactor made ``len(queue)`` (and therefore
``Simulator.pending_events``) track *live* events exactly: cancelled
events still occupy heap slots until lazily pruned, but must never be
counted, and the idle-hook refill check in ``Simulator.run`` must stay
exact in the presence of cancelled stragglers.
"""

import pytest

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.partition import (
    SETUP_BAND_BUILD,
    SETUP_BAND_WORKLOAD,
    GroupSequencedQueue,
    epoch_of,
    window_end,
)


class TestLiveCount:
    def test_cancel_excluded_from_len(self):
        q = EventQueue()
        a = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        a.cancel()
        assert len(q) == 1

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        a = q.push(1.0, lambda: None)
        a.cancel()
        a.cancel()
        assert len(q) == 0

    def test_cancel_after_pop_does_not_corrupt_count(self):
        q = EventQueue()
        a = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        popped = q.pop()
        assert popped is a
        a.cancel()  # already fired; must not decrement the live count
        assert len(q) == 1

    def test_cancel_after_clear_does_not_corrupt_count(self):
        q = EventQueue()
        a = q.push(1.0, lambda: None)
        q.clear()
        a.cancel()
        q.push(1.0, lambda: None)
        assert len(q) == 1

    def test_push_action_counts_and_pops(self):
        q = EventQueue()
        fired = []
        q.push_action(1.0, lambda: fired.append("x"))
        assert len(q) == 1
        event = q.pop()
        assert isinstance(event, Event)
        event.action()
        assert fired == ["x"] and len(q) == 0

    def test_pending_events_exact_after_cancel(self):
        sim = Simulator()
        keep = sim.schedule(5.0, lambda: None)
        drop = sim.schedule(1.0, lambda: None)
        drop.cancel()
        assert sim.pending_events == 1
        assert keep.time == 5.0


class TestDeterminism:
    def test_same_time_fires_in_scheduling_order(self):
        q = EventQueue()
        fired = []
        for name in "abcdef":
            q.push(3.0, lambda n=name: fired.append(n))
        while (e := q.pop()) is not None:
            e.action()
        assert fired == list("abcdef")

    def test_mixed_event_and_action_entries_keep_order(self):
        q = EventQueue()
        fired = []
        q.push(1.0, lambda: fired.append("event"))
        q.push_action(1.0, lambda: fired.append("action"))
        q.push(1.0, lambda: fired.append("event2"))
        while (e := q.pop()) is not None:
            e.action()
        assert fired == ["event", "action", "event2"]

    def test_cancelled_head_skipped_by_pop_and_peek(self):
        q = EventQueue()
        head = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        head.cancel()
        assert q.peek_time() == 2.0
        assert q.pop().time == 2.0


class TestTieBreakContract:
    """The ``(time, seq)`` tie-break is a pinned contract.

    The parallel kernel reproduces the serial total order from per-group
    sub-kernels, so equal-timestamp scheduling order is load-bearing —
    changing it silently breaks the bit-identical claim even though no
    single-queue test would notice.
    """

    def test_colliding_timestamps_pop_in_scheduling_order(self):
        q = EventQueue()
        fired = []
        # Interleave pushes at two colliding timestamps: each timestamp's
        # events must still pop in per-timestamp scheduling order.
        for i in range(8):
            t = 2.0 if i % 2 else 1.0
            q.push(t, lambda i=i: fired.append(i))
        while (e := q.pop()) is not None:
            e.action()
        assert fired == [0, 2, 4, 6, 1, 3, 5, 7]

    def test_events_scheduled_while_executing_sort_after_earlier_ties(self):
        """An event executing at time t schedules another event at t: the
        child must run after every event already queued for t."""
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append("a"),
                                   sim.schedule(0.0, lambda: fired.append("a-child"))))
        sim.schedule(1.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "a-child"]


class TestGroupSequencedQueue:
    """Pedigree keys must embed the serial counter order."""

    def _bound_queue(self, gid=0):
        q = GroupSequencedQueue(gid)
        sim = Simulator(queue=q)
        q.bind(sim)
        return q, sim

    def test_setup_roots_order_by_band_then_group_then_counter(self):
        q0, _ = self._bound_queue(0)
        q1, _ = self._bound_queue(1)
        build0 = q0._next_seq()
        q0.set_setup_band(SETUP_BAND_WORKLOAD)
        workload0 = q0._next_seq()
        build1 = q1._next_seq()
        # Build band sorts before workload band regardless of group;
        # within a band, group-major.
        assert build0 < build1 < workload0

    def test_runtime_children_follow_scheduling_moment_order(self):
        q, sim = self._bound_queue()
        fired = []
        # a, b, c are setup roots in scheduling order.
        sim.schedule(1.0, lambda: (fired.append("a"),
                                   sim.schedule(1.0, lambda: fired.append("a-child"))))
        sim.schedule(1.0, lambda: (fired.append("b"),
                                   sim.schedule(1.0, lambda: fired.append("b-child"))))
        sim.schedule(2.0, lambda: fired.append("c"))
        q.begin_run()
        sim.run()
        # a-child, b-child and c collide at t=2; serial order is
        # scheduling-moment order: c was scheduled during setup (before
        # the run), then a's child (a ran first at t=1), then b's.
        assert fired == ["a", "b", "c", "a-child", "b-child"]

    def test_keys_nest_parent_pedigrees(self):
        q, sim = self._bound_queue()
        parent = sim.schedule(1.0, lambda: None)
        q.begin_run()
        q.pop_entry()  # the kernel pops `parent` before executing it
        sim._now = 1.0
        child = sim.schedule(1.0, lambda: None)
        # seq = (scheduling time, parent's key, call index): structurally
        # shared, one 3-tuple per event.
        assert child.seq == (1.0, parent.seq, 0)
        assert child.seq[1] is parent.seq

    def test_remote_key_interleaves_where_sender_scheduled_it(self):
        """A cross-group arrival carries the sender's pedigree key and
        must sort against local events exactly as it would have in the
        one serial heap."""
        sender_q, sender_sim = self._bound_queue(0)
        dest_q, dest_sim = self._bound_queue(1)
        fired = []
        # Destination schedules a local event for t=2 during setup —
        # earliest possible scheduling moment.
        dest_sim.schedule(2.0, lambda: fired.append("local-early"))
        dest_q.begin_run()
        sender_q.begin_run()
        # Sender mints a copy's key while executing an event at t=1.0.
        sender_q._parent_key = (SETUP_BAND_BUILD, (0,), 0)
        sender_sim._now = 1.0
        remote_seq = sender_q._next_seq()
        dest_q.push_remote(2.0, remote_seq, lambda: fired.append("remote"))
        # A destination event scheduled at runtime t=1.5 — later moment.
        dest_q._parent_key = (SETUP_BAND_BUILD, (1,), 0)
        dest_sim._now = 1.5
        dest_sim.schedule(0.5, lambda: fired.append("local-late"))
        dest_sim.run()
        assert fired == ["local-early", "remote", "local-late"]


class TestEpochArithmetic:
    def test_window_containment(self):
        assert epoch_of(0.0, 1.0) == 0
        assert epoch_of(0.999, 1.0) == 0
        assert epoch_of(1.0, 1.0) == 1  # windows are half-open
        assert epoch_of(7.25, 1.0) == 7

    def test_boundary_float_rounding(self):
        lookahead = 0.1  # not exactly representable
        for e in range(50):
            t = e * lookahead
            assert epoch_of(t, lookahead) == epoch_of(t, lookahead)
            ep = epoch_of(t, lookahead)
            assert ep * lookahead <= t < window_end(ep, lookahead)

    def test_window_end_is_exclusive_bound(self):
        assert window_end(3, 0.5) == 2.0
        assert epoch_of(window_end(3, 0.5), 0.5) == 4


class TestIdleHookRefill:
    def test_refill_runs_after_cancelled_stragglers(self):
        """Cancelled stragglers leave tombstones in the heap; the idle
        refill check must look through them — the hook still runs, and
        its freshly scheduled work still fires."""
        sim = Simulator()
        fired = []
        straggler = sim.schedule(50.0, lambda: fired.append("straggler"))
        refills = [0]

        def hook():
            if refills[0] == 0:
                refills[0] += 1
                straggler.cancel()
                sim.schedule(1.0, lambda: fired.append("refill"))

        sim.add_idle_hook(hook)
        sim.schedule(1.0, lambda: (fired.append("first"), straggler.cancel()))
        sim.run()
        assert fired == ["first", "refill"]

    def test_idle_hook_not_rerun_when_it_schedules_nothing(self):
        sim = Simulator()
        calls = [0]

        def hook():
            calls[0] += 1

        sim.add_idle_hook(hook)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert calls[0] == 1

    def test_run_drains_despite_cancelled_tail(self):
        sim = Simulator()
        tail = [sim.schedule(10.0 + i, lambda: None) for i in range(5)]
        for event in tail:
            event.cancel()
        end = sim.run()
        assert sim.pending_events == 0
        assert end == 0.0  # nothing live ever fired

    def test_run_until_quiescent_ignores_cancelled_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        zombie = sim.schedule(2.0, lambda: None)
        zombie.cancel()
        sim.run_until_quiescent()
        assert sim.pending_events == 0
