"""Cancellation semantics and determinism of the event queue.

The engine refactor made ``len(queue)`` (and therefore
``Simulator.pending_events``) track *live* events exactly: cancelled
events still occupy heap slots until lazily pruned, but must never be
counted, and the idle-hook refill check in ``Simulator.run`` must stay
exact in the presence of cancelled stragglers.
"""

import pytest

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator


class TestLiveCount:
    def test_cancel_excluded_from_len(self):
        q = EventQueue()
        a = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        a.cancel()
        assert len(q) == 1

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        a = q.push(1.0, lambda: None)
        a.cancel()
        a.cancel()
        assert len(q) == 0

    def test_cancel_after_pop_does_not_corrupt_count(self):
        q = EventQueue()
        a = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        popped = q.pop()
        assert popped is a
        a.cancel()  # already fired; must not decrement the live count
        assert len(q) == 1

    def test_cancel_after_clear_does_not_corrupt_count(self):
        q = EventQueue()
        a = q.push(1.0, lambda: None)
        q.clear()
        a.cancel()
        q.push(1.0, lambda: None)
        assert len(q) == 1

    def test_push_action_counts_and_pops(self):
        q = EventQueue()
        fired = []
        q.push_action(1.0, lambda: fired.append("x"))
        assert len(q) == 1
        event = q.pop()
        assert isinstance(event, Event)
        event.action()
        assert fired == ["x"] and len(q) == 0

    def test_pending_events_exact_after_cancel(self):
        sim = Simulator()
        keep = sim.schedule(5.0, lambda: None)
        drop = sim.schedule(1.0, lambda: None)
        drop.cancel()
        assert sim.pending_events == 1
        assert keep.time == 5.0


class TestDeterminism:
    def test_same_time_fires_in_scheduling_order(self):
        q = EventQueue()
        fired = []
        for name in "abcdef":
            q.push(3.0, lambda n=name: fired.append(n))
        while (e := q.pop()) is not None:
            e.action()
        assert fired == list("abcdef")

    def test_mixed_event_and_action_entries_keep_order(self):
        q = EventQueue()
        fired = []
        q.push(1.0, lambda: fired.append("event"))
        q.push_action(1.0, lambda: fired.append("action"))
        q.push(1.0, lambda: fired.append("event2"))
        while (e := q.pop()) is not None:
            e.action()
        assert fired == ["event", "action", "event2"]

    def test_cancelled_head_skipped_by_pop_and_peek(self):
        q = EventQueue()
        head = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        head.cancel()
        assert q.peek_time() == 2.0
        assert q.pop().time == 2.0


class TestIdleHookRefill:
    def test_refill_runs_after_cancelled_stragglers(self):
        """Cancelled stragglers leave tombstones in the heap; the idle
        refill check must look through them — the hook still runs, and
        its freshly scheduled work still fires."""
        sim = Simulator()
        fired = []
        straggler = sim.schedule(50.0, lambda: fired.append("straggler"))
        refills = [0]

        def hook():
            if refills[0] == 0:
                refills[0] += 1
                straggler.cancel()
                sim.schedule(1.0, lambda: fired.append("refill"))

        sim.add_idle_hook(hook)
        sim.schedule(1.0, lambda: (fired.append("first"), straggler.cancel()))
        sim.run()
        assert fired == ["first", "refill"]

    def test_idle_hook_not_rerun_when_it_schedules_nothing(self):
        sim = Simulator()
        calls = [0]

        def hook():
            calls[0] += 1

        sim.add_idle_hook(hook)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert calls[0] == 1

    def test_run_drains_despite_cancelled_tail(self):
        sim = Simulator()
        tail = [sim.schedule(10.0 + i, lambda: None) for i in range(5)]
        for event in tail:
            event.cancel()
        end = sim.run()
        assert sim.pending_events == 0
        assert end == 0.0  # nothing live ever fired

    def test_run_until_quiescent_ignores_cancelled_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        zombie = sim.schedule(2.0, lambda: None)
        zombie.cancel()
        sim.run_until_quiescent()
        assert sim.pending_events == 0
