"""The store under adversarial schedules (quasi-reliable semantics).

Delay/reorder and phase-boundary crashes only ever *delay* correct
traffic or crash a strict minority — so the serving layer's one-copy
serializability, convergence and the paper's uniform properties must
all survive every schedule the injectors construct.  These are the
seeded fault-injection campaigns of PR 4 pointed at the new subsystem.
"""

import dataclasses

import pytest

from repro.campaigns.runner import run_scenario_seed
from repro.campaigns.spec import ScenarioSpec, StoreSpec

# Group size 3 everywhere: the phase-crash injector validates that a
# strict majority of the target's group survives its crash.
BASE = ScenarioSpec(
    name="store-adv",
    protocol="a1",
    group_sizes=(3, 3, 3),
    store=StoreSpec(n_keys=18, rate=1.0, duration=30.0,
                    multi_partition_fraction=0.4),
    checkers=("properties", "serializability", "convergence"),
    metrics=("core", "store"),
)


class TestStoreUnderAdversaries:
    @pytest.mark.parametrize("adversary", ["delay-reorder", "phase-crash"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_serializability_survives(self, adversary, seed):
        spec = dataclasses.replace(BASE, adversary=adversary)
        result = run_scenario_seed(spec, seed)
        assert result.metrics["faults_injected"] > 0, (
            f"{adversary} seed={seed}: adversary never fired"
        )
        assert result.ok, (
            f"{adversary} seed={seed}: {result.checkers}"
        )

    def test_delay_reorder_perturbs_but_preserves_commits(self):
        benign = run_scenario_seed(BASE, seed=1)
        adversarial = run_scenario_seed(
            dataclasses.replace(BASE, adversary="delay-reorder"), seed=1)
        # Same plan, every transaction still commits…
        assert adversarial.metrics["txn_planned"] \
            == benign.metrics["txn_planned"]
        assert adversarial.metrics["txn_committed"] \
            == benign.metrics["txn_committed"]
        # …and the schedule genuinely changed (delays cost latency).
        assert adversarial.metrics["txn_latency_mean"] \
            != benign.metrics["txn_latency_mean"]

    def test_phase_crash_registers_observed_crash(self):
        spec = dataclasses.replace(BASE, adversary="phase-crash")
        result = run_scenario_seed(spec, seed=2)
        assert result.ok
        # The injector's dynamic crash may strand in-flight
        # transactions of the crashed client; every committed one must
        # still be serialisable (asserted above via checkers).
        assert result.metrics["txn_committed"] > 0
