"""Integration tests for the transactional partitioned store."""

import pytest

from repro.checkers.properties import check_all
from repro.failure.schedule import CrashSchedule
from repro.store import StoreCluster, StoreSpec, check_serializability


def run_cluster(protocol="a1", seed=1, spec=None, group_sizes=(2, 2, 2),
                **kwargs):
    cluster = StoreCluster.build(
        list(group_sizes),
        store=spec or StoreSpec(n_keys=18, rate=1.0, duration=25.0,
                                multi_partition_fraction=0.4),
        protocol=protocol, seed=seed, **kwargs,
    )
    cluster.system.run_quiescent()
    return cluster


class TestServing:
    def test_end_to_end_green(self):
        cluster = run_cluster()
        assert cluster.tracker.committed
        assert not cluster.tracker.uncommitted()
        cluster.assert_convergence()
        check_serializability(cluster)
        check_all(cluster.system.log, cluster.system.topology,
                  cluster.system.crashes)

    def test_manual_submission_and_local_reads(self):
        cluster = StoreCluster.build(
            [2, 2], store=StoreSpec(n_keys=4, kind="periodic", count=0),
            protocol="a1", seed=3,
        )
        keymap = cluster.partition_map
        key = next(k for k in ("k00000", "k00001")
                   if keymap.group_of(k) == 0)
        client = cluster.client(0)
        client.submit("manual-1", (("put", key, 42),))
        client.submit("manual-2", (("incr", key, 8),))
        cluster.system.run_quiescent()
        for pid in cluster.system.topology.members(0):
            assert cluster.store(pid).get(key) == 50
        check_serializability(cluster)

    def test_reads_outside_partition_rejected(self):
        cluster = run_cluster()
        key = "k00000"
        owner = cluster.partition_map.group_of(key)
        outsider = next(
            pid for pid in cluster.system.topology.processes
            if cluster.system.topology.group_of(pid) != owner
        )
        with pytest.raises(KeyError):
            cluster.store(outsider).get(key)

    def test_commit_latency_recorded_per_txn(self):
        cluster = run_cluster()
        latencies = cluster.tracker.latencies()
        assert len(latencies) == len(cluster.plans)
        assert all(lat >= 0.0 for lat in latencies)
        span = cluster.tracker.commit_span()
        assert span is not None and span[0] <= span[1]

    def test_genuine_routing_targets_owner_groups_only(self):
        cluster = run_cluster()
        keymap = cluster.partition_map
        plan_by_id = {p.txn_id: p for p in cluster.plans}
        for mid, msg in cluster.system.log.cast_map.items():
            plan = plan_by_id[mid]
            owners = sorted({keymap.group_of(op[1]) for op in plan.ops})
            assert list(msg.dest_groups) == owners

    def test_broadcast_routing_targets_every_group(self):
        cluster = run_cluster(
            protocol="a2",
            spec=StoreSpec(n_keys=18, rate=0.6, duration=25.0,
                           routing="broadcast"),
        )
        for msg in cluster.system.log.cast_map.values():
            assert tuple(msg.dest_groups) == (0, 1, 2)
        cluster.assert_convergence()
        check_serializability(cluster)

    def test_genuine_routing_rejected_on_broadcast_protocols(self):
        with pytest.raises(ValueError, match="broadcast protocol"):
            StoreCluster.build([2, 2], store=StoreSpec(), protocol="a2")

    def test_duplicate_tracker_registration_rejected(self):
        cluster = StoreCluster.build(
            [2, 2], store=StoreSpec(n_keys=4, kind="periodic", count=0),
            protocol="a1", seed=3,
        )
        cluster.client(0).submit("dup-1", (("put", "k00000", 1),))
        with pytest.raises(ValueError, match="already tracked"):
            cluster.client(0).submit("dup-1", (("put", "k00000", 2),))


class TestCrossProtocol:
    def test_same_final_state_on_every_multicast_protocol(self):
        """One plan, many protocols: the serving layer is protocol-
        agnostic, so the committed data must be identical."""
        snapshots = {}
        for protocol in ("a1", "a1-noskip", "skeen", "fritzke"):
            cluster = run_cluster(protocol=protocol, seed=9)
            check_serializability(cluster)
            snapshots[protocol] = tuple(
                tuple(sorted(cluster.store(pid).owned_snapshot().items()))
                for pid in cluster.system.topology.processes
            )
        assert len(set(snapshots.values())) == 1

    def test_genuine_vs_broadcast_same_data_different_traffic(self):
        spec = StoreSpec(n_keys=18, rate=0.8, duration=25.0,
                         multi_partition_fraction=0.3)
        import dataclasses

        genuine = run_cluster(protocol="a1", seed=5, spec=spec,
                              group_sizes=(2, 2, 2, 2))
        broadcast = run_cluster(
            protocol="a2", seed=5,
            spec=dataclasses.replace(spec, routing="broadcast"),
            group_sizes=(2, 2, 2, 2),
        )
        # Same plans (seeded identically), same committed count…
        assert [p.txn_id for p in genuine.plans] \
            == [p.txn_id for p in broadcast.plans]
        assert len(genuine.tracker.committed) \
            == len(broadcast.tracker.committed)
        # …but the broadcast deployment moves strictly more copies.
        assert (broadcast.system.network.stats.total_messages
                > genuine.system.network.stats.total_messages)


class TestUnderCrashes:
    def test_minority_crashes_stay_serialisable(self):
        cluster = StoreCluster.build(
            [3, 3], store=StoreSpec(n_keys=12, rate=0.8, duration=30.0,
                                    multi_partition_fraction=0.4),
            protocol="a1", seed=5,
            crashes=CrashSchedule({0: 6.0, 4: 12.0}),
        )
        cluster.system.run_quiescent()
        cluster.assert_convergence()
        check_serializability(cluster)
        check_all(cluster.system.log, cluster.system.topology,
                  cluster.system.crashes)


class TestInvolvement:
    def test_spectator_groups_idle_under_genuine_routing(self):
        cluster = StoreCluster.build(
            [2, 2, 2, 2],
            store=StoreSpec(n_keys=12, data_groups=(0, 1), rate=0.8,
                            duration=25.0, multi_partition_fraction=0.4),
            protocol="a1", seed=2, trace=True,
        )
        cluster.system.run_quiescent()
        report = cluster.involvement()
        assert report.non_destination_groups() == [2, 3]
        assert report.non_destination_traffic() == 0
        assert sorted(report.involved_groups()) == [0, 1]

    def test_nongenuine_involves_spectators(self):
        cluster = StoreCluster.build(
            [2, 2, 2, 2],
            store=StoreSpec(n_keys=12, data_groups=(0, 1), rate=0.8,
                            duration=25.0, multi_partition_fraction=0.4),
            protocol="nongenuine", seed=2, trace=True,
        )
        cluster.system.run_quiescent()
        report = cluster.involvement()
        assert report.non_destination_groups() == [2, 3]
        assert report.non_destination_traffic() > 0
        assert sorted(report.involved_groups()) == [0, 1, 2, 3]
        check_serializability(cluster)

    def test_involvement_requires_trace(self):
        cluster = run_cluster()
        with pytest.raises(ValueError, match="trace=True"):
            cluster.involvement()
