"""Store scenarios through the campaign engine: spec round trips,
validation, built-in matrices, and runner integration."""

import dataclasses
import pickle

import pytest

from repro.campaigns.library import get_campaign
from repro.campaigns.runner import (
    run_campaign,
    run_scenario_seed,
    validate_spec,
)
from repro.campaigns.spec import ScenarioSpec, StoreSpec, matrix

STORE = StoreSpec(n_keys=16, data_groups=(0, 1), rate=0.8, duration=20.0,
                  multi_partition_fraction=0.4)
BASE = ScenarioSpec(
    name="store-test",
    protocol="a1",
    group_sizes=(2, 2, 2),
    store=STORE,
    checkers=("properties", "serializability", "convergence"),
    metrics=("core", "store", "involvement"),
)


class TestSpecIntegration:
    def test_to_dict_round_trip_with_store(self):
        revived = ScenarioSpec.from_dict(BASE.to_dict())
        assert revived == BASE
        assert revived.store == STORE

    def test_from_dict_without_store_key_is_plain_scenario(self):
        data = ScenarioSpec(name="plain").to_dict()
        del data["store"]
        assert ScenarioSpec.from_dict(data).store is None

    def test_spec_is_picklable(self):
        assert pickle.loads(pickle.dumps(BASE)) == BASE

    def test_describe_includes_store(self):
        desc = BASE.describe()
        assert desc["store"]["routing"] == "genuine"
        assert desc["store"]["data_groups"] == [0, 1]
        assert "store" not in ScenarioSpec(name="plain").describe()

    def test_matrix_expands_store_axes(self):
        specs = matrix(BASE, {"store.read_fraction": [0.1, 0.9]})
        assert [s.store.read_fraction for s in specs] == [0.1, 0.9]
        assert specs[0].name.endswith("read_fraction=0.1")


class TestValidation:
    def test_store_checkers_require_store(self):
        spec = dataclasses.replace(BASE, store=None)
        with pytest.raises(ValueError, match="require a store scenario"):
            validate_spec(spec)

    def test_store_metrics_require_store(self):
        spec = dataclasses.replace(
            BASE, store=None,
            checkers=("properties",), metrics=("core", "involvement"),
        )
        with pytest.raises(ValueError, match="require a store scenario"):
            validate_spec(spec)

    def test_store_spec_valid_passes(self):
        validate_spec(BASE)


class TestBuiltInCampaigns:
    def test_store_scaling_shape(self):
        campaign = get_campaign("store-scaling", seeds=(1,))
        assert len(campaign.scenarios) == 9
        protocols = {s.protocol for s in campaign.scenarios}
        assert protocols == {"a1", "nongenuine", "a2"}
        for spec in campaign.scenarios:
            assert spec.store is not None
            assert "serializability" in spec.checkers
            assert "involvement" in spec.metrics
            if spec.protocol == "a2":
                assert spec.store.routing == "broadcast"
            else:
                assert spec.store.routing == "genuine"
        # Sizes span 4 -> 8 groups (the scaling axis).
        sizes = {len(s.group_sizes) for s in campaign.scenarios}
        assert sizes == {4, 6, 8}

    def test_txn_mix_shape(self):
        campaign = get_campaign("txn-mix", seeds=(1,))
        assert len(campaign.scenarios) == 6
        fractions = {(s.store.read_fraction,
                      s.store.multi_partition_fraction)
                     for s in campaign.scenarios}
        assert len(fractions) == 6

    def test_store_scaling_smoke_runs_green(self):
        campaign = get_campaign("store-scaling", seeds=(1,))
        campaign.scenarios = campaign.scenarios[:1]
        result = run_campaign(campaign)
        assert result.all_checkers_ok
        run = result.result(campaign.scenarios[0].name, 1)
        assert run.metrics["txn_committed"] > 0
        assert run.metrics["nondest_messages"] == 0.0

    def test_txn_mix_smoke_runs_green(self):
        campaign = get_campaign("txn-mix", seeds=(1,))
        campaign.scenarios = campaign.scenarios[:1]
        result = run_campaign(campaign)
        assert result.all_checkers_ok


class TestRunnerIntegration:
    def test_metrics_and_planned_casts(self):
        result = run_scenario_seed(BASE, seed=2)
        assert result.ok
        assert result.metrics["planned_casts"] \
            == result.metrics["txn_planned"]
        assert result.metrics["txn_committed"] > 0
        assert result.metrics["casts"] == result.metrics["txn_planned"]

    def test_run_is_seed_deterministic(self):
        a = run_scenario_seed(BASE, seed=3)
        b = run_scenario_seed(BASE, seed=3)
        assert a.metrics == b.metrics
        assert a.checkers == b.checkers

    def test_different_seeds_differ(self):
        a = run_scenario_seed(BASE, seed=3)
        b = run_scenario_seed(BASE, seed=4)
        assert a.metrics != b.metrics

    def test_broadcast_store_scenario_runs(self):
        spec = dataclasses.replace(
            BASE, protocol="a2",
            store=dataclasses.replace(STORE, routing="broadcast"),
        )
        result = run_scenario_seed(spec, seed=1)
        assert result.ok
        # Broadcast addressing involves every group.
        assert result.metrics["groups_involved"] \
            == result.metrics["groups_total"]

    def test_genuine_routing_over_broadcast_protocol_fails_fast(self):
        spec = dataclasses.replace(BASE, protocol="a2")
        with pytest.raises(ValueError, match="broadcast protocol"):
            run_scenario_seed(spec, seed=1)
