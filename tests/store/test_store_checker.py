"""Tests for the streaming one-copy-serializability checker.

Green paths run real clusters; violation paths either hand-feed the
streaming core with adversarial delivery sequences or tamper with a
finished run's replica journals — every violation kind must be caught
and pinpointed.
"""

import pytest

from repro.core.interfaces import AppMessage
from repro.store import (
    SerializabilityViolation,
    StoreCluster,
    StoreSpec,
    StreamingSerializabilityChecker,
    check_serializability,
)
from repro.store.transaction import Transaction


def txn_msg(txn_id, dest_groups, ops=(("put", "k", 1),), sender=0):
    txn = Transaction(txn_id=txn_id, client=sender,
                      ops=tuple(tuple(op) for op in ops))
    return AppMessage(mid=txn_id, sender=sender, dest_groups=dest_groups,
                      payload=txn.to_payload())


def built_cluster(seed=1, **spec_kwargs):
    defaults = dict(n_keys=16, rate=1.0, duration=25.0,
                    multi_partition_fraction=0.4)
    defaults.update(spec_kwargs)
    cluster = StoreCluster.build(
        [2, 2, 2], store=StoreSpec(**defaults), protocol="a1", seed=seed,
    )
    cluster.system.run_quiescent()
    return cluster


class TestStreamingCore:
    def test_replica_divergence_raises_at_offending_delivery(self):
        cluster = built_cluster()
        checker = StreamingSerializabilityChecker(cluster.system.topology)
        a = txn_msg("ta", (0,))
        b = txn_msg("tb", (0,))
        checker.on_delivery(0, a)  # pid 0 fixes group 0's order: ta…
        checker.on_delivery(0, b)  # …tb
        checker.on_delivery(1, a)  # pid 1 agrees so far
        with pytest.raises(SerializabilityViolation,
                           match="disagree on their serial order"):
            checker.on_delivery(1, txn_msg("tc", (0,)))

    def test_prefix_logs_are_consistent(self):
        cluster = built_cluster()
        checker = StreamingSerializabilityChecker(cluster.system.topology)
        a, b = txn_msg("ta", (0,)), txn_msg("tb", (0,))
        checker.on_delivery(0, a)
        checker.on_delivery(0, b)
        checker.on_delivery(1, a)  # pid 1 stops after a prefix: fine
        assert checker.group_orders()[0] == ("ta", "tb")

    def test_streaming_hook_matches_post_hoc_feed(self):
        cluster = StoreCluster.build(
            [2, 2, 2], store=StoreSpec(n_keys=16, rate=1.0, duration=25.0,
                                       multi_partition_fraction=0.4),
            protocol="a1", seed=4,
        )
        live = StreamingSerializabilityChecker(cluster.system.topology)
        cluster.system.add_delivery_hook(live.on_delivery)
        cluster.system.run_quiescent()
        order_live = live.finalize(cluster)
        order_posthoc = check_serializability(cluster)
        assert order_live == order_posthoc
        assert live.deliveries == cluster.system.log.delivery_count()


class TestFinalizeViolations:
    def test_precedence_cycle_detected(self):
        cluster = built_cluster(kind="periodic", count=0)
        checker = StreamingSerializabilityChecker(cluster.system.topology)
        a, b = txn_msg("ta", (0, 1)), txn_msg("tb", (0, 1))
        cluster.system.log.record_cast(a)
        cluster.system.log.record_cast(b)
        for pid, msg in [(0, a), (0, b),   # group 0 says ta < tb
                         (2, b), (2, a)]:  # group 1 says tb < ta
            checker.on_delivery(pid, msg)
        with pytest.raises(SerializabilityViolation,
                           match="no global serial order"):
            checker.finalize(cluster)

    def test_partial_commit_detected(self):
        cluster = built_cluster(kind="periodic", count=0)
        checker = StreamingSerializabilityChecker(cluster.system.topology)
        msg = txn_msg("ta", (0, 1))
        cluster.system.log.record_cast(msg)
        checker.on_delivery(0, msg)  # group 0 executed, group 1 never did
        with pytest.raises(SerializabilityViolation,
                           match="partial commit"):
            checker.finalize(cluster)

    def test_phantom_transaction_detected(self):
        cluster = built_cluster(kind="periodic", count=0)
        checker = StreamingSerializabilityChecker(cluster.system.topology)
        checker.on_delivery(0, txn_msg("ghost", (0,)))  # never cast
        with pytest.raises(SerializabilityViolation,
                           match="never submitted"):
            checker.finalize(cluster)

    def test_crashed_partition_excuses_missing_execution(self):
        cluster = built_cluster(kind="periodic", count=0)
        for pid in cluster.system.topology.members(1):
            cluster.system.network.process(pid).crashed = True
        checker = StreamingSerializabilityChecker(cluster.system.topology)
        # k00001 is owned by (crashed) group 1, so the one-copy replay
        # has no surviving replica to compare its value against.
        msg = txn_msg("ta", (0, 1), ops=(("put", "k00001", 1),))
        cluster.system.log.record_cast(msg)
        for pid in cluster.system.topology.members(0):
            checker.on_delivery(pid, msg)
        # Group 1 never executed ta, but every replica of it crashed.
        checker.finalize(cluster)


class TestTamperedRuns:
    """Corrupt a finished healthy run; the checker must pinpoint it."""

    def test_state_divergence(self):
        cluster = built_cluster()
        store = cluster.stores[0]
        key = next(iter(store.state), None) or "k00000"
        store.state[key] = "corrupted"
        with pytest.raises(SerializabilityViolation,
                           match="state divergence") as exc:
            check_serializability(cluster)
        assert exc.value.context["pid"] == 0
        assert exc.value.context["key"] == key

    def test_read_divergence(self):
        cluster = built_cluster(read_fraction=1.0)
        store, txn_id, index = self._find_read(cluster)
        store._effects[txn_id].reads[index] = "stale value"
        with pytest.raises(SerializabilityViolation,
                           match="read divergence") as exc:
            check_serializability(cluster)
        assert exc.value.context["txn"] == txn_id

    def test_cas_divergence(self):
        cluster = built_cluster(read_fraction=0.0, seed=3)
        store, txn_id, index = self._find_cas(cluster)
        store._effects[txn_id].cas_applied[index] = \
            not store._effects[txn_id].cas_applied[index]
        with pytest.raises(SerializabilityViolation,
                           match="cas divergence"):
            check_serializability(cluster)

    @staticmethod
    def _find_read(cluster):
        for store in cluster.stores.values():
            for txn_id, effects in store._effects.items():
                for index in effects.reads:
                    return store, txn_id, index
        pytest.skip("run recorded no reads")

    @staticmethod
    def _find_cas(cluster):
        for store in cluster.stores.values():
            for txn_id, effects in store._effects.items():
                for index in effects.cas_applied:
                    return store, txn_id, index
        pytest.skip("run recorded no cas ops")


class TestGreenPath:
    def test_serial_order_covers_every_committed_txn(self):
        cluster = built_cluster(seed=8)
        order = check_serializability(cluster)
        assert set(order) == set(cluster.system.log.cast_map)
        # The serial order respects every partition's canonical log.
        checker = StreamingSerializabilityChecker(cluster.system.topology)
        log = cluster.system.log
        for pid in log.processes():
            for msg in log.delivered_messages(pid):
                checker.on_delivery(pid, msg)
        position = {txn: i for i, txn in enumerate(order)}
        for group_order in checker.group_orders().values():
            assert [position[t] for t in group_order] \
                == sorted(position[t] for t in group_order)
