"""Unit tests for the one-shot transaction model and executor."""

import pytest

from repro.store.transaction import Transaction, execute


def txn(*ops, txn_id="t1", client=0):
    return Transaction(txn_id=txn_id, client=client, ops=tuple(ops))


class TestTransactionModel:
    def test_declared_sets(self):
        t = txn(("get", "a"), ("put", "b", 1), ("incr", "c", 2),
                ("cas", "d", None, 9))
        assert t.keys() == ("a", "b", "c", "d")
        assert t.read_set() == ("a", "c", "d")
        assert t.write_set() == ("b", "c", "d")
        assert not t.is_read_only

    def test_read_only(self):
        assert txn(("get", "a"), ("get", "b")).is_read_only

    def test_keys_dedupe_preserves_first_use_order(self):
        t = txn(("put", "b", 1), ("get", "a"), ("incr", "b", 1))
        assert t.keys() == ("b", "a")

    def test_payload_round_trip(self):
        t = txn(("get", "a"), ("cas", "b", 0, 5))
        assert Transaction.from_payload(t.to_payload()) == t

    def test_empty_ops_rejected(self):
        with pytest.raises(ValueError, match="at least one operation"):
            Transaction(txn_id="t", client=0, ops=())

    def test_unknown_op_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown op kind"):
            txn(("del", "a"))

    def test_malformed_arity_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            txn(("put", "a"))
        with pytest.raises(ValueError, match="malformed"):
            txn(("get", "a", 1))


class TestExecute:
    def test_put_get_incr_cas(self):
        state = {}
        t = txn(("put", "a", 10), ("get", "a"), ("incr", "b", 3),
                ("cas", "c", None, 7), ("cas", "a", 99, 0))
        effects = execute(t, state)
        assert state == {"a": 10, "b": 3, "c": 7}
        assert effects.reads == {1: 10}  # get sees the same-txn put
        assert effects.cas_applied == {3: True, 4: False}

    def test_incr_resets_non_integer_values(self):
        state = {"a": "text"}
        execute(txn(("incr", "a", 5)), state)
        assert state == {"a": 5}

    def test_missing_key_reads_none(self):
        effects = execute(txn(("get", "nope")), {})
        assert effects.reads == {0: None}

    def test_owned_filter_skips_foreign_keys(self):
        state = {}
        t = txn(("put", "mine", 1), ("put", "theirs", 2), ("get", "theirs"))
        effects = execute(t, state, owned=lambda k: k == "mine")
        assert state == {"mine": 1}
        assert effects.reads == {}  # foreign read not recorded

    def test_partitioned_execution_equals_projected_global(self):
        """The identity the serializability checker relies on."""
        ops = (("put", "a", 1), ("incr", "b", 2), ("get", "a"),
               ("cas", "b", 2, 9), ("get", "b"))
        for partition in (("a",), ("b",), ("a", "b")):
            global_state, local_state = {}, {}
            g = execute(txn(*ops), global_state)
            l = execute(txn(*ops), local_state, owned=lambda k: k in partition)
            assert local_state == {k: v for k, v in global_state.items()
                                   if k in partition}
            for index, value in l.reads.items():
                assert g.reads[index] == value
            for index, applied in l.cas_applied.items():
                assert g.cas_applied[index] == applied
