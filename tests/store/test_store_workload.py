"""Unit tests for the store spec and transaction workload generator."""

import random

import pytest

from repro.net.topology import Topology
from repro.store.spec import StoreSpec
from repro.store.workload import (
    data_group_ids,
    key_name,
    keys_by_group,
    partition_keys,
    txn_workload,
)

TOPO = Topology([2, 2, 2, 2])
CLIENTS = [0, 2, 4, 6]


class TestStoreSpec:
    def test_defaults_valid(self):
        StoreSpec()

    @pytest.mark.parametrize("kwargs,match", [
        (dict(n_keys=0), "positive n_keys"),
        (dict(routing="teleport"), "unknown routing"),
        (dict(kind="bursty"), "unknown arrival kind"),
        (dict(clients_per_group=0), "positive clients_per_group"),
        (dict(read_fraction=1.5), "within"),
        (dict(multi_partition_fraction=-0.1), "within"),
        (dict(max_partitions=1), "max_partitions"),
        (dict(ops_per_txn=0), "positive ops_per_txn"),
        (dict(zipf_skew=-1.0), "non-negative zipf_skew"),
        (dict(kind="poisson", rate=0.0), "positive rate"),
        (dict(kind="periodic", period=0.0), "positive period"),
        (dict(kind="periodic", count=-1), "non-negative count"),
    ])
    def test_invalid_knobs_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            StoreSpec(**kwargs)

    def test_horizon_covers_both_arrival_kinds(self):
        assert StoreSpec(kind="poisson", duration=30.0).horizon == 30.0
        assert StoreSpec(kind="periodic", period=2.0, count=5,
                         start=1.0).horizon == 9.0

    def test_from_dict_revives_tuples(self):
        spec = StoreSpec(data_groups=(0, 2))
        revived = StoreSpec.from_dict(
            {**spec.__dict__, "data_groups": [0, 2]})
        assert revived == spec


class TestPartitioning:
    def test_round_robin_over_data_groups(self):
        spec = StoreSpec(n_keys=6, data_groups=(1, 3))
        assignment = partition_keys(spec, TOPO)
        assert assignment == {key_name(i): (1, 3)[i % 2] for i in range(6)}

    def test_all_groups_by_default(self):
        by_group = keys_by_group(StoreSpec(n_keys=8), TOPO)
        assert sorted(by_group) == [0, 1, 2, 3]
        assert all(len(keys) == 2 for keys in by_group.values())

    def test_unknown_data_group_rejected(self):
        with pytest.raises(ValueError, match="not in topology"):
            data_group_ids(StoreSpec(data_groups=(9,)), TOPO)

    def test_empty_data_groups_rejected(self):
        with pytest.raises(ValueError, match="must not be empty"):
            data_group_ids(StoreSpec(data_groups=()), TOPO)


class TestTxnWorkload:
    SPEC = StoreSpec(n_keys=24, rate=1.0, duration=60.0,
                     multi_partition_fraction=0.5, ops_per_txn=2)

    def test_seed_deterministic(self):
        a = txn_workload(self.SPEC, TOPO, CLIENTS, random.Random(7))
        b = txn_workload(self.SPEC, TOPO, CLIENTS, random.Random(7))
        assert a == b and a

    def test_txn_ids_assigned_by_arrival(self):
        plans = txn_workload(self.SPEC, TOPO, CLIENTS, random.Random(1))
        assert [p.txn_id for p in plans[:3]] == ["t00000", "t00001", "t00002"]
        assert all(plans[i].time <= plans[i + 1].time
                   for i in range(len(plans) - 1))

    def test_clients_and_ops_within_spec(self):
        plans = txn_workload(self.SPEC, TOPO, CLIENTS, random.Random(3))
        keymap = partition_keys(self.SPEC, TOPO)
        for plan in plans:
            assert plan.client in CLIENTS
            assert len(plan.ops) >= 1
            groups = {keymap[op[1]] for op in plan.ops}
            assert 1 <= len(groups) <= self.SPEC.max_partitions

    def test_multi_partition_fraction_realised(self):
        spec = StoreSpec(n_keys=24, rate=4.0, duration=100.0,
                         multi_partition_fraction=0.5)
        plans = txn_workload(spec, TOPO, CLIENTS, random.Random(11))
        keymap = partition_keys(spec, TOPO)
        multi = sum(
            1 for p in plans
            if len({keymap[op[1]] for op in p.ops}) > 1
        )
        assert 0.3 < multi / len(plans) < 0.7

    def test_zero_multi_partition_fraction_stays_local(self):
        spec = StoreSpec(n_keys=24, rate=2.0, duration=50.0,
                         multi_partition_fraction=0.0)
        keymap = partition_keys(spec, TOPO)
        for p in txn_workload(spec, TOPO, CLIENTS, random.Random(2)):
            assert len({keymap[op[1]] for op in p.ops}) == 1

    def test_zipf_skew_concentrates_popularity(self):
        flat_spec = StoreSpec(n_keys=40, rate=4.0, duration=200.0,
                              data_groups=(0,), zipf_skew=0.0)
        hot_spec = StoreSpec(n_keys=40, rate=4.0, duration=200.0,
                             data_groups=(0,), zipf_skew=2.0)

        def top_key_share(spec):
            plans = txn_workload(spec, TOPO, CLIENTS, random.Random(5))
            counts = {}
            total = 0
            for p in plans:
                for op in p.ops:
                    counts[op[1]] = counts.get(op[1], 0) + 1
                    total += 1
            return max(counts.values()) / total

        assert top_key_share(hot_spec) > 2 * top_key_share(flat_spec)

    def test_read_fraction_extremes(self):
        reads_only = StoreSpec(n_keys=8, rate=2.0, duration=30.0,
                               read_fraction=1.0)
        for p in txn_workload(reads_only, TOPO, CLIENTS, random.Random(4)):
            assert all(op[0] == "get" for op in p.ops)
        writes_only = StoreSpec(n_keys=8, rate=2.0, duration=30.0,
                                read_fraction=0.0)
        for p in txn_workload(writes_only, TOPO, CLIENTS, random.Random(4)):
            assert all(op[0] in ("put", "incr", "cas") for op in p.ops)

    def test_periodic_arrivals(self):
        spec = StoreSpec(kind="periodic", period=2.0, count=4, n_keys=8)
        plans = txn_workload(spec, TOPO, CLIENTS, random.Random(0))
        assert [p.time for p in plans] == [0.0, 2.0, 4.0, 6.0]

    def test_no_clients_rejected(self):
        with pytest.raises(ValueError, match="at least one client"):
            txn_workload(self.SPEC, TOPO, [], random.Random(0))
