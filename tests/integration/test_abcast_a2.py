"""Integration tests for Algorithm A2 (atomic broadcast, degree 1)."""

import pytest

from repro.checkers.properties import check_all
from repro.checkers.quiescence import check_quiescence
from repro.failure.schedule import CrashSchedule
from repro.net.topology import LatencyModel
from repro.runtime.builder import build_system
from repro.workload.generators import poisson_workload, schedule_workload


class TestBasicDelivery:
    def test_cold_broadcast_delivers_everywhere(self):
        s = build_system(protocol="a2", group_sizes=[3, 3], seed=1)
        m = s.cast(sender=0)
        s.run_quiescent()
        for pid in range(6):
            assert s.log.sequence(pid) == [m.mid]

    def test_cold_broadcast_degree_two(self):
        """Theorem 5.2: a broadcast into a quiescent system pays 2."""
        s = build_system(protocol="a2", group_sizes=[3, 3], seed=1)
        m = s.cast(sender=0)
        s.run_quiescent()
        assert s.meter.latency_degree(m.mid) == 2

    def test_warm_broadcast_degree_one(self):
        """Theorem 5.1: a broadcast riding an active round pays 1."""
        s = build_system(protocol="a2", group_sizes=[3, 3], seed=1,
                         propose_delay=0.05)
        s.start_rounds()
        m = s.cast_at(0.01, 0)
        s.run_quiescent()
        assert s.meter.latency_degree(m.mid) == 1

    def test_warm_broadcast_from_each_group(self):
        s = build_system(protocol="a2", group_sizes=[3, 3, 3], seed=1,
                         propose_delay=0.05)
        s.start_rounds()
        a = s.cast_at(0.01, 0)
        b = s.cast_at(0.01, 3)
        c = s.cast_at(0.01, 6)
        s.run_quiescent()
        for m in (a, b, c):
            assert s.meter.latency_degree(m.mid) == 1
        check_all(s.log, s.topology)

    def test_multicast_destinations_rejected(self):
        s = build_system(protocol="a2", group_sizes=[3, 3], seed=1)
        with pytest.raises(ValueError):
            s.cast(sender=0, dest_groups=(0,))

    def test_properties_hold_failure_free(self):
        s = build_system(protocol="a2", group_sizes=[3, 3, 3], seed=5)
        for i, sender in enumerate([0, 3, 6, 1, 4]):
            s.cast_at(0.5 * i, sender)
        s.run_quiescent()
        check_all(s.log, s.topology)


class TestQuiescence:
    def test_system_quiesces_after_finite_workload(self):
        """Proposition A.9: finite casts => processes go silent."""
        s = build_system(protocol="a2", group_sizes=[3, 3], seed=1,
                         trace=True)
        for i in range(3):
            s.cast_at(float(i), 0)
        report = check_quiescence(s.sim, s.network.trace)
        assert report.quiescent
        assert report.last_send_at is not None

    def test_restart_after_quiescence(self):
        """Prediction mistakes are tolerated: a late broadcast still
        delivers (paper Section 5.2, Barrier restart)."""
        s = build_system(protocol="a2", group_sizes=[3, 3], seed=1)
        a = s.cast(sender=0)
        b = s.cast_at(100.0, 3)  # long after the system went quiet
        s.run_quiescent()
        check_all(s.log, s.topology)
        assert s.meter.latency_degree(b.mid) == 2

    def test_empty_trailing_round_then_stop(self):
        """After a useful round the algorithm runs exactly one more
        (empty) round, then stops (lines 21-23)."""
        s = build_system(protocol="a2", group_sizes=[3, 3], seed=1)
        s.cast(sender=0)
        s.run_quiescent()
        endpoint = s.endpoints[0]
        assert endpoint.useful_rounds == 1
        assert endpoint.rounds_executed == endpoint.useful_rounds + 1

    def test_sustained_traffic_keeps_rounds_useful(self):
        """Section 5.3: broadcasts faster than a round keep every round
        useful and the algorithm never reactive."""
        s = build_system(
            protocol="a2", group_sizes=[2, 2], seed=3,
            latency=LatencyModel.wan(inter_ms=100.0),
            propose_delay=5.0,
        )
        plans = poisson_workload(
            s.topology, s.rng.stream("wl"), rate=0.05, duration=2000.0,
        )  # 50 msg/s in ms units... 0.05/ms = 50/s with 100 ms rounds
        messages = schedule_workload(s, plans)
        s.run_quiescent()
        check_all(s.log, s.topology)
        endpoint = s.endpoints[0]
        useful_fraction = endpoint.useful_rounds / endpoint.rounds_executed
        assert useful_fraction > 0.8


class TestFaultTolerance:
    def test_caster_crash_after_cast(self):
        crashes = CrashSchedule({0: 0.5})
        s = build_system(protocol="a2", group_sizes=[3, 3], seed=1,
                         crashes=crashes)
        m = s.cast(sender=0)
        s.run_quiescent()
        check_all(s.log, s.topology, crashes)
        for pid in (1, 2, 3, 4, 5):
            assert m.mid in s.log.sequence(pid)

    def test_minority_crashes(self):
        crashes = CrashSchedule({1: 1.0, 4: 2.0})
        s = build_system(protocol="a2", group_sizes=[3, 3], seed=2,
                         crashes=crashes)
        for i in range(4):
            s.cast_at(float(i), (0, 3)[i % 2])
        s.run_quiescent()
        check_all(s.log, s.topology, crashes)

    def test_consensus_leader_crash(self):
        crashes = CrashSchedule({0: 0.8, 3: 1.2})
        s = build_system(protocol="a2", group_sizes=[3, 3], seed=8,
                         crashes=crashes)
        s.cast(sender=1)
        s.cast_at(2.0, 4)
        s.run_quiescent()
        check_all(s.log, s.topology, crashes)

    def test_wan_with_crashes_and_traffic(self):
        crashes = CrashSchedule({2: 150.0, 8: 250.0})
        s = build_system(
            protocol="a2", group_sizes=[3, 3, 3], seed=21,
            latency=LatencyModel.wan(), crashes=crashes,
            propose_delay=5.0,
        )
        plans = poisson_workload(
            s.topology, s.rng.stream("wl"), rate=0.01, duration=600.0,
        )
        schedule_workload(s, plans)
        s.run_quiescent()
        check_all(s.log, s.topology, crashes)


class TestNonGenuineWrapper:
    def test_multicast_over_broadcast_filters(self):
        s = build_system(protocol="nongenuine", group_sizes=[2, 2, 2],
                         seed=1)
        m = s.cast(sender=0, dest_groups=(0, 1))
        s.run_quiescent()
        for pid in (0, 1, 2, 3):
            assert s.log.sequence(pid) == [m.mid]
        for pid in (4, 5):
            assert s.log.sequence(pid) == []

    def test_warm_nongenuine_beats_genuine_latency(self):
        """The introduction's tradeoff: degree 1 vs A1's 2 — paid for
        with system-wide message complexity."""
        s = build_system(protocol="nongenuine", group_sizes=[2, 2, 2],
                         seed=1, propose_delay=0.05)
        s.start_rounds()
        m = s.cast_at(0.01, 0, (0, 1))
        s.run_quiescent()
        assert s.meter.latency_degree(m.mid) == 1

    def test_properties_hold(self):
        s = build_system(protocol="nongenuine", group_sizes=[2, 2, 2],
                         seed=6)
        s.cast(sender=0, dest_groups=(0, 1))
        s.cast(sender=2, dest_groups=(1, 2))
        s.cast_at(1.0, 4, (0, 2))
        s.run_quiescent()
        check_all(s.log, s.topology)
