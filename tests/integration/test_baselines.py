"""Integration tests for the Figure 1 baseline protocols."""

import pytest

from repro.checkers.properties import check_all
from repro.runtime.builder import build_system
from repro.workload.generators import (
    poisson_workload,
    schedule_workload,
    uniform_k_groups,
)


def _run_workload(protocol, group_sizes, seed, rate=1.0, duration=8.0,
                  destinations=None, **kwargs):
    s = build_system(protocol=protocol, group_sizes=group_sizes, seed=seed,
                     **kwargs)
    plans = poisson_workload(
        s.topology, s.rng.stream("wl"), rate=rate, duration=duration,
        destinations=destinations,
    )
    messages = schedule_workload(s, plans)
    s.run_quiescent()
    check_all(s.log, s.topology)
    return s, messages


class TestSkeen:
    def test_two_group_degree_two(self):
        s = build_system(protocol="skeen", group_sizes=[3, 3], seed=1)
        m = s.cast(sender=0, dest_groups=(0, 1))
        s.run_quiescent()
        assert s.meter.latency_degree(m.mid) == 2

    def test_degree_constant_in_k(self):
        for k, sizes in [(2, [2, 2]), (3, [2, 2, 2]), (4, [2, 2, 2, 2])]:
            s = build_system(protocol="skeen", group_sizes=sizes, seed=1)
            m = s.cast(sender=0, dest_groups=tuple(range(k)))
            s.run_quiescent()
            assert s.meter.latency_degree(m.mid) == 2, f"k={k}"

    def test_total_order_under_load(self):
        s, _ = _run_workload("skeen", [3, 3], seed=2,
                             destinations=uniform_k_groups(2))

    def test_single_process_groups(self):
        s, _ = _run_workload("skeen", [1, 1, 1], seed=3,
                             destinations=uniform_k_groups(2))


class TestFritzke:
    def test_degree_two(self):
        s = build_system(protocol="fritzke", group_sizes=[3, 3], seed=1)
        m = s.cast(sender=0, dest_groups=(0, 1))
        s.run_quiescent()
        assert s.meter.latency_degree(m.mid) == 2

    def test_total_order_under_load(self):
        _run_workload("fritzke", [3, 3], seed=4,
                      destinations=uniform_k_groups(2))

    def test_more_messages_than_a1(self):
        """[5]'s uniform rmcast + mandatory stage s2 cost extra traffic."""

        def totals(protocol):
            s = build_system(protocol=protocol, group_sizes=[3, 3], seed=1)
            s.cast(sender=0, dest_groups=(0, 1))
            s.cast(sender=3, dest_groups=(0,))
            s.run_quiescent()
            return s.intra_group_messages + s.inter_group_messages

        assert totals("a1") < totals("fritzke")


class TestRing:
    def test_degree_grows_with_k(self):
        degrees = {}
        for k, sizes in [(2, [2, 2]), (3, [2, 2, 2]), (4, [2, 2, 2, 2])]:
            s = build_system(protocol="ring", group_sizes=sizes, seed=1)
            m = s.cast(sender=0, dest_groups=tuple(range(k)))
            s.run_quiescent()
            degrees[k] = s.meter.latency_degree(m.mid)
        # The caster sits in the first ring group: k-1 handoffs + final.
        assert degrees == {2: 2, 3: 3, 4: 4}
        assert degrees[4] > 2  # strictly worse than A1 for k >= 3

    def test_total_order_under_load(self):
        _run_workload("ring", [2, 2, 2], seed=5, rate=0.5,
                      destinations=uniform_k_groups(2))

    def test_single_group_message(self):
        s = build_system(protocol="ring", group_sizes=[3, 3], seed=1)
        m = s.cast(sender=0, dest_groups=(0,))
        s.run_quiescent()
        assert s.log.sequence(0) == [m.mid]
        assert s.log.sequence(3) == []

    def test_serialisation_blocks_second_message(self):
        """A group handles one ring message at a time, both delivered."""
        s = build_system(protocol="ring", group_sizes=[2, 2], seed=6)
        a = s.cast(sender=0, dest_groups=(0, 1))
        b = s.cast(sender=1, dest_groups=(0, 1))
        s.run_quiescent()
        check_all(s.log, s.topology)
        assert set(s.log.sequence(0)) == {a.mid, b.mid}

    def test_disjoint_rings_do_not_interfere(self):
        s = build_system(protocol="ring", group_sizes=[2, 2, 2, 2], seed=7)
        a = s.cast(sender=0, dest_groups=(0, 1))
        b = s.cast(sender=4, dest_groups=(2, 3))
        s.run_quiescent()
        check_all(s.log, s.topology)


class TestGlobalConsensus:
    def test_degree_four(self):
        """[10]: ts exchange + cross-group consensus = 4 hops."""
        s = build_system(protocol="global", group_sizes=[3, 3], seed=1)
        m = s.cast(sender=0, dest_groups=(0, 1))
        s.run_quiescent()
        assert s.meter.latency_degree(m.mid) == 4

    def test_total_order_under_load(self):
        _run_workload("global", [2, 2, 2], seed=8, rate=0.5,
                      destinations=uniform_k_groups(2))

    def test_single_group_message(self):
        s = build_system(protocol="global", group_sizes=[3, 3], seed=1)
        m = s.cast(sender=3, dest_groups=(1,))
        s.run_quiescent()
        assert s.log.sequence(3) == [m.mid]


class TestSequencerBroadcast:
    def test_degree_two(self):
        s = build_system(protocol="sequencer", group_sizes=[3, 3], seed=1)
        # Cast from a non-sequencer process of group 0: the sequencer
        # (pid 0) is in the caster's group, so numbering costs no
        # inter-group hop and final delivery lands at degree 2.
        m = s.cast(sender=1)
        s.run_quiescent()
        assert s.meter.latency_degree(m.mid) == 2

    def test_total_order_under_load(self):
        _run_workload("sequencer", [3, 3], seed=9)

    def test_optimistic_precedes_final(self):
        s = build_system(protocol="sequencer", group_sizes=[2, 2], seed=1)
        m = s.cast(sender=1)
        s.run_quiescent()
        assert s.endpoints[3].optimistic_deliveries == [m.mid]

    def test_interleaved_senders_from_both_groups(self):
        s = build_system(protocol="sequencer", group_sizes=[2, 2], seed=2)
        for t, sender in [(0.0, 1), (0.1, 3), (0.2, 0), (0.3, 2)]:
            s.cast_at(t, sender)
        s.run_quiescent()
        check_all(s.log, s.topology)
        assert len(s.log.sequence(0)) == 4


class TestOptimisticBroadcast:
    def test_final_degree_two_from_remote_group(self):
        s = build_system(protocol="optimistic", group_sizes=[3, 3], seed=1)
        m = s.cast(sender=3)  # sequencer is pid 0, in the other group
        s.run_quiescent()
        assert s.meter.latency_degree(m.mid) == 2

    def test_colocated_caster_degree_one(self):
        """The caster sharing the sequencer's group gets lucky: the
        ORDER rides the same hop as the DATA."""
        s = build_system(protocol="optimistic", group_sizes=[3, 3], seed=1)
        m = s.cast(sender=0)
        s.run_quiescent()
        assert s.meter.latency_degree(m.mid) == 1

    def test_optimistic_delivery_is_immediate(self):
        s = build_system(protocol="optimistic", group_sizes=[2, 2], seed=1)
        m = s.cast(sender=2)
        s.run_quiescent()
        for pid in range(4):
            assert m.mid in s.endpoints[pid].optimistic_deliveries

    def test_message_complexity_linear(self):
        """O(n) per message: n DATA + n ORDER copies."""
        s = build_system(protocol="optimistic", group_sizes=[3, 3], seed=1)
        s.cast(sender=3)
        s.run_quiescent()
        n = s.topology.n_processes
        assert s.network.stats.total_messages == 2 * n

    def test_total_order_under_load(self):
        _run_workload("optimistic", [3, 3], seed=10)


class TestDeterministicMerge:
    def test_degree_one(self):
        """The strong-model protocol beats the genuine lower bound."""
        s = build_system(protocol="detmerge", group_sizes=[3, 3], seed=1)
        m = s.cast(sender=0)
        s.run_quiescent()
        assert s.meter.latency_degree(m.mid) == 1

    def test_total_order_under_load(self):
        _run_workload("detmerge", [2, 2], seed=11, rate=2.0, duration=5.0)

    def test_run_is_finite(self):
        """The finite-run adaptation actually quiesces."""
        s = build_system(protocol="detmerge", group_sizes=[2, 2], seed=1)
        s.cast(sender=0)
        s.cast_at(3.0, 2)
        s.run_quiescent(max_events=200_000)

    def test_merge_order_deterministic_across_processes(self):
        s = build_system(protocol="detmerge", group_sizes=[2, 2], seed=12)
        for t, sender in [(0.0, 0), (0.05, 2), (0.1, 1), (0.15, 3)]:
            s.cast_at(t, sender)
        s.run_quiescent()
        sequences = {tuple(s.log.sequence(p)) for p in range(4)}
        assert len(sequences) == 1
