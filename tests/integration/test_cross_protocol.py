"""Cross-protocol validation: one workload, every protocol, same laws.

The strongest correctness argument available to a reproduction: five
independent implementations of atomic multicast (and four of atomic
broadcast) are driven by the *same* workload plan and must all satisfy
the same paper properties, deliver the same message sets, and respect
the same latency-degree floors.  A bug in any single protocol — or in
the shared substrate — shows up as a divergence here.
"""

import pytest

from repro.checkers.properties import check_all
from repro.runtime.builder import build_system
from repro.workload.generators import (
    poisson_workload,
    schedule_workload,
    uniform_k_groups,
)

MULTICASTS = ("a1", "a1-noskip", "skeen", "fritzke", "ring", "global")
BROADCASTS = ("a2", "sequencer", "optimistic", "detmerge")


def _multicast_run(protocol, seed=17):
    system = build_system(protocol=protocol, group_sizes=[2, 2, 2],
                          seed=seed)
    plans = poisson_workload(
        system.topology, system.rng.stream("shared-wl"), rate=0.6,
        duration=12.0, destinations=uniform_k_groups(2),
    )
    messages = schedule_workload(system, plans)
    system.run_quiescent()
    return system, messages


def _broadcast_run(protocol, seed=23):
    system = build_system(protocol=protocol, group_sizes=[2, 2],
                          seed=seed)
    plans = poisson_workload(
        system.topology, system.rng.stream("shared-wl"), rate=0.5,
        duration=10.0,
    )
    messages = schedule_workload(system, plans)
    system.run_quiescent()
    return system, messages


@pytest.fixture(scope="module")
def multicast_runs():
    return {p: _multicast_run(p) for p in MULTICASTS}


@pytest.fixture(scope="module")
def broadcast_runs():
    return {p: _broadcast_run(p) for p in BROADCASTS}


class TestMulticastFamily:
    @pytest.mark.parametrize("protocol", MULTICASTS)
    def test_properties_hold(self, multicast_runs, protocol):
        system, _ = multicast_runs[protocol]
        check_all(system.log, system.topology)

    def test_same_delivery_sets_everywhere(self, multicast_runs):
        """Same plan => every protocol delivers exactly the same
        operations at exactly the same processes.

        Message ids come from a process-global counter (they differ
        between runs), so footprints compare the workload payloads —
        the plan indices — instead.
        """
        footprints = {}
        for protocol, (system, messages) in multicast_runs.items():
            footprints[protocol] = tuple(sorted(
                (pid, frozenset(
                    m.payload
                    for m in system.log.delivered_messages(pid)))
                for pid in system.topology.processes
            ))
        assert len(set(footprints.values())) == 1

    @pytest.mark.parametrize("protocol", MULTICASTS)
    def test_genuine_degree_floor(self, multicast_runs, protocol):
        system, messages = multicast_runs[protocol]
        for msg in messages:
            if len(msg.dest_groups) < 2:
                continue
            degree = system.meter.latency_degree(msg.mid)
            assert degree is not None and degree >= 2, (protocol, msg.mid)

    def test_a1_is_the_cheapest_optimal_protocol(self, multicast_runs):
        """Among the degree-2 protocols, A1 sends the least traffic."""
        totals = {}
        for protocol in ("a1", "fritzke"):
            system, _ = multicast_runs[protocol]
            totals[protocol] = (system.inter_group_messages
                                + system.intra_group_messages)
        assert totals["a1"] < totals["fritzke"]


class TestBroadcastFamily:
    @pytest.mark.parametrize("protocol", BROADCASTS)
    def test_properties_hold(self, broadcast_runs, protocol):
        system, _ = broadcast_runs[protocol]
        check_all(system.log, system.topology)

    def test_same_delivery_sets_everywhere(self, broadcast_runs):
        footprints = {}
        for protocol, (system, messages) in broadcast_runs.items():
            footprints[protocol] = tuple(sorted(
                (pid, frozenset(
                    m.payload
                    for m in system.log.delivered_messages(pid)))
                for pid in system.topology.processes
            ))
        assert len(set(footprints.values())) == 1

    @pytest.mark.parametrize("protocol", BROADCASTS)
    def test_every_process_agrees_on_one_total_order(
            self, broadcast_runs, protocol):
        """For broadcast the projection is trivial: the full sequences
        must be prefix-related; at quiescence they are equal."""
        system, _ = broadcast_runs[protocol]
        sequences = {tuple(system.log.sequence(p))
                     for p in system.topology.processes}
        assert len(sequences) == 1


class TestReplicationOverEveryProtocol:
    @pytest.mark.parametrize("protocol", ("a1", "skeen", "ring", "global",
                                          "fritzke"))
    def test_kv_store_converges_on_all_multicasts(self, protocol):
        from repro.replication import KVCluster

        cluster = KVCluster.build(
            [2, 2], partitions={"x": 0, "y": 1},
            protocol=protocol, seed=31,
        )
        cluster.store(0).put_many({"x": 1, "y": 1})
        cluster.store(2).put_many({"x": 2, "y": 2})
        cluster.store(1).put("x", 3)
        cluster.system.run_quiescent()
        cluster.assert_convergence()
        # Cross-partition writes applied atomically: x and y agree on
        # which multi-key op came last.
        x = cluster.store(0).get("x")
        y = cluster.store(2).get("y")
        if x in (1, 2):
            assert y == x or cluster.store(0).applied[-1].startswith("op")
