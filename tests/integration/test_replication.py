"""Integration tests for the replicated stores (KV + ledger)."""

import pytest

from repro.checkers.properties import check_all
from repro.failure.schedule import CrashSchedule
from repro.replication import KVCluster, LedgerCluster, PartitionMap
from repro.net.topology import Topology


class TestPartitionMap:
    def test_explicit_mapping(self):
        topo = Topology([2, 2])
        pmap = PartitionMap(topo, explicit={"users": 0, "orders": 1})
        assert pmap.group_of("users") == 0
        assert pmap.group_of("orders") == 1

    def test_hash_fallback_stable_and_in_range(self):
        topo = Topology([2, 2, 2])
        pmap = PartitionMap(topo)
        for key in ("a", "b", "c", "some:key"):
            gid = pmap.group_of(key)
            assert gid == pmap.group_of(key)
            assert gid in topo.group_ids

    def test_groups_of_multiple_keys(self):
        topo = Topology([2, 2])
        pmap = PartitionMap(topo, explicit={"x": 0, "y": 1, "z": 1})
        assert pmap.groups_of(["x", "y", "z"]) == (0, 1)
        assert pmap.groups_of(["y", "z"]) == (1,)

    def test_unknown_group_rejected(self):
        with pytest.raises(ValueError):
            PartitionMap(Topology([2]), explicit={"x": 5})

    def test_is_replica(self):
        topo = Topology([2, 2])
        pmap = PartitionMap(topo, explicit={"x": 1})
        assert pmap.is_replica(2, "x")
        assert not pmap.is_replica(0, "x")


class TestKVStore:
    def _cluster(self, protocol="a1", seed=1):
        return KVCluster.build(
            [2, 2, 2],
            partitions={"users": 0, "orders": 1, "stock": 2},
            protocol=protocol, seed=seed,
        )

    def test_single_partition_write_and_read(self):
        cluster = self._cluster()
        cluster.store(0).put("users", {"alice": 1})
        cluster.system.run_quiescent()
        assert cluster.store(1).get("users") == {"alice": 1}
        cluster.assert_convergence()

    def test_cross_partition_write_atomic(self):
        cluster = self._cluster()
        cluster.store(2).put_many({"orders": ["o1"], "stock": 9})
        cluster.system.run_quiescent()
        assert cluster.store(3).get("orders") == ["o1"]
        assert cluster.store(4).get("stock") == 9
        cluster.assert_convergence()

    def test_reads_outside_partition_rejected(self):
        cluster = self._cluster()
        with pytest.raises(KeyError):
            cluster.store(0).get("orders")

    def test_conflicting_writes_order_identically(self):
        cluster = self._cluster()
        a = cluster.store(2).put_many({"orders": "A", "stock": "A"})
        b = cluster.store(4).put_many({"orders": "B", "stock": "B"})
        cluster.system.run_quiescent()
        # Replicas of both partitions applied a and b in one order.
        orders = {
            pid: tuple(op for op in cluster.store(pid).applied
                       if op in (a, b))
            for pid in (2, 3, 4, 5)
        }
        assert len(set(orders.values())) == 1
        # Final value identical on every replica of each partition.
        assert cluster.store(2).get("orders") == cluster.store(3).get("orders")
        cluster.assert_convergence()

    def test_completion_callback_fires(self):
        cluster = self._cluster()
        done = []
        cluster.store(0).put("users", 1, on_applied=done.append)
        cluster.system.run_quiescent()
        assert len(done) == 1

    def test_callback_requires_local_replica(self):
        cluster = self._cluster()
        with pytest.raises(ValueError):
            cluster.store(0).put("orders", 1, on_applied=lambda op: None)

    def test_runs_on_alternative_protocols(self):
        """The store is protocol-agnostic: same app code, same results."""
        results = {}
        for protocol in ("a1", "skeen", "fritzke"):
            cluster = self._cluster(protocol=protocol, seed=3)
            cluster.store(0).put("users", "u")
            cluster.store(2).put_many({"orders": "o", "stock": "s"})
            cluster.system.run_quiescent()
            cluster.assert_convergence()
            results[protocol] = (
                cluster.store(1).get("users"),
                cluster.store(3).get("orders"),
                cluster.store(5).get("stock"),
            )
        assert len(set(results.values())) == 1

    def test_survives_minority_crashes(self):
        cluster = KVCluster.build(
            [3, 3], partitions={"x": 0, "y": 1}, protocol="a1", seed=5,
            crashes=CrashSchedule({0: 1.0, 4: 2.0}),
        )
        cluster.store(1).put_many({"x": 1, "y": 2})
        cluster.system.run_quiescent()
        cluster.assert_convergence()
        assert cluster.store(2).get("x") == 1
        assert cluster.store(5).get("y") == 2

    def test_metering_still_works_through_the_store(self):
        cluster = self._cluster()
        op = cluster.store(0).put_many({"users": 1, "orders": 2})
        cluster.system.run_quiescent()
        assert cluster.system.meter.latency_degree(op) == 2
        check_all(cluster.system.log, cluster.system.topology)


class TestLedger:
    def _cluster(self, seed=1, **kwargs):
        return LedgerCluster.build(
            [2, 2], initial_balances={"a": 100, "b": 50},
            protocol="a2", seed=seed, **kwargs,
        )

    def test_transfer_applies_everywhere(self):
        cluster = self._cluster()
        cluster.ledger(0).transfer("a", "b", 40)
        cluster.system.run_quiescent()
        for pid in range(4):
            assert cluster.ledger(pid).balance("a") == 60
            assert cluster.ledger(pid).balance("b") == 90
        cluster.assert_convergence()

    def test_double_spend_resolved_identically(self):
        cluster = self._cluster()
        cluster.ledger(0).transfer("a", "b", 80)
        cluster.ledger(2).transfer("a", "b", 80)
        cluster.system.run_quiescent()
        cluster.assert_convergence()
        any_ledger = cluster.ledger(1)
        assert len(any_ledger.committed) == 1
        assert len(any_ledger.rejected) == 1
        assert any_ledger.balance("a") == 20

    def test_invalid_amount_rejected_locally(self):
        cluster = self._cluster()
        with pytest.raises(ValueError):
            cluster.ledger(0).transfer("a", "b", 0)

    def test_conservation_of_funds(self):
        cluster = self._cluster(seed=4)
        for i, (src, dst, amt) in enumerate(
                [("a", "b", 10), ("b", "a", 5), ("a", "b", 200),
                 ("b", "a", 60)]):
            pid = (0, 2, 1, 3)[i]
            cluster.system.sim.call_at(
                float(i), lambda p=pid, s=src, d=dst, a=amt:
                    cluster.ledger(p).transfer(s, d, a))
        cluster.system.run_quiescent()
        cluster.assert_convergence()
        total = (cluster.ledger(0).balance("a")
                 + cluster.ledger(0).balance("b"))
        assert total == 150  # initial sum, conserved

    def test_survives_minority_crashes(self):
        cluster = LedgerCluster.build(
            [3, 3], initial_balances={"a": 100},
            protocol="a2", seed=9,
            crashes=CrashSchedule({2: 0.5, 5: 1.5}),
        )
        cluster.ledger(0).transfer("a", "b", 10)
        cluster.system.sim.call_at(
            5.0, lambda: cluster.ledger(3).transfer("a", "b", 20))
        cluster.system.run_quiescent()
        cluster.assert_convergence()
        assert cluster.ledger(1).balance("b") == 30
