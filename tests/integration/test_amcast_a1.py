"""Integration tests for Algorithm A1 (genuine atomic multicast)."""

import pytest

from repro.checkers.genuineness import check_genuineness
from repro.checkers.properties import check_all
from repro.core.interfaces import STAGE_S3
from repro.failure.schedule import CrashSchedule
from repro.net.topology import LatencyModel
from repro.runtime.builder import build_system
from repro.workload.generators import (
    poisson_workload,
    schedule_workload,
    uniform_k_groups,
)


class TestBasicDelivery:
    def test_single_group_local_cast_degree_zero(self):
        s = build_system(protocol="a1", group_sizes=[3, 3], seed=1)
        m = s.cast(sender=0, dest_groups=(0,))
        s.run_quiescent()
        assert s.meter.latency_degree(m.mid) == 0
        assert s.log.sequence(0) == [m.mid]
        assert s.log.sequence(3) == []

    def test_single_group_remote_cast_degree_one(self):
        s = build_system(protocol="a1", group_sizes=[3, 3], seed=1)
        m = s.cast(sender=0, dest_groups=(1,))
        s.run_quiescent()
        assert s.meter.latency_degree(m.mid) == 1
        assert s.log.sequence(0) == []
        assert s.log.sequence(3) == [m.mid]

    def test_two_group_cast_degree_two(self):
        """Theorem 4.1: Δ(m, R) = 2 for a message to two groups."""
        s = build_system(protocol="a1", group_sizes=[3, 3], seed=1)
        m = s.cast(sender=0, dest_groups=(0, 1))
        s.run_quiescent()
        assert s.meter.latency_degree(m.mid) == 2
        for pid in range(6):
            assert s.log.sequence(pid) == [m.mid]

    def test_three_group_cast_still_degree_two(self):
        """The latency degree is independent of the group count k."""
        s = build_system(protocol="a1", group_sizes=[2, 2, 2, 2], seed=1)
        m = s.cast(sender=0, dest_groups=(0, 1, 2, 3))
        s.run_quiescent()
        assert s.meter.latency_degree(m.mid) == 2

    def test_outside_caster_degree_two(self):
        """A caster outside every destination group also sees Δ = 2."""
        s = build_system(protocol="a1", group_sizes=[2, 2, 2], seed=1)
        m = s.cast(sender=0, dest_groups=(1, 2))
        s.run_quiescent()
        assert s.meter.latency_degree(m.mid) == 2
        assert s.log.sequence(0) == []

    def test_properties_hold_failure_free(self):
        s = build_system(protocol="a1", group_sizes=[3, 3, 3], seed=7)
        for sender, dest in [(0, (0, 1)), (3, (1, 2)), (6, (0, 2)),
                             (1, (0,)), (4, (0, 1, 2))]:
            s.cast(sender=sender, dest_groups=dest)
        s.run_quiescent()
        check_all(s.log, s.topology)


class TestOrdering:
    def test_concurrent_casts_totally_ordered(self):
        s = build_system(protocol="a1", group_sizes=[3, 3], seed=3)
        a = s.cast(sender=0, dest_groups=(0, 1))
        b = s.cast(sender=3, dest_groups=(0, 1))
        s.run_quiescent()
        seq0, seq3 = s.log.sequence(0), s.log.sequence(3)
        assert set(seq0) == {a.mid, b.mid}
        assert seq0 == seq3  # same relative order everywhere

    def test_overlapping_destination_sets(self):
        """Pairwise ordering across partially overlapping destinations."""
        s = build_system(protocol="a1", group_sizes=[2, 2, 2], seed=5)
        s.cast(sender=0, dest_groups=(0, 1))
        s.cast(sender=2, dest_groups=(1, 2))
        s.cast(sender=4, dest_groups=(0, 2))
        s.cast(sender=0, dest_groups=(0, 1, 2))
        s.run_quiescent()
        check_all(s.log, s.topology)

    def test_burst_of_messages_one_group(self):
        s = build_system(protocol="a1", group_sizes=[3], seed=2)
        messages = [s.cast(sender=i % 3, dest_groups=(0,)) for i in range(10)]
        s.run_quiescent()
        check_all(s.log, s.topology)
        assert len(s.log.sequence(0)) == 10

    def test_poisson_mixed_workload(self):
        s = build_system(protocol="a1", group_sizes=[3, 3, 3], seed=11)
        plans = poisson_workload(
            s.topology, s.rng.stream("wl"), rate=2.0, duration=10.0,
            destinations=uniform_k_groups(2),
        )
        schedule_workload(s, plans)
        s.run_quiescent()
        check_all(s.log, s.topology)
        assert s.log.delivery_count() > 0


class TestGenuineness:
    def test_non_addressees_stay_silent(self):
        s = build_system(protocol="a1", group_sizes=[2, 2, 2], seed=1,
                         trace=True)
        s.cast(sender=0, dest_groups=(0, 1))
        s.run_quiescent()
        check_genuineness(s.network.trace, s.log, s.topology)
        # Group 2 (pids 4, 5) never touched the network.
        assert not ({4, 5} & s.network.trace.participants())

    def test_single_group_message_stays_local(self):
        s = build_system(protocol="a1", group_sizes=[2, 2, 2], seed=1,
                         trace=True)
        s.cast(sender=0, dest_groups=(0,))
        s.run_quiescent()
        assert s.network.stats.inter_group_messages == 0


class TestFaultTolerance:
    def test_caster_crash_after_cast(self):
        """Uniform agreement despite the caster dying immediately."""
        crashes = CrashSchedule({0: 0.5})
        s = build_system(protocol="a1", group_sizes=[3, 3], seed=1,
                         crashes=crashes)
        m = s.cast(sender=0, dest_groups=(0, 1))
        s.run_quiescent()
        check_all(s.log, s.topology, crashes)
        # Every correct addressee delivered.
        for pid in (1, 2, 3, 4, 5):
            assert s.log.sequence(pid) == [m.mid]

    def test_minority_crashes_both_groups(self):
        crashes = CrashSchedule({1: 2.0, 4: 3.0})
        s = build_system(protocol="a1", group_sizes=[3, 3], seed=9,
                         crashes=crashes)
        for i in range(5):
            s.cast(sender=(0, 3)[i % 2], dest_groups=(0, 1))
        s.run_quiescent()
        check_all(s.log, s.topology, crashes)

    def test_leader_crash_mid_protocol(self):
        """Rank-0 (consensus leader) of one group dies mid-run."""
        crashes = CrashSchedule({0: 1.5})
        s = build_system(protocol="a1", group_sizes=[3, 3], seed=4,
                         crashes=crashes)
        s.cast(sender=1, dest_groups=(0, 1))
        s.cast_at(3.0, 3, (0, 1))
        s.run_quiescent()
        check_all(s.log, s.topology, crashes)

    def test_wan_latencies_with_crashes(self):
        crashes = CrashSchedule({2: 50.0, 5: 120.0})
        s = build_system(
            protocol="a1", group_sizes=[3, 3, 3], seed=13,
            latency=LatencyModel.wan(), crashes=crashes,
        )
        plans = poisson_workload(
            s.topology, s.rng.stream("wl"), rate=0.02, duration=400.0,
            destinations=uniform_k_groups(2),
        )
        schedule_workload(s, plans)
        s.run_quiescent()
        check_all(s.log, s.topology, crashes)


class TestStageSkipping:
    def test_noskip_variant_delivers_correctly(self):
        s = build_system(protocol="a1-noskip", group_sizes=[3, 3], seed=1)
        m = s.cast(sender=0, dest_groups=(0, 1))
        n = s.cast(sender=0, dest_groups=(0,))
        s.run_quiescent()
        check_all(s.log, s.topology)
        assert s.meter.latency_degree(m.mid) == 2

    def test_skipping_reduces_intra_group_messages(self):
        """The paper's point: fewer consensus instances, same degree."""

        def run(protocol):
            s = build_system(protocol=protocol, group_sizes=[3, 3], seed=1)
            for i in range(4):
                s.cast(sender=0, dest_groups=(0,))
            s.cast(sender=0, dest_groups=(0, 1))
            s.run_quiescent()
            check_all(s.log, s.topology)
            return s.intra_group_messages

        assert run("a1") < run("a1-noskip")
