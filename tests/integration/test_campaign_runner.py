"""Integration tests for the campaign engine.

The load-bearing guarantee: a campaign executed over a multiprocessing
pool produces bit-identical per-seed metrics to the same campaign run
serially, because every task rebuilds its simulation from the (spec,
seed) pair alone.  These tests pin that, plus the artefact format and
the built-in campaign library.
"""

import dataclasses
import json

import pytest

from repro.campaigns import (
    CAMPAIGNS,
    Campaign,
    CampaignRunner,
    CrashSpec,
    DestinationSpec,
    ScenarioSpec,
    WorkloadSpec,
    get_campaign,
    matrix,
    run_campaign,
    run_scenario_seed,
    verify_determinism,
)
from repro.runtime.runner import Aggregate


def small_campaign(seeds=(1, 2)) -> Campaign:
    base = ScenarioSpec(
        name="small",
        group_sizes=(2, 2),
        workload=WorkloadSpec(
            kind="poisson", rate=0.5, duration=10.0,
            destinations=DestinationSpec(kind="uniform-k", k=2),
        ),
        seeds=seeds,
        checkers=("properties", "genuineness"),
    )
    return Campaign(name="small",
                    scenarios=matrix(base, {"protocol": ["a1", "skeen"]}))


class TestSerialParallelIdentity:
    def test_per_seed_metrics_bit_identical(self):
        campaign = small_campaign()
        serial = CampaignRunner(campaign, jobs=1).run()
        parallel = CampaignRunner(campaign, jobs=4).run()
        verify_determinism(parallel, serial)
        # Not merely "close": the float bit patterns agree exactly.
        assert serial.per_seed_metrics() == parallel.per_seed_metrics()

    def test_repeated_serial_runs_agree(self):
        campaign = small_campaign(seeds=(5,))
        a = run_campaign(campaign)
        b = run_campaign(campaign)
        assert a.per_seed_metrics() == b.per_seed_metrics()

    def test_verify_determinism_reports_divergence(self):
        campaign = small_campaign(seeds=(1,))
        a = run_campaign(campaign)
        b = run_campaign(campaign)
        scenario = campaign.scenarios[0].name
        b.result(scenario, 1).metrics["casts"] += 1.0
        with pytest.raises(AssertionError, match="diverged"):
            verify_determinism(a, b)


class TestRunnerMechanics:
    def test_results_keyed_by_scenario_and_seed(self):
        result = run_campaign(small_campaign(seeds=(1, 2)))
        run = result.result("small/protocol=a1", 2)
        assert run.seed == 2
        assert run.scenario == "small/protocol=a1"
        assert run.ok

    def test_aggregates_reuse_runtime_aggregate(self):
        result = run_campaign(small_campaign(seeds=(1, 2, 3)))
        aggs = result.aggregates("small/protocol=a1")
        assert isinstance(aggs["casts"], Aggregate)
        assert aggs["casts"].n == 3
        assert aggs["casts"].minimum <= aggs["casts"].mean \
            <= aggs["casts"].maximum

    def test_checker_failures_are_recorded_not_raised(self):
        # Genuineness is violated by construction when multicasting
        # through a broadcast-based protocol: bystander groups hear
        # every message.
        spec = ScenarioSpec(
            name="nongenuine-by-design",
            protocol="nongenuine",
            group_sizes=(2, 2, 2),
            workload=WorkloadSpec(
                kind="periodic", period=2.0, count=4,
                destinations=DestinationSpec(kind="fixed", groups=(0, 1)),
            ),
            checkers=("properties", "genuineness"),
            protocol_kwargs=(("propose_delay", 0.05),),
            start_rounds=True,
        )
        result = run_scenario_seed(spec, 1)
        assert result.checkers["properties"] == "ok"
        assert result.checkers["genuineness"].startswith("FAIL")
        assert not result.ok

    def test_unknown_checker_rejected(self):
        spec = dataclasses.replace(small_campaign().scenarios[0],
                                   checkers=("vibes",))
        with pytest.raises(ValueError, match="unknown checker"):
            run_scenario_seed(spec, 1)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            CampaignRunner(small_campaign(), jobs=0)

    def test_message_heartbeat_without_horizon_rejected(self):
        """Fail fast: message-mode heartbeats can never quiesce."""
        spec = ScenarioSpec(name="hb", detector="heartbeat")
        with pytest.raises(ValueError, match="heartbeat_horizon"):
            run_scenario_seed(spec, 1)
        # Elided mode schedules nothing, so no horizon is needed.
        elided = dataclasses.replace(spec, detector="heartbeat-elided")
        assert run_scenario_seed(elided, 1).ok

    def test_unknown_metric_rejected_before_running(self):
        spec = dataclasses.replace(small_campaign().scenarios[0],
                                   metrics=("degress",))
        with pytest.raises(ValueError, match="unknown metric"):
            run_scenario_seed(spec, 1)

    def test_duplicate_seeds_rejected(self):
        campaign = small_campaign(seeds=(1, 1))
        with pytest.raises(ValueError, match="repeats seeds"):
            CampaignRunner(campaign).run()

    def test_pool_fallback_reports_effective_jobs(self, monkeypatch):
        """A degraded run must not claim N workers in its artefact."""
        runner = CampaignRunner(small_campaign(seeds=(1,)), jobs=4)
        monkeypatch.setattr(CampaignRunner, "_run_pool",
                            lambda self, tasks: None)
        result = runner.run()
        assert result.jobs == 1
        assert result.jobs_requested == 4
        assert result.to_json()["jobs"] == 1
        assert result.to_json()["jobs_requested"] == 4

    def test_duplicate_scenario_names_rejected(self):
        spec = small_campaign().scenarios[0]
        with pytest.raises(ValueError, match="duplicate scenario names"):
            Campaign(name="dup", scenarios=[spec, spec])

    def test_crash_scenarios_derive_schedule_from_seed(self):
        spec = ScenarioSpec(
            name="crashy",
            group_sizes=(3, 3),
            workload=WorkloadSpec(kind="periodic", period=2.0, count=6),
            crashes=CrashSpec(kind="random-minority", window=10.0,
                              probability=1.0),
        )
        a = run_scenario_seed(spec, 3)
        b = run_scenario_seed(spec, 3)
        assert a.metrics == b.metrics
        assert a.checkers == b.checkers == {"properties": "ok"}


class TestArtifacts:
    def test_json_artifact_shape(self, tmp_path):
        result = run_campaign(small_campaign(seeds=(1, 2)))
        path = result.write(str(tmp_path))
        data = json.loads((tmp_path / "CAMPAIGN_small.json").read_text())
        assert path.endswith("CAMPAIGN_small.json")
        assert data["campaign"] == "small"
        assert data["task_count"] == 4
        assert data["all_checkers_ok"] is True
        scenario = data["scenarios"]["small/protocol=a1"]
        assert scenario["spec"]["protocol"] == "a1"
        assert set(scenario["seeds"]) == {"1", "2"}
        assert scenario["aggregates"]["casts"]["n"] == 2

    def test_markdown_summary_lists_every_scenario(self):
        result = run_campaign(small_campaign(seeds=(1,)))
        md = result.markdown_summary()
        assert "| small/protocol=a1 |" in md
        assert "| small/protocol=skeen |" in md
        assert "| scenario |" in md


class TestLibrary:
    @pytest.mark.parametrize("name", sorted(CAMPAIGNS))
    def test_builders_expand(self, name):
        campaign = get_campaign(name, seeds=(1,))
        assert len(campaign.scenarios) >= 6
        assert campaign.task_count == len(campaign.scenarios)

    def test_unknown_campaign_rejected(self):
        with pytest.raises(KeyError, match="unknown campaign"):
            get_campaign("nope")

    def test_cross_protocol_has_at_least_eight_scenarios(self):
        assert len(get_campaign("cross-protocol").scenarios) >= 8

    def test_wan_storm_single_seed_runs_green(self):
        campaign = get_campaign("wan-storm", seeds=(1,))
        campaign.scenarios = campaign.scenarios[:2]
        result = run_campaign(campaign, jobs=2)
        assert result.all_checkers_ok

    def test_fd_overhead_elided_matches_heartbeat_on_protocol_metrics(self):
        """The elided detector changes traffic/events, nothing else."""
        campaign = get_campaign("fd-overhead", seeds=(1,))
        by_detector = {
            s.detector: s for s in campaign.scenarios
            if s.name.startswith("fd/")
        }
        runs = {
            detector: run_scenario_seed(spec, 1)
            for detector, spec in by_detector.items()
        }
        hb, elided = runs["heartbeat"], runs["heartbeat-elided"]
        assert hb.ok and elided.ok
        for metric in ("casts", "deliveries", "degree_mean",
                       "latency_worst_mean"):
            assert hb.metrics[metric] == elided.metrics[metric], metric
        # The whole point: message mode pays for heartbeat copies.
        assert hb.metrics["network_messages"] > \
            elided.metrics["network_messages"]
        assert hb.metrics["kernel_events"] > elided.metrics["kernel_events"]


class TestPhaseMetrics:
    def test_phases_metric_auto_enables_profiler(self):
        spec = ScenarioSpec(
            name="profiled",
            group_sizes=(2, 2),
            workload=WorkloadSpec(
                kind="poisson", rate=1.0, duration=10.0,
                destinations=DestinationSpec(kind="uniform-k", k=2),
            ),
            metrics=("core", "phases"),
        )
        result = run_scenario_seed(spec, 1)
        phase_keys = [k for k in result.metrics
                      if k.startswith("phase_")]
        assert "phase_kernel_seconds" in phase_keys
        assert "phase_network_seconds" in phase_keys
        assert sum(result.metrics[k] for k in phase_keys) > 0.0

    def test_phase_metrics_excluded_from_determinism_key(self):
        """Wall-clock phases may differ run to run; the serial-vs-
        parallel identity check must not compare them."""
        base = ScenarioSpec(
            name="profiled",
            group_sizes=(2, 2),
            workload=WorkloadSpec(kind="periodic", period=2.0, count=5,
                                  destinations=DestinationSpec(
                                      kind="uniform-k", k=2)),
            metrics=("core", "phases"),
            seeds=(1,),
        )
        campaign = Campaign(name="profiled", scenarios=[base])
        verify_determinism(run_campaign(campaign), run_campaign(campaign))
