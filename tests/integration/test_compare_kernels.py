"""The parallel kernel's bit-identical contract, enforced end to end.

``compare_kernels`` runs the same scenario spec under the serial and
the parallel kernel and asserts identical delivery orders, checker
verdicts and per-run metrics.  The grid here is the contract's
regression net: genuine multicast (a1), broadcast reduction (a2) and
the non-genuine baseline, with and without crashes, across seeds —
plus a transactional-store scenario whose serializability verdict must
survive the partitioned execution, and the degrade-to-serial paths of
``kernel="auto"``.
"""

import dataclasses

import pytest

from repro.campaigns.runner import build_scenario_system
from repro.campaigns.spec import (
    CrashSpec,
    LatencySpec,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.runtime.parallel import ParallelKernelError, compare_kernels
from repro.store.spec import StoreSpec

NO_CRASH = CrashSpec(kind="none")
ONE_CRASH = CrashSpec(kind="explicit", crashes=((1, 3.5),))


def small_spec(protocol, crashes=NO_CRASH, **overrides):
    spec = ScenarioSpec(
        name=f"cmp-{protocol}",
        protocol=protocol,
        group_sizes=(3, 3, 3),
        workload=WorkloadSpec(kind="periodic", period=1.0, count=6),
        crashes=crashes,
        checkers=("properties", "genuineness"),
        max_events=10_000_000,
    )
    return dataclasses.replace(spec, **overrides) if overrides else spec


class TestBitIdenticalGrid:
    @pytest.mark.parametrize("protocol", ["a1", "a2", "nongenuine"])
    @pytest.mark.parametrize("crashes", [NO_CRASH, ONE_CRASH],
                             ids=["no-crash", "crash"])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_kernels_agree(self, protocol, crashes, seed):
        traces = compare_kernels(small_spec(protocol, crashes), seed=seed)
        assert traces["parallel"].delivery_orders == \
            traces["serial"].delivery_orders
        assert traces["parallel"].checker_verdicts == \
            traces["serial"].checker_verdicts

    def test_threads_executor_agrees(self):
        compare_kernels(small_spec("a1"), seed=3, jobs=2, executor="threads")

    def test_single_job_agrees(self):
        # jobs=1 runs every sub-kernel on one worker: same barriers,
        # no parallel interleaving — still bit-identical.
        compare_kernels(small_spec("a1", crashes=ONE_CRASH), seed=3, jobs=1)


class TestStoreScenario:
    def test_store_serializability_verdict_is_identical(self):
        spec = small_spec(
            "a1",
            workload=WorkloadSpec(kind="periodic", period=1.0, count=0),
            store=StoreSpec(kind="periodic", period=1.0, count=10,
                            n_keys=12, multi_partition_fraction=0.6),
            checkers=("properties", "serializability", "convergence"),
        )
        traces = compare_kernels(spec, seed=5)
        verdicts = traces["parallel"].checker_verdicts
        assert verdicts["serializability"] == "ok"
        assert verdicts == traces["serial"].checker_verdicts


class TestKernelSelection:
    def test_auto_on_eligible_spec_goes_parallel(self):
        system, _, _ = build_scenario_system(
            small_spec("a1", kernel="auto"), 1)
        assert getattr(system, "kernel", "serial") == "parallel"

    def test_auto_degrades_to_serial_on_jittered_latency(self):
        spec = small_spec("a1", kernel="auto",
                          latency=LatencySpec(kind="wan"),
                          checkers=("properties",))
        system, _, _ = build_scenario_system(spec, 1)
        assert getattr(system, "kernel", "serial") == "serial"

    def test_auto_degrades_to_serial_on_single_group(self):
        spec = small_spec("a1", kernel="auto", group_sizes=(3,),
                          checkers=("properties",))
        system, _, _ = build_scenario_system(spec, 1)
        assert getattr(system, "kernel", "serial") == "serial"

    def test_strict_parallel_raises_outside_envelope(self):
        spec = small_spec("a1", kernel="parallel",
                          latency=LatencySpec(kind="wan"),
                          checkers=("properties",))
        with pytest.raises(ParallelKernelError):
            build_scenario_system(spec, 1)


class TestParallelProfile:
    def test_sync_phase_recorded_and_additive(self):
        spec = small_spec("a1", kernel="parallel", profile=True)
        system, _, _ = build_scenario_system(spec, 1)
        system.run_quiescent(max_events=10_000_000)
        timings = system.profiler.timings()
        assert timings.get("sync", 0.0) > 0.0
        # Exclusive phases must stay additive after the merge: their sum
        # cannot exceed the host's wall-clock window.
        assert sum(timings.values()) <= system.profiler.total() * 1.001
