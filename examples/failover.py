#!/usr/bin/env python3
"""Fault tolerance demo: crashes mid-protocol, delivery continues.

Three failure scenarios against Algorithm A1 over a WAN, each checked
against the paper's uniform properties:

1. the *caster* crashes right after multicasting (its message still
   reaches every correct addressee — uniform agreement);
2. a group's consensus *leader* crashes mid-instance (Paxos elects the
   next member; the group's timestamp proposals keep flowing);
3. a steady workload rides through both crashes without violating
   integrity, agreement, validity, or prefix order.

Run:  python examples/failover.py
"""

from repro.checkers.properties import check_all
from repro.failure.schedule import CrashSchedule
from repro.net.topology import LatencyModel
from repro.runtime.builder import build_system
from repro.workload.generators import (
    poisson_workload,
    schedule_workload,
    uniform_k_groups,
)


def main() -> None:
    # pids 0-2 = group 0, pids 3-5 = group 1, pids 6-8 = group 2.
    crashes = CrashSchedule({
        4: 30.0,    # scenario 1: caster dies 30 ms after its multicast
        0: 250.0,   # scenario 2: group 0's consensus leader dies later
    })
    system = build_system(
        protocol="a1", group_sizes=[3, 3, 3], seed=5,
        latency=LatencyModel.wan(intra_ms=1.0, inter_ms=100.0),
        crashes=crashes, detector_delay=20.0,
    )

    # Scenario 1: pid 4 multicasts at t=25 and crashes at t=30 — before
    # the remote group even received the message copies.
    doomed = system.cast_at(25.0, 4, (1, 2), payload="from-doomed-caster")

    # Scenario 3: background traffic across all groups, spanning the
    # leader crash at t=250.
    plans = poisson_workload(
        system.topology, system.rng.stream("wl"), rate=0.01,
        duration=600.0, destinations=uniform_k_groups(2),
    )
    messages = schedule_workload(system, plans)

    system.run_quiescent()

    print("Crash schedule:")
    for pid, when in sorted(crashes.crashes.items()):
        role = "consensus leader of group 0" if pid == 0 else "caster"
        print(f"  p{pid} ({role}) crashed at t={when:.0f} ms")

    survivors = crashes.correct_processes(system.topology)
    delivered_doomed = [p for p in survivors
                        if doomed.mid in system.log.sequence(p)
                        and system.topology.group_of(p) in (1, 2)]
    print(f"\nScenario 1 — the doomed caster's message reached "
          f"{len(delivered_doomed)} of 5 correct addressees "
          f"(uniform agreement held): {delivered_doomed}")

    after_crash = [m for m in messages
                   if system.meter.record_for(m.mid).cast_time
                   and system.meter.record_for(m.mid).cast_time > 250.0]
    print(f"Scenario 2 — {len(after_crash)} messages cast after the "
          f"leader crash; all were delivered by the re-elected leader's "
          f"group.")

    check_all(system.log, system.topology, crashes)
    print(f"\nScenario 3 — {len(messages)} background messages, "
          f"{system.log.delivery_count()} deliveries, all four uniform "
          f"properties verified. ✓")

    degrees = [d for d in system.degrees().values() if d is not None]
    print(f"Latency degrees stayed in [{min(degrees)}, {max(degrees)}] — "
          f"crashes cost retries and detector lag (wall time), but the "
          f"causal hop structure is unchanged.")


if __name__ == "__main__":
    main()
