#!/usr/bin/env python3
"""Quickstart: atomic multicast and broadcast in a simulated WAN.

Builds a three-group wide-area system, multicasts a few messages with
Algorithm A1, broadcasts with Algorithm A2, and prints what the paper's
metrics look like on real runs:

* latency degree (inter-group hops on the delivery path),
* per-process delivery orders (identical where they must be),
* inter- vs intra-group message counts.

Run:  python examples/quickstart.py
"""

from repro.checkers.properties import check_all
from repro.runtime.builder import build_system


def multicast_demo() -> None:
    """Algorithm A1: genuine atomic multicast, optimal degree 2."""
    print("=" * 64)
    print("Algorithm A1 — genuine atomic multicast")
    print("=" * 64)

    # Three groups of three processes: pids 0-2, 3-5, 6-8.
    system = build_system(protocol="a1", group_sizes=[3, 3, 3], seed=42)

    local = system.cast(sender=0, dest_groups=(0,), payload="local-op")
    pair = system.cast(sender=0, dest_groups=(0, 1), payload="pair-op")
    wide = system.cast(sender=3, dest_groups=(0, 1, 2), payload="wide-op")
    system.run_quiescent()

    for msg, label in [(local, "1 group (local)"),
                       (pair, "2 groups"),
                       (wide, "3 groups")]:
        degree = system.meter.latency_degree(msg.mid)
        print(f"  {label:18s} -> latency degree {degree}")

    print("\n  Delivery order per process (projected orders agree):")
    for pid in (0, 3, 6):
        print(f"    p{pid} (group {system.topology.group_of(pid)}): "
              f"{system.log.sequence(pid)}")

    check_all(system.log, system.topology)
    print("\n  All four atomic multicast properties verified. ✓")
    print(f"  Traffic: {system.inter_group_messages} inter-group / "
          f"{system.intra_group_messages} intra-group messages\n")


def broadcast_demo() -> None:
    """Algorithm A2: atomic broadcast at latency degree 1."""
    print("=" * 64)
    print("Algorithm A2 — atomic broadcast (proactive rounds)")
    print("=" * 64)

    system = build_system(protocol="a2", group_sizes=[3, 3], seed=42,
                          propose_delay=0.05)
    system.start_rounds()

    warm = system.cast_at(0.01, 0, payload="warm")    # rides round 1
    cold = system.cast_at(100.0, 3, payload="cold")   # after quiescence
    system.run_quiescent()

    print(f"  warm broadcast (rounds active)   -> degree "
          f"{system.meter.latency_degree(warm.mid)}  (Theorem 5.1)")
    print(f"  cold broadcast (after quiescence)-> degree "
          f"{system.meter.latency_degree(cold.mid)}  (Theorem 5.2)")

    check_all(system.log, system.topology)
    print("\n  Properties verified; the event queue drained, so the")
    print("  algorithm is quiescent (Proposition A.9). ✓\n")


def main() -> None:
    multicast_demo()
    broadcast_demo()
    print("The genuine multicast floor is 2 (Prop 3.1); broadcast can "
          "reach 1\nbecause it is allowed to be proactive — the paper's "
          "central tradeoff.")


if __name__ == "__main__":
    main()
