#!/usr/bin/env python3
"""A globally replicated ledger over Algorithm A2 (three continents).

Full replication: every site applies every transfer in the same total
order, so balances agree everywhere and double spends are rejected
deterministically.  The WAN is asymmetric — realistic one-way latencies
between Europe, North America and Asia — and the broadcast rate is high
enough that A2's proactive rounds stay warm (paper Section 5.3):
transfers commit in roughly one inter-continental hop.

Run:  python examples/global_ledger.py
"""

from repro.checkers.properties import check_all
from repro.net.topology import Fixed, Jittered, LatencyModel
from repro.replication import LedgerCluster


def three_continent_latency() -> LatencyModel:
    """One-way latencies (ms): EU<->NA ~45, EU<->ASIA ~90, NA<->ASIA ~75."""
    pair = {
        (0, 1): Jittered(45.0, 3.0), (1, 0): Jittered(45.0, 3.0),
        (0, 2): Jittered(90.0, 5.0), (2, 0): Jittered(90.0, 5.0),
        (1, 2): Jittered(75.0, 4.0), (2, 1): Jittered(75.0, 4.0),
    }
    return LatencyModel(intra=Jittered(0.8, 0.1), inter=Fixed(100.0),
                        pairwise_inter=pair)


def main() -> None:
    cluster = LedgerCluster.build(
        group_sizes=[3, 3, 3],
        initial_balances={"treasury": 1_000, "alice": 50, "bob": 0},
        protocol="a2",
        latency=three_continent_latency(),
        propose_delay=10.0,   # 10 ms bundling window per round
        seed=11,
    )
    system = cluster.system
    system.start_rounds()

    # Submit transfers from all three continents, including two
    # deliberate double spends racing from different sites.
    submissions = []
    eu, na, asia = cluster.ledger(0), cluster.ledger(3), cluster.ledger(6)
    schedule = [
        (5.0, eu, ("treasury", "alice", 100)),
        (8.0, na, ("treasury", "bob", 200)),
        (60.0, asia, ("alice", "bob", 120)),     # needs the 100 above
        (61.0, na, ("alice", "bob", 120)),       # double spend race!
        (150.0, eu, ("bob", "alice", 10)),
        (200.0, asia, ("treasury", "alice", 5)),
    ]
    for when, ledger, (src, dst, amount) in schedule:
        system.sim.call_at(
            when,
            lambda l=ledger, s=src, d=dst, a=amount:
                submissions.append(l.transfer(s, d, a)),
            label="submit",
        )
    system.run_quiescent()

    print("Committed transfer order (identical on all 9 replicas):")
    for tx in eu.committed:
        print(f"  {tx}")
    print(f"Rejected (deterministic double-spend losers): {eu.rejected}")

    print("\nBalances per continent:")
    for name, ledger in [("EU", eu), ("NA", na), ("ASIA", asia)]:
        balances, _ = ledger.snapshot()
        print(f"  {name:4s}: {dict(sorted(balances.items()))}")

    cluster.assert_convergence()
    check_all(system.log, system.topology)

    latencies = [
        system.meter.record_for(tx).worst_delivery_latency
        for tx in submissions
        if system.meter.record_for(tx)
        and system.meter.record_for(tx).worst_delivery_latency is not None
    ]
    print("\nCommit latency (worst replica): "
          f"min {min(latencies):.0f} ms, max {max(latencies):.0f} ms "
          "(~1-2x the slowest one-way link, thanks to degree-1 rounds)")
    print("Convergence and broadcast properties verified. ✓")


if __name__ == "__main__":
    main()
