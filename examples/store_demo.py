#!/usr/bin/env python3
"""The transactional partitioned store over genuine atomic multicast.

An inventory service sharded over four sites — plus two spare sites
that hold no data for this workload.  One-shot transactions declare
their operations up front (put/get/incr/cas, one key each), are routed
to exactly the sites owning the touched keys, and execute
deterministically at every replica on A-Deliver:

* a counter increment touching one partition involves one site;
* a stock transfer touching two partitions is atomically multicast to
  exactly those two sites;
* the spare sites never see a single protocol message (genuineness) —
  run the same script with ``protocol="nongenuine"`` and watch them get
  dragged into everything;
* afterwards, the one-copy-serializability checker proves the whole
  distributed execution is equivalent to a single serial store.

Run:  python examples/store_demo.py
"""

from repro.store import StoreCluster, StoreSpec, check_serializability


def main() -> None:
    spec = StoreSpec(
        n_keys=16,                 # k00000..k00015, round-robin owners
        data_groups=(0, 1, 2, 3),  # sites 4 and 5 hold nothing
        rate=0.6, duration=30.0,   # background Poisson traffic
        read_fraction=0.5,
        multi_partition_fraction=0.4,
    )
    cluster = StoreCluster.build(
        group_sizes=[2, 2, 2, 2, 2, 2],
        store=spec, protocol="a1", seed=11, trace=True,
    )
    pmap = cluster.partition_map

    # Hand-written transactions on top of the generated workload: a
    # cross-partition stock transfer (single atomic multicast to the
    # two owner sites) and a conditional price update.
    stock_a = "k00000"   # owned by site 0
    stock_b = "k00001"   # owned by site 1
    client = cluster.client(0)
    done = []
    cluster.system.sim.call_at(5.0, lambda: client.submit(
        "restock", (("put", stock_a, 100), ("put", stock_b, 100))))
    cluster.system.sim.call_at(10.0, lambda: cluster.client(2).submit(
        "transfer", (("incr", stock_a, -10), ("incr", stock_b, 10))))
    cluster.system.sim.call_at(15.0, lambda: client.submit(
        "audit", (("get", stock_a), ("get", stock_b))))

    cluster.system.run_quiescent()

    print("Transactional partitioned store — 4 data sites + 2 spares\n")
    print(f"  planned transactions : {len(cluster.plans) + 3}")
    print(f"  committed            : {len(cluster.tracker.committed)}")
    latencies = cluster.tracker.latencies()
    print(f"  commit latency (sim) : mean "
          f"{sum(latencies) / len(latencies):.2f}, "
          f"max {max(latencies):.2f}\n")

    print("The transfer applied atomically on both owner sites:")
    for key in (stock_a, stock_b):
        gid = pmap.group_of(key)
        values = {pid: cluster.store(pid).get(key)
                  for pid in cluster.system.topology.members(gid)}
        print(f"  {key} (site {gid}): {values}")

    # Each owner site served the audit's read of its own key, at the
    # audit's position in the global order.
    audit_reads = {}
    for index, key in enumerate((stock_a, stock_b)):
        owner = cluster.system.topology.members(pmap.group_of(key))[0]
        audit_reads[key] = cluster.store(owner).effects_of("audit") \
            .reads[index]
    print(f"\nThe audit's cross-partition reads: {audit_reads}")

    print("\nPer-site involvement (sent copies / txns addressed):")
    report = cluster.involvement()
    for gid in cluster.system.topology.group_ids:
        spare = " <- spare site, perfectly idle" \
            if gid in report.non_destination_groups() else ""
        print(f"  site {gid}: {report.sent.get(gid, 0):5d} sent / "
              f"{report.dest_txns.get(gid, 0):3d} txns{spare}")
    assert report.non_destination_traffic() == 0

    order = check_serializability(cluster)
    cluster.assert_convergence()
    print(f"\nOne-copy serializability verified: all "
          f"{len(order)} transactions embed into a single serial "
          f"order. ✓")


if __name__ == "__main__":
    main()
