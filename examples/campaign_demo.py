#!/usr/bin/env python3
"""Campaign demo: declare a scenario matrix, run it on every core.

Shows the three-step campaign workflow:

1. declare a base :class:`ScenarioSpec` and expand it with
   :func:`matrix` along two axes (protocol × arrival rate),
2. execute the grid with :class:`CampaignRunner` — serially, then over
   a process pool — and verify the per-seed metrics are bit-identical,
3. persist the ``CAMPAIGN_demo.json`` artefact and print the markdown
   summary table.

Run:  python examples/campaign_demo.py

The built-in campaigns do the same at scale:
``python -m repro.cli campaign --list``.
"""

import os
import tempfile

from repro.campaigns import (
    Campaign,
    CampaignRunner,
    DestinationSpec,
    ScenarioSpec,
    WorkloadSpec,
    matrix,
    verify_determinism,
)


def declare() -> Campaign:
    """A 2x2 grid: {A1, Skeen} x {calm, busy} Poisson traffic."""
    base = ScenarioSpec(
        name="demo",
        group_sizes=(2, 2, 2),
        workload=WorkloadSpec(
            kind="poisson", rate=0.4, duration=15.0,
            destinations=DestinationSpec(kind="uniform-k", k=2),
        ),
        seeds=(1, 2, 3),
        checkers=("properties", "genuineness"),
    )
    scenarios = matrix(base, {
        "protocol": ["a1", "skeen"],
        "workload.rate": [0.4, 1.2],
    })
    return Campaign(name="demo", scenarios=scenarios,
                    description="campaign_demo.py example grid")


def main() -> None:
    campaign = declare()
    print(f"declared {len(campaign.scenarios)} scenarios x "
          f"{len(campaign.scenarios[0].seeds)} seeds = "
          f"{campaign.task_count} runs:")
    for spec in campaign.scenarios:
        print(f"  {spec.name}")

    serial = CampaignRunner(campaign, jobs=1).run()
    jobs = max(2, os.cpu_count() or 2)
    parallel = CampaignRunner(campaign, jobs=jobs).run()

    # The executor's core guarantee: parallelism changes wall-clock
    # time only, never a single metric.
    verify_determinism(parallel, serial)
    print(f"\nserial {serial.wall_seconds:.2f}s vs jobs={jobs} "
          f"{parallel.wall_seconds:.2f}s — per-seed metrics identical ✓")
    assert parallel.all_checkers_ok, parallel.failures()
    print("properties + genuineness checkers green on every run ✓\n")

    print(parallel.markdown_summary())

    out_dir = tempfile.mkdtemp(prefix="campaign-demo-")
    path = parallel.write(out_dir)
    print(f"\nartefact: {path}")


if __name__ == "__main__":
    main()
