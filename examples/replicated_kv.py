#!/usr/bin/env python3
"""Partial replication with genuine atomic multicast (Algorithm A1).

The scenario the paper's introduction motivates: an e-commerce backend
spread over three sites, each replicating one partition —

* group 0 (EU):  ``user:*`` records
* group 1 (US):  ``order:*`` records
* group 2 (ASIA): ``stock:*`` records

Single-partition writes stay inside one site (latency degree 0-1);
an order checkout touches ``order:*`` and ``stock:*`` and is atomically
multicast to exactly those two sites (latency degree 2, the optimum for
genuine multicast) — the EU site never sees it (genuineness).

Run:  python examples/replicated_kv.py
"""

from repro.checkers.properties import check_all
from repro.net.topology import LatencyModel
from repro.replication import KVCluster


def partition_of(key: str) -> int:
    """Table-prefix partitioning."""
    return {"user": 0, "order": 1, "stock": 2}[key.split(":", 1)[0]]


def main() -> None:
    keys = [f"user:{u}" for u in ("alice", "bob")]
    keys += [f"order:{o}" for o in ("1001", "1002")]
    keys += ["stock:widget", "stock:gadget"]

    cluster = KVCluster.build(
        group_sizes=[3, 3, 3],
        partitions={k: partition_of(k) for k in keys},
        protocol="a1",
        latency=LatencyModel.wan(intra_ms=1.0, inter_ms=100.0),
        seed=7,
    )
    system = cluster.system

    # --- single-partition writes: local, cheap --------------------------
    eu = cluster.store(0)       # a process at the EU site
    us = cluster.store(3)       # a process at the US site
    asia = cluster.store(6)     # a process at the ASIA site

    eu.put("user:alice", {"email": "alice@example.com"})
    eu.put("user:bob", {"email": "bob@example.com"})
    asia.put("stock:widget", 5)
    asia.put("stock:gadget", 2)

    # --- cross-partition checkout: atomic multicast to 2 of 3 sites -----
    checkout = us.put_many({
        "order:1001": {"user": "alice", "item": "widget", "qty": 1},
        "stock:widget": 4,
    })
    # A concurrent, conflicting checkout from another US replica: both
    # touch stock:widget; atomic multicast orders them identically at
    # every replica of both partitions.
    rival = cluster.store(4).put_many({
        "order:1002": {"user": "bob", "item": "widget", "qty": 4},
        "stock:widget": 0,
    })

    system.run_quiescent()

    # --- what happened ---------------------------------------------------
    print("Per-site replica state (each site holds only its partition):")
    for name, store in [("EU  p0", eu), ("US  p3", us), ("ASIA p6", asia)]:
        print(f"  {name}: {store.owned_snapshot()}")

    print("\nCheckout ordering — every US and ASIA replica applied the "
          "two\nconflicting checkouts in the same order:")
    for pid in (3, 4, 5, 6, 7, 8):
        order = [op for op in cluster.store(pid).applied
                 if op in (checkout, rival)]
        print(f"  p{pid}: {order}")

    print("\nLatency degrees (paper Section 4.3):")
    for mid, degree in sorted(system.degrees().items()):
        rec = system.meter.record_for(mid)
        print(f"  {mid} -> {len(rec.dest_groups)} site(s), degree {degree}, "
              f"{rec.worst_delivery_latency:.0f} ms worst-case")

    cluster.assert_convergence()
    check_all(system.log, system.topology)
    print("\nConvergence and all multicast properties verified. ✓")
    print(f"Traffic: {system.inter_group_messages} inter-site msgs; the EU "
          f"site exchanged none for the checkouts (genuineness).")


if __name__ == "__main__":
    main()
