"""A fully replicated ledger over atomic broadcast.

The complementary application to the partial-replication store: here
*every* group holds the complete state (accounts and balances), so the
natural primitive is atomic broadcast — and Algorithm A2's latency
degree of 1 makes full replication the latency-optimal configuration,
exactly the "if latency is the main concern" branch of the paper's
introduction.

State-machine replication in its plainest form: a transfer is A-BCast;
each replica applies transfers in delivery order, deterministically
rejecting those with insufficient funds.  Uniform prefix order makes
every replica's accept/reject verdicts — and therefore balances —
identical.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.interfaces import AppMessage, AtomicBroadcast
from repro.sim.process import Process

_TX_IDS = itertools.count()


@dataclass(frozen=True)
class Transfer:
    """A funds transfer between two accounts."""

    tx_id: str
    src: str
    dst: str
    amount: int

    def to_payload(self) -> tuple:
        return (self.tx_id, self.src, self.dst, self.amount)

    @classmethod
    def from_payload(cls, payload: tuple) -> "Transfer":
        return cls(*payload)


class ReplicatedLedger:
    """One process's replica of the fully replicated ledger."""

    def __init__(self, process: Process, broadcast: AtomicBroadcast,
                 initial_balances: Optional[Dict[str, int]] = None) -> None:
        """Wrap a broadcast endpoint into a ledger replica.

        All replicas must be constructed with the same
        ``initial_balances`` (it is the deterministic initial state).
        """
        self.process = process
        self.broadcast = broadcast
        self.balances: Dict[str, int] = dict(initial_balances or {})
        self.committed: List[str] = []   # accepted tx ids, in order
        self.rejected: List[str] = []    # deterministically rejected
        broadcast.set_delivery_handler(self._on_deliver)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def transfer(self, src: str, dst: str, amount: int) -> str:
        """Submit a transfer; returns its transaction id.

        The verdict (committed/rejected) is only known once the
        transfer is delivered — its position in the total order decides
        whether funds suffice.
        """
        if amount <= 0:
            raise ValueError("transfer amount must be positive")
        tx = Transfer(tx_id=f"tx{next(_TX_IDS):06d}", src=src, dst=dst,
                      amount=amount)
        msg = AppMessage.fresh(
            sender=self.process.pid,
            dest_groups=(),  # filled by a_bcast path: all groups
            payload=tx.to_payload(), mid=tx.tx_id,
        )
        # Broadcast endpoints require the full destination set.
        topo = getattr(self.broadcast, "topology", None)
        if topo is not None:
            msg = AppMessage(mid=tx.tx_id, sender=self.process.pid,
                             dest_groups=tuple(topo.group_ids),
                             payload=tx.to_payload())
        self.broadcast.a_bcast(msg)
        return tx.tx_id

    def balance(self, account: str) -> int:
        """Current locally applied balance."""
        return self.balances.get(account, 0)

    def snapshot(self) -> Tuple[Dict[str, int], Tuple[str, ...]]:
        """(balances, committed-tx order) — for convergence checks."""
        return dict(self.balances), tuple(self.committed)

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def _on_deliver(self, msg: AppMessage) -> None:
        tx = Transfer.from_payload(msg.payload)
        if self.balances.get(tx.src, 0) >= tx.amount:
            self.balances[tx.src] = self.balances.get(tx.src, 0) - tx.amount
            self.balances[tx.dst] = self.balances.get(tx.dst, 0) + tx.amount
            self.committed.append(tx.tx_id)
        else:
            # Deterministic rejection: every replica sees the same
            # prefix, so every replica rejects the same transfers.
            self.rejected.append(tx.tx_id)
