"""One-call construction of replicated-store deployments.

Wraps :func:`repro.runtime.builder.build_system` so that every process
gets a store replica subscribed to its protocol endpoint's A-Deliver
stream — while the system's latency meter, delivery log and property
checkers keep working unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.interfaces import AppMessage, AtomicMulticast
from repro.replication.kvstore import ReplicatedKVStore
from repro.replication.ledger import ReplicatedLedger
from repro.replication.partition import PartitionMap
from repro.runtime.builder import System, build_system


class _TappedEndpoint:
    """Adapter presenting a System-wired endpoint to a store.

    The system's builder already installed the real delivery handler
    (log + meter); stores subscribe through a delivery tap instead, so
    this adapter satisfies the store's ``set_delivery_handler`` call by
    registering a tap.
    """

    def __init__(self, system: System, pid: int) -> None:
        self._system = system
        self._pid = pid
        self._endpoint = system.endpoints[pid]
        # Expose the topology for layers that want it (ledger does).
        self.topology = system.topology

    def set_delivery_handler(self, handler) -> None:
        self._system.add_delivery_tap(self._pid, handler)

    def a_mcast(self, msg: AppMessage) -> None:
        self._meter_and_send(msg)

    def a_bcast(self, msg: AppMessage) -> None:
        self._meter_and_send(msg)

    def _meter_and_send(self, msg: AppMessage) -> None:
        process = self._system.network.process(self._pid)
        self._system.log.record_cast(msg)
        self._system.meter.record_cast(
            msg.mid, process, dest_groups=msg.dest_groups,
            now=self._system.sim.now,
        )
        if hasattr(self._endpoint, "a_mcast"):
            self._endpoint.a_mcast(msg)
        else:
            self._endpoint.a_bcast(msg)


class KVCluster:
    """A partially replicated KV deployment (one store per process)."""

    def __init__(self, system: System, partition_map: PartitionMap,
                 stores: Dict[int, ReplicatedKVStore]) -> None:
        self.system = system
        self.partition_map = partition_map
        self.stores = stores

    @classmethod
    def build(
        cls,
        group_sizes: List[int],
        partitions: Optional[Dict[str, int]] = None,
        protocol: str = "a1",
        seed: int = 0,
        **system_kwargs,
    ) -> "KVCluster":
        """Build a cluster over any atomic multicast protocol."""
        system = build_system(protocol=protocol, group_sizes=group_sizes,
                              seed=seed, **system_kwargs)
        pmap = PartitionMap(system.topology, explicit=partitions)
        stores = {}
        for pid in system.topology.processes:
            adapter = _TappedEndpoint(system, pid)
            stores[pid] = ReplicatedKVStore(
                system.network.process(pid), pmap, adapter)
        return cls(system, pmap, stores)

    def store(self, pid: int) -> ReplicatedKVStore:
        """The replica hosted by process ``pid``."""
        return self.stores[pid]

    def replicas_of_group(self, gid: int) -> List[ReplicatedKVStore]:
        """All replicas of group ``gid``'s partition."""
        return [self.stores[p] for p in self.system.topology.members(gid)]

    def assert_convergence(self) -> None:
        """Every group's correct replicas must hold identical state."""
        for gid in self.system.topology.group_ids:
            states = {}
            for pid in self.system.topology.members(gid):
                if self.system.network.process(pid).crashed:
                    continue
                states[pid] = repr(sorted(
                    self.stores[pid].owned_snapshot().items()))
            if len(set(states.values())) > 1:
                raise AssertionError(
                    f"group {gid} replicas diverged: {states}"
                )


class LedgerCluster:
    """A fully replicated ledger deployment over atomic broadcast."""

    def __init__(self, system: System,
                 ledgers: Dict[int, ReplicatedLedger]) -> None:
        self.system = system
        self.ledgers = ledgers

    @classmethod
    def build(
        cls,
        group_sizes: List[int],
        initial_balances: Dict[str, int],
        protocol: str = "a2",
        seed: int = 0,
        **system_kwargs,
    ) -> "LedgerCluster":
        """Build a ledger cluster over any atomic broadcast protocol."""
        system = build_system(protocol=protocol, group_sizes=group_sizes,
                              seed=seed, **system_kwargs)
        ledgers = {}
        for pid in system.topology.processes:
            adapter = _TappedEndpoint(system, pid)
            ledgers[pid] = ReplicatedLedger(
                system.network.process(pid), adapter,
                initial_balances=initial_balances,
            )
        return cls(system, ledgers)

    def ledger(self, pid: int) -> ReplicatedLedger:
        """The replica hosted by process ``pid``."""
        return self.ledgers[pid]

    def assert_convergence(self) -> None:
        """All correct replicas must agree on balances and tx order."""
        snapshots = {}
        for pid, ledger in self.ledgers.items():
            if self.system.network.process(pid).crashed:
                continue
            balances, order = ledger.snapshot()
            snapshots[pid] = (tuple(sorted(balances.items())), order)
        if len(set(snapshots.values())) > 1:
            raise AssertionError(f"ledger replicas diverged: {snapshots}")
