"""One-call construction of replicated-store deployments.

Wraps :func:`repro.runtime.builder.build_system` so that every process
gets a store replica subscribed to its protocol endpoint's A-Deliver
stream — while the system's latency meter, delivery log and property
checkers keep working unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.interfaces import AppMessage, AtomicMulticast
from repro.replication.kvstore import ReplicatedKVStore
from repro.replication.ledger import ReplicatedLedger
from repro.replication.partition import PartitionMap
from repro.runtime.builder import System, build_system


class TappedEndpoint:
    """Adapter presenting a System-wired endpoint to a store.

    The system's builder already installed the real delivery handler
    (log + meter); stores subscribe through a delivery tap instead, so
    this adapter satisfies the store's ``set_delivery_handler`` call by
    registering a tap.  Shared by every application layer that rides an
    already-built :class:`System` (the KV store, the ledger, and the
    transactional store of :mod:`repro.store`).
    """

    def __init__(self, system: System, pid: int) -> None:
        self._system = system
        self._pid = pid
        self._endpoint = system.endpoints[pid]
        # Expose the topology for layers that want it (ledger does).
        self.topology = system.topology

    def set_delivery_handler(self, handler) -> None:
        self._system.add_delivery_tap(self._pid, handler)

    def a_mcast(self, msg: AppMessage) -> None:
        self._meter_and_send(msg)

    def a_bcast(self, msg: AppMessage) -> None:
        self._meter_and_send(msg)

    def _meter_and_send(self, msg: AppMessage) -> None:
        process = self._system.network.process(self._pid)
        self._system.log.record_cast(msg)
        self._system.meter.record_cast(
            msg.mid, process, dest_groups=msg.dest_groups,
            now=self._system.sim.now,
        )
        if hasattr(self._endpoint, "a_mcast"):
            self._endpoint.a_mcast(msg)
        else:
            self._endpoint.a_bcast(msg)


def describe_divergence(states: Dict[int, Dict[str, object]]) -> str:
    """Pinpoint how per-replica key/value snapshots disagree.

    Returns a report naming every diverging key with the value each
    replica holds for it — so a failed convergence assertion says
    *which* pid and *which* key broke, not just that something did.
    """
    all_keys = sorted({key for state in states.values() for key in state})
    _missing = object()
    lines = []
    for key in all_keys:
        values = {pid: state.get(key, _missing)
                  for pid, state in states.items()}
        if len({repr(v) for v in values.values()}) > 1:
            detail = ", ".join(
                f"pid {pid}: " + ("<missing>" if v is _missing else repr(v))
                for pid, v in sorted(values.items())
            )
            lines.append(f"key {key!r} -> {detail}")
    if not lines:  # identical key/value maps compared unequal upstream
        return "snapshots compare unequal but no key differs"
    return "; ".join(lines)


def assert_group_convergence(system, snapshot_of) -> None:
    """Every group's correct replicas must hold identical snapshots.

    ``snapshot_of(pid)`` returns the key/value map held by ``pid``'s
    replica.  Shared by :class:`KVCluster` and the transactional store
    cluster; a failure pinpoints the diverging group, key(s) and the
    value each replica holds (see :func:`describe_divergence`).
    """
    for gid in system.topology.group_ids:
        states = {
            pid: snapshot_of(pid)
            for pid in system.topology.members(gid)
            if not system.network.process(pid).crashed
        }
        if len({repr(sorted(s.items())) for s in states.values()}) > 1:
            raise AssertionError(
                f"group {gid} replicas diverged: "
                f"{describe_divergence(states)}"
            )


class KVCluster:
    """A partially replicated KV deployment (one store per process)."""

    def __init__(self, system: System, partition_map: PartitionMap,
                 stores: Dict[int, ReplicatedKVStore]) -> None:
        self.system = system
        self.partition_map = partition_map
        self.stores = stores

    @classmethod
    def build(
        cls,
        group_sizes: List[int],
        partitions: Optional[Dict[str, int]] = None,
        protocol: str = "a1",
        seed: int = 0,
        **system_kwargs,
    ) -> "KVCluster":
        """Build a cluster over any atomic multicast protocol."""
        system = build_system(protocol=protocol, group_sizes=group_sizes,
                              seed=seed, **system_kwargs)
        pmap = PartitionMap(system.topology, explicit=partitions)
        stores = {}
        for pid in system.topology.processes:
            adapter = TappedEndpoint(system, pid)
            stores[pid] = ReplicatedKVStore(
                system.network.process(pid), pmap, adapter)
        return cls(system, pmap, stores)

    def store(self, pid: int) -> ReplicatedKVStore:
        """The replica hosted by process ``pid``."""
        return self.stores[pid]

    def replicas_of_group(self, gid: int) -> List[ReplicatedKVStore]:
        """All replicas of group ``gid``'s partition."""
        return [self.stores[p] for p in self.system.topology.members(gid)]

    def assert_convergence(self) -> None:
        """Every group's correct replicas must hold identical state.

        A failure pinpoints the diverging group, key(s) and the value
        each replica holds (see :func:`assert_group_convergence`).
        """
        assert_group_convergence(
            self.system, lambda pid: self.stores[pid].owned_snapshot())


class LedgerCluster:
    """A fully replicated ledger deployment over atomic broadcast."""

    def __init__(self, system: System,
                 ledgers: Dict[int, ReplicatedLedger]) -> None:
        self.system = system
        self.ledgers = ledgers

    @classmethod
    def build(
        cls,
        group_sizes: List[int],
        initial_balances: Dict[str, int],
        protocol: str = "a2",
        seed: int = 0,
        **system_kwargs,
    ) -> "LedgerCluster":
        """Build a ledger cluster over any atomic broadcast protocol."""
        system = build_system(protocol=protocol, group_sizes=group_sizes,
                              seed=seed, **system_kwargs)
        ledgers = {}
        for pid in system.topology.processes:
            adapter = TappedEndpoint(system, pid)
            ledgers[pid] = ReplicatedLedger(
                system.network.process(pid), adapter,
                initial_balances=initial_balances,
            )
        return cls(system, ledgers)

    def ledger(self, pid: int) -> ReplicatedLedger:
        """The replica hosted by process ``pid``."""
        return self.ledgers[pid]

    def assert_convergence(self) -> None:
        """All correct replicas must agree on balances and tx order.

        A failure pinpoints the diverging account/pids (balances) or
        the diverging replicas' committed orders.
        """
        balances_by_pid = {}
        orders = {}
        for pid, ledger in self.ledgers.items():
            if self.system.network.process(pid).crashed:
                continue
            balances, order = ledger.snapshot()
            balances_by_pid[pid] = balances
            orders[pid] = order
        if len({repr(sorted(b.items()))
                for b in balances_by_pid.values()}) > 1:
            raise AssertionError(
                f"ledger balances diverged: "
                f"{describe_divergence(balances_by_pid)}"
            )
        if len(set(orders.values())) > 1:
            detail = "; ".join(f"pid {pid}: {list(order)}"
                               for pid, order in sorted(orders.items()))
            raise AssertionError(
                f"ledger commit orders diverged: {detail}"
            )
