"""A partially replicated key-value store over atomic multicast.

This is the application the paper's introduction motivates: each group
replicates a partition of the keyspace; an update touching keys in
several partitions is **atomically multicast** to exactly those groups,
which apply it in a total order consistent across all replicas — the
textbook recipe for serialisable partial replication without a global
sequencer.

Design:

* every process in group g holds a full replica of g's partition;
* a write (or multi-key write batch) is A-MCast to the groups owning
  the touched keys; on A-Deliver, each replica applies the keys it
  owns, in delivery order — the uniform prefix order property makes the
  application order identical across replicas that share a key;
* reads are local (any replica of the key's group);
* a per-process ``applied`` journal supports convergence checks.

The store works over any :class:`AtomicMulticast` endpoint, so the same
application code runs on A1, Skeen, the ring protocol, ... — the
replication layer is protocol-agnostic by construction, which the tests
exploit to cross-validate protocols against each other.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.interfaces import AppMessage, AtomicMulticast
from repro.replication.partition import PartitionMap
from repro.sim.process import Process

_OP_IDS = itertools.count()


@dataclass(frozen=True)
class WriteOp:
    """One atomic write batch (possibly spanning partitions)."""

    op_id: str
    writes: Tuple[Tuple[str, object], ...]  # ((key, value), ...)

    def keys(self) -> List[str]:
        return [k for k, _ in self.writes]

    def to_payload(self) -> tuple:
        return (self.op_id, self.writes)

    @classmethod
    def from_payload(cls, payload: tuple) -> "WriteOp":
        op_id, writes = payload
        return cls(op_id=op_id, writes=tuple(tuple(w) for w in writes))


# Completion callback: (op_id) -> None, fired when the local replica
# applies the operation (i.e. its position in the total order is fixed).
CompletionHandler = Callable[[str], None]


class ReplicatedKVStore:
    """One process's replica of the partially replicated store."""

    def __init__(
        self,
        process: Process,
        partition_map: PartitionMap,
        multicast: AtomicMulticast,
    ) -> None:
        """Wrap a multicast endpoint into a KV replica.

        The endpoint must not have a delivery handler installed; the
        store registers its own.
        """
        self.process = process
        self.partition_map = partition_map
        self.multicast = multicast
        self.my_gid = partition_map.topology.group_of(process.pid)
        self.state: Dict[str, object] = {}
        self.applied: List[str] = []         # op ids, in application order
        self.applied_ops: List[WriteOp] = []
        self._waiters: Dict[str, List[CompletionHandler]] = {}
        multicast.set_delivery_handler(self._on_deliver)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def put(self, key: str, value: object,
            on_applied: Optional[CompletionHandler] = None) -> str:
        """Atomically write one key; returns the operation id."""
        return self.put_many({key: value}, on_applied=on_applied)

    def put_many(self, writes: Dict[str, object],
                 on_applied: Optional[CompletionHandler] = None) -> str:
        """Atomically write several keys — across partitions if needed.

        The operation is multicast to exactly the groups owning the
        touched keys (genuine multicast keeps everyone else out of it).

        Raises:
            ValueError: If ``writes`` is empty — a no-op cast would
                still be ordered and replicated everywhere (matching
                the ``burst_workload``/``poisson_workload`` guards).
        """
        if not writes:
            raise ValueError(
                f"put_many needs a non-empty write batch, got {writes!r}"
            )
        op = WriteOp(
            op_id=f"op{next(_OP_IDS):06d}",
            writes=tuple(sorted(writes.items())),
        )
        dest = self.partition_map.groups_of(op.keys())
        if on_applied is not None:
            if self.my_gid in dest:
                self._waiters.setdefault(op.op_id, []).append(on_applied)
            else:
                raise ValueError(
                    "completion callbacks need the caller's group among "
                    "the destinations (the local replica must apply)"
                )
        msg = AppMessage.fresh(sender=self.process.pid, dest_groups=dest,
                               payload=op.to_payload(), mid=op.op_id)
        self.multicast.a_mcast(msg)
        return op.op_id

    def get(self, key: str) -> object:
        """Read a key from the local replica (must own the partition)."""
        if not self.partition_map.is_replica(self.process.pid, key):
            raise KeyError(
                f"process {self.process.pid} does not replicate {key!r} "
                f"(it lives in group {self.partition_map.group_of(key)})"
            )
        return self.state.get(key)

    def owned_snapshot(self) -> Dict[str, object]:
        """All locally replicated key/value pairs."""
        return dict(self.state)

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def _on_deliver(self, msg: AppMessage) -> None:
        op = WriteOp.from_payload(msg.payload)
        self.applied.append(op.op_id)
        self.applied_ops.append(op)
        for key, value in op.writes:
            if self.partition_map.group_of(key) == self.my_gid:
                self.state[key] = value
        for waiter in self._waiters.pop(op.op_id, []):
            waiter(op.op_id)
