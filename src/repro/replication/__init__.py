"""Replicated data stores over the paper's primitives.

The applications the paper's introduction motivates:

* :class:`ReplicatedKVStore` — partial replication via **genuine
  atomic multicast** (each group owns a partition; operations involve
  only the groups they touch);
* :class:`ReplicatedLedger` — full replication via **atomic
  broadcast** (every group holds everything; latency-optimal with
  Algorithm A2's degree-1 rounds);
* :class:`KVCluster` / :class:`LedgerCluster` — one-call deployments
  wired into the experiment runtime (metering, logging, checkers).
"""

from repro.replication.cluster import (
    KVCluster,
    LedgerCluster,
    TappedEndpoint,
    assert_group_convergence,
    describe_divergence,
)
from repro.replication.kvstore import ReplicatedKVStore, WriteOp
from repro.replication.ledger import ReplicatedLedger, Transfer
from repro.replication.partition import PartitionMap

__all__ = ["KVCluster", "LedgerCluster", "ReplicatedKVStore", "WriteOp",
           "ReplicatedLedger", "TappedEndpoint", "Transfer", "PartitionMap",
           "assert_group_convergence", "describe_divergence"]
