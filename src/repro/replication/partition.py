"""Key partitioning for the partial-replication layer.

The paper motivates genuine atomic multicast with partial replication:
each group replicates a subset of the application's data, and an
operation should involve only the groups that store the keys it
touches.  :class:`PartitionMap` is that key → group assignment.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional, Tuple

from repro.net.topology import Topology


class PartitionMap:
    """Maps application keys to the group that replicates them."""

    def __init__(self, topology: Topology,
                 explicit: Optional[Dict[str, int]] = None) -> None:
        """Create a map over ``topology``'s groups.

        Args:
            explicit: Fixed key → group assignments (e.g. one partition
                per table).  Keys not listed fall back to hashing.
        """
        self.topology = topology
        self.explicit = dict(explicit or {})
        for key, gid in self.explicit.items():
            if gid not in topology.group_ids:
                raise ValueError(f"key {key!r} mapped to unknown group {gid}")
        # Routing runs group_of per key per operation; hashing the same
        # hot keys over and over would dominate the serving layer's
        # submit path.  The assignment is immutable, so memoise it.
        self._hash_memo: Dict[str, int] = {}

    def group_of(self, key: str) -> int:
        """The group replicating ``key`` (memoised hash assignment)."""
        if key in self.explicit:
            return self.explicit[key]
        gid = self._hash_memo.get(key)
        if gid is None:
            digest = hashlib.sha256(key.encode()).digest()
            gid = int.from_bytes(digest[:4], "big") % self.topology.n_groups
            self._hash_memo[key] = gid
        return gid

    def groups_of(self, keys: Iterable[str]) -> Tuple[int, ...]:
        """The destination-group set of an operation touching ``keys``.

        Raises:
            ValueError: If ``keys`` is empty — an empty destination set
                would silently produce an undeliverable cast.
        """
        dest = tuple(sorted({self.group_of(k) for k in keys}))
        if not dest:
            raise ValueError(
                "groups_of needs at least one key: an operation touching "
                "no keys has no destination groups"
            )
        return dest

    def is_replica(self, pid: int, key: str) -> bool:
        """Does process ``pid`` hold a replica of ``key``?"""
        return self.topology.group_of(pid) == self.group_of(key)
