"""Key partitioning for the partial-replication layer.

The paper motivates genuine atomic multicast with partial replication:
each group replicates a subset of the application's data, and an
operation should involve only the groups that store the keys it
touches.  :class:`PartitionMap` is that key → group assignment.

**Versioned-ownership contract.**  The assignment is *not* immutable:
elastic repartitioning (:mod:`repro.reconfig`) moves key ranges
between groups at totally-ordered points, mutating a replica's map
view through :meth:`apply_assignments`.  Every mutation bumps
:attr:`version` and invalidates the fallback-hash memo, so a cached
answer can never outlive the epoch it was computed in.  Consumers that
cache ``group_of`` results themselves must key their caches by
``(map.version, key)`` or subscribe to the same delivery stream the
map is mutated from.

Two fallback ownership functions exist for keys without an explicit
assignment: the legacy ``sha256 % n_groups`` modulo (``placement=
"hash"``, the default, preserved bit-for-bit for existing scenarios)
and the consistent-hash ring of :class:`repro.reconfig.ring.HashRing`
(``placement="ring"``), which elastic deployments use because adding
or removing a group remaps only ≈1/n of the keyspace.  Explicit
assignments always take precedence over either fallback — migrations
are recorded as explicit overrides on top of the fallback, so the
ring itself never needs to change mid-run.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional, Tuple

from repro.net.topology import Topology

#: Fallback ownership functions for keys without an explicit entry.
PLACEMENTS = ("hash", "ring")


class PartitionMap:
    """Maps application keys to the group that replicates them."""

    def __init__(self, topology: Topology,
                 explicit: Optional[Dict[str, int]] = None,
                 placement: str = "hash",
                 ring_groups: Optional[Iterable[int]] = None,
                 vnodes: int = 64) -> None:
        """Create a map over ``topology``'s groups.

        Args:
            explicit: Fixed key → group assignments (e.g. one partition
                per table).  Keys not listed fall back to ``placement``.
            placement: Fallback ownership function — ``"hash"`` (the
                legacy ``sha256 % n_groups`` modulo) or ``"ring"``
                (consistent hashing with virtual nodes).
            ring_groups: The groups participating in the ring (default:
                every group of the topology).  Elastic stores restrict
                this to the data groups so spectator groups never own
                keys.
            vnodes: Virtual nodes per group on the ring.
        """
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; have {list(PLACEMENTS)}"
            )
        self.topology = topology
        self.placement = placement
        self.explicit = dict(explicit or {})
        for key, gid in self.explicit.items():
            if gid not in topology.group_ids:
                raise ValueError(f"key {key!r} mapped to unknown group {gid}")
        if placement == "ring":
            from repro.reconfig.ring import HashRing
            groups = tuple(ring_groups if ring_groups is not None
                           else topology.group_ids)
            for gid in groups:
                if gid not in topology.group_ids:
                    raise ValueError(
                        f"ring group {gid} not in topology"
                    )
            self.ring = HashRing(groups, vnodes=vnodes)
        else:
            self.ring = None
        self._version = 0
        # Routing runs group_of per key per operation; hashing the same
        # hot keys over and over would dominate the serving layer's
        # submit path.  The memo is epoch-aware: every version bump
        # clears it, so no cached assignment survives a reconfiguration.
        self._hash_memo: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The ownership epoch: bumped by every applied mutation."""
        return self._version

    def group_of(self, key: str) -> int:
        """The group replicating ``key`` (memoised fallback assignment)."""
        if key in self.explicit:
            return self.explicit[key]
        gid = self._hash_memo.get(key)
        if gid is None:
            if self.ring is not None:
                gid = self.ring.owner(key)
            else:
                digest = hashlib.sha256(key.encode()).digest()
                gid = (int.from_bytes(digest[:4], "big")
                       % self.topology.n_groups)
            self._hash_memo[key] = gid
        return gid

    def groups_of(self, keys: Iterable[str]) -> Tuple[int, ...]:
        """The destination-group set of an operation touching ``keys``.

        Raises:
            ValueError: If ``keys`` is empty — an empty destination set
                would silently produce an undeliverable cast.
        """
        dest = tuple(sorted({self.group_of(k) for k in keys}))
        if not dest:
            raise ValueError(
                "groups_of needs at least one key: an operation touching "
                "no keys has no destination groups"
            )
        return dest

    def is_replica(self, pid: int, key: str) -> bool:
        """Does process ``pid`` hold a replica of ``key``?"""
        return self.topology.group_of(pid) == self.group_of(key)

    # ------------------------------------------------------------------
    # Mutation (applied only at totally-ordered delivery points)
    # ------------------------------------------------------------------
    def assignments_of(self, keys: Iterable[str]) -> Dict[str, Optional[int]]:
        """The current *explicit* entries for ``keys`` (None = fallback).

        The migration protocol records these before a move so an
        aborted reconfiguration can restore the exact prior epoch.
        """
        return {k: self.explicit.get(k) for k in keys}

    def apply_assignments(
            self, assignments: Dict[str, Optional[int]]) -> int:
        """Apply explicit overrides (None deletes one) and bump the epoch.

        Returns the new :attr:`version`.  Callers must only invoke this
        at A-Deliver of a reconfiguration control message — that is the
        versioned-ownership contract that keeps every replica of a
        group on the same epoch at the same point of the total order.
        """
        for key, gid in assignments.items():
            if gid is None:
                self.explicit.pop(key, None)
            else:
                if gid not in self.topology.group_ids:
                    raise ValueError(
                        f"key {key!r} mapped to unknown group {gid}"
                    )
                self.explicit[key] = gid
        self._version += 1
        self._hash_memo.clear()
        return self._version

    def apply_move(self, keys: Iterable[str], dst: int) -> int:
        """Move ``keys`` to group ``dst`` (epoch-bumping convenience)."""
        return self.apply_assignments({k: dst for k in keys})

    def clone(self) -> "PartitionMap":
        """An independent view with the same assignment and epoch.

        Each replica mutates its own clone at its own delivery points;
        the pristine construction-time map stays with the cluster as
        the epoch-0 authority the checkers replay from.
        """
        out = PartitionMap(self.topology, explicit=self.explicit)
        out.placement = self.placement
        out.ring = self.ring  # rings are immutable values; share them.
        out._version = self._version
        return out
