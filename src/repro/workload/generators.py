"""Workload generators: who casts what, where, and when.

A workload is a deterministic (seeded) list of :class:`CastPlan` items —
(time, sender, destination groups, payload) — that the experiment
runtime schedules onto a built system.  Separating plan generation from
execution keeps runs reproducible and lets the same plan drive different
protocols in a comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.net.topology import Topology


@dataclass(frozen=True)
class CastPlan:
    """One planned A-XCast."""

    time: float
    sender: int
    dest_groups: Tuple[int, ...]
    payload: object = None


# A destination chooser maps (rng, topology, sender) to a group tuple.
DestinationChooser = Callable[[random.Random, Topology, int], Tuple[int, ...]]


# ----------------------------------------------------------------------
# Destination distributions
# ----------------------------------------------------------------------
def all_groups(rng: random.Random, topology: Topology,
               sender: int) -> Tuple[int, ...]:
    """Broadcast: every group (the only choice for A2 et al.)."""
    return tuple(topology.group_ids)


def fixed_groups(groups: Sequence[int]) -> DestinationChooser:
    """Always the given groups."""
    dest = tuple(sorted(set(groups)))

    def choose(rng, topology, sender):
        return dest

    return choose


def uniform_k_groups(k: int, include_sender_group: bool = True
                     ) -> DestinationChooser:
    """A uniformly random set of ``k`` groups per message.

    With ``include_sender_group`` the caster's own group is always one
    of the k (the typical partial-replication pattern: update your own
    partition plus k-1 remote ones).
    """

    def choose(rng: random.Random, topology: Topology,
               sender: int) -> Tuple[int, ...]:
        gids = list(topology.group_ids)
        if k > len(gids):
            raise ValueError(f"k={k} exceeds group count {len(gids)}")
        if include_sender_group:
            own = topology.group_of(sender)
            others = [g for g in gids if g != own]
            picked = rng.sample(others, k - 1) + [own]
        else:
            picked = rng.sample(gids, k)
        return tuple(sorted(picked))

    return choose


def zipf_group_count(max_k: int, skew: float = 1.5,
                     include_sender_group: bool = True
                     ) -> DestinationChooser:
    """Mostly-local traffic: the destination count follows a Zipf law.

    Most messages go to 1 group, a few to 2, rarely to ``max_k`` —
    the access pattern the paper's partial-replication motivation
    assumes.
    """
    weights = [1.0 / (i ** skew) for i in range(1, max_k + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def choose(rng: random.Random, topology: Topology,
               sender: int) -> Tuple[int, ...]:
        u = rng.random()
        k = next(i + 1 for i, c in enumerate(cumulative) if u <= c)
        return uniform_k_groups(k, include_sender_group)(rng, topology, sender)

    return choose


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
def poisson_workload(
    topology: Topology,
    rng: random.Random,
    rate: float,
    duration: float,
    destinations: Optional[DestinationChooser] = None,
    senders: Optional[Sequence[int]] = None,
    start: float = 0.0,
) -> List[CastPlan]:
    """Poisson arrivals at ``rate`` messages per time unit.

    Senders are drawn uniformly from ``senders`` (default: everyone).

    Raises:
        ValueError: If ``rate`` is not strictly positive (expovariate
            would otherwise fail with an opaque error mid-generation).
    """
    if rate <= 0:
        raise ValueError(
            f"poisson_workload needs a positive rate, got {rate!r}"
        )
    destinations = destinations or all_groups
    senders = list(senders) if senders is not None else topology.processes
    plans: List[CastPlan] = []
    t = start
    while True:
        t += rng.expovariate(rate)
        if t >= start + duration:
            break
        sender = rng.choice(senders)
        plans.append(CastPlan(
            time=t, sender=sender,
            dest_groups=destinations(rng, topology, sender),
            payload=len(plans),
        ))
    return plans


def periodic_workload(
    topology: Topology,
    period: float,
    count: int,
    destinations: Optional[DestinationChooser] = None,
    senders: Optional[Sequence[int]] = None,
    start: float = 0.0,
    rng: Optional[random.Random] = None,
) -> List[CastPlan]:
    """``count`` casts spaced exactly ``period`` apart, round-robin
    over ``senders``.

    Raises:
        ValueError: If ``period`` is not strictly positive or ``count``
            is negative (matching :func:`poisson_workload`'s guard —
            a zero period would stack every cast on one instant by
            accident, and a negative count silently yields nothing).
    """
    if period <= 0:
        raise ValueError(
            f"periodic_workload needs a positive period, got {period!r}"
        )
    if count < 0:
        raise ValueError(
            f"periodic_workload needs a non-negative count, got {count!r}"
        )
    destinations = destinations or all_groups
    senders = list(senders) if senders is not None else topology.processes
    rng = rng or random.Random(0)
    plans: List[CastPlan] = []
    for i in range(count):
        sender = senders[i % len(senders)]
        plans.append(CastPlan(
            time=start + i * period, sender=sender,
            dest_groups=destinations(rng, topology, sender),
            payload=i,
        ))
    return plans


def burst_workload(
    topology: Topology,
    rng: random.Random,
    bursts: int,
    burst_size: int,
    gap: float,
    destinations: Optional[DestinationChooser] = None,
    senders: Optional[Sequence[int]] = None,
    spread: float = 0.5,
    start: float = 0.0,
) -> List[CastPlan]:
    """Bursty traffic: ``bursts`` clumps of ``burst_size`` casts,
    separated by idle ``gap`` — the adversarial pattern for quiescence
    prediction (paper Section 5.3).

    Raises:
        ValueError: If ``bursts``/``burst_size`` is not strictly
            positive, or ``gap``/``spread`` is negative (matching
            :func:`poisson_workload`'s guard).
    """
    if bursts <= 0:
        raise ValueError(
            f"burst_workload needs a positive burst count, got {bursts!r}"
        )
    if burst_size <= 0:
        raise ValueError(
            f"burst_workload needs a positive burst size, got {burst_size!r}"
        )
    if gap < 0:
        raise ValueError(
            f"burst_workload needs a non-negative gap, got {gap!r}"
        )
    if spread < 0:
        raise ValueError(
            f"burst_workload needs a non-negative spread, got {spread!r}"
        )
    destinations = destinations or all_groups
    senders = list(senders) if senders is not None else topology.processes
    plans: List[CastPlan] = []
    for b in range(bursts):
        base = start + b * gap
        for i in range(burst_size):
            sender = rng.choice(senders)
            plans.append(CastPlan(
                time=base + rng.uniform(0.0, spread), sender=sender,
                dest_groups=destinations(rng, topology, sender),
                payload=(b, i),
            ))
    return sorted(plans, key=lambda p: p.time)


def schedule_workload(system, plans: List[CastPlan]) -> List:
    """Schedule every planned cast on a built system; returns messages."""
    return [
        system.cast_at(plan.time, plan.sender, plan.dest_groups,
                       payload=plan.payload)
        for plan in plans
    ]
