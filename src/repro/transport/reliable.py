"""A self-stabilizing retransmitting transport over lossy links.

The lossy adversary kinds (``drop``/``duplicate``/``corrupt``) break the
quasi-reliable link axiom the paper's protocols assume.  This module
restores it *beneath* them, in the classic sliding-window shape (Aspnes'
ABP/sliding-window framing; Dolev et al.'s stabilizing communication
over unreliable non-FIFO channels): per-link sequence numbers, a
checksum per copy, cumulative-plus-selective acknowledgements driving
retransmission with exponential backoff and jitter, and a dedup/reorder
window on the receiver — so each covered copy is released to the
protocol handler **exactly once, in per-link send order**, no matter
what the channel did to it.  Once the channel faults stop (the
injectors' ``until`` horizon), every outstanding frame drains and the
event queue quiesces with all properties green — the stabilization
property :mod:`repro.checkers.stabilization` asserts.

Wire format
-----------
The transport does not change message kinds or payloads — protocol
copies keep both, so traces, per-kind statistics and the genuineness
checker observe the same traffic shape as an unmounted run.  Instead,
every covered copy carries a per-copy frame word on the
:class:`~repro.net.message.Message` envelope itself:
``msg.wire = (seq << 8) | checksum``, where the 8-bit checksum covers
``(src, dst, seq)``.  Riding the envelope rather than the (shared)
payload dict keeps the hot send path allocation-free — a fan-out of N
copies sequences N integers instead of building per-send header maps —
and gives the corrupt injector a per-copy field to damage without
cloning payloads.  Corruption is *modeled*, not bit-flipped: the
injector XORs a non-zero mask into the checksum byte of one copy's
frame word (simulated frame damage), and a receiver discards any copy
whose checksum fails — so with the transport mounted, corruption
degrades to loss, which retransmission already handles, and without it
a corrupted copy is dropped at the link layer (``_deliver``'s filter
path), which is exactly how real link CRCs behave.

Acknowledgements travel as their own ``tsp.ack`` kind (never wrapped,
so no ack-of-ack regress), delayed and coalesced per link: one pending
ack timer per link batches a burst of arrivals into a single cumulative
ack carrying the sorted out-of-order buffer as a SACK list — the NACK
signal.  Gaps below the highest SACKed sequence trigger immediate
(fast) retransmission; a lazy per-link timer with exponential backoff
and seeded jitter covers everything else, including lost acks.

Failure semantics: retransmission to a destination stops only when that
destination has *actually* crashed (simulation ground truth, the same
rule the network's own delivery path applies) — never on mere failure-
detector suspicion, because a wrong suspicion under an eventually
perfect detector must not break the quasi-reliable promise between two
correct processes.  Failure-detection traffic (``fd.*``) bypasses the
transport entirely: heartbeats must feel the raw link, or loss could
never be told from death.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

#: Kind of acknowledgement messages (bypasses sequencing; see `covers`).
ACK_KIND = "tsp.ack"

#: Payload key of an ack: ``(cumulative, sack_tuple)``.
_ACK_BODY = "_tsa"


def _checksum(src: int, dst: int, seq: int) -> int:
    """8-bit header checksum over the link identity and sequence."""
    return ((seq * 2654435761) ^ (src * 7919) ^ (dst * 104729)) & 0xFF


class TransportStats:
    """Counters over everything the transport did in one run."""

    __slots__ = ("wrapped_sends", "data_copies", "retransmits",
                 "fast_retransmits", "acks_sent", "dup_suppressed",
                 "corrupt_detected", "buffered", "released", "abandoned")

    def __init__(self) -> None:
        self.wrapped_sends = 0      # logical sends wrapped
        self.data_copies = 0        # sequenced first-transmission copies
        self.retransmits = 0        # timer-driven re-sends
        self.fast_retransmits = 0   # SACK-gap-driven re-sends
        self.acks_sent = 0
        self.dup_suppressed = 0     # copies discarded by the dedup window
        self.corrupt_detected = 0   # copies discarded on checksum failure
        self.buffered = 0           # out-of-order copies parked
        self.released = 0           # frames dispatched upward (exactly once)
        self.abandoned = 0          # frames given up on (destination crashed)

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"TransportStats({inner})"


class _SendLink:
    """Sender-side state of one directed (src, dst) link."""

    __slots__ = ("next_seq", "unacked", "rto", "min_gap", "backoff",
                 "timer_armed", "salt")

    def __init__(self, rto: float, min_gap: float, salt: int) -> None:
        self.next_seq = 0
        # seq -> (kind, body, last_sent_at); insertion order == seq
        # order because seqs are assigned monotonically.
        self.unacked: Dict[int, Tuple[str, dict, float]] = {}
        self.rto = rto            # base retransmission timeout
        self.min_gap = min_gap    # fast-retransmit damping interval
        self.backoff = 0          # exponent, reset on ack progress
        self.timer_armed = False
        # The link-identity half of _checksum, precomputed: the hot
        # paths fold only the sequence number per copy.
        self.salt = salt


class _RecvLink:
    """Receiver-side state of one directed (src, dst) link."""

    __slots__ = ("next_seq", "buffer", "ack_armed", "salt")

    def __init__(self, salt: int) -> None:
        self.next_seq = 0
        # seq -> (msg, handler): out-of-order copies awaiting the gap.
        self.buffer: Dict[int, tuple] = {}
        self.ack_armed = False
        self.salt = salt


class ReliableTransport:
    """Per-link sequencing, acks, retransmission and dedup (see module)."""

    #: Backoff factor per fruitless retransmission round, and its cap.
    BACKOFF_FACTOR = 2.0
    MAX_BACKOFF_EXP = 3
    #: Jitter fraction added to each rescheduled retransmission timer.
    JITTER = 0.25

    def __init__(self, sim, network, rng: random.Random,
                 rto: Optional[float] = None,
                 ack_delay: Optional[float] = None) -> None:
        self.sim = sim
        self.network = network
        self.rng = rng
        self._stats = TransportStats()
        try:
            base = network.latency.min_inter_group()
        except ValueError:
            base = 1.0
        #: Ack coalescing window: one ack per link per burst of arrivals.
        self.ack_delay = ack_delay if ack_delay is not None else base
        #: Base timeout for links whose latency needs sampling.
        self._default_rto = (rto if rto is not None
                             else 3.0 * base + 2.0 * self.ack_delay)
        self._rto_override = rto
        # Nested src -> dst -> link maps: the hot paths hoist the outer
        # row once per send/arrival instead of hashing a fresh (src,
        # dst) tuple per copy.
        self._send_links: Dict[int, Dict[int, _SendLink]] = {}
        self._recv_links: Dict[int, Dict[int, _RecvLink]] = {}
        # kind -> covers verdict; the kind alphabet is tiny and covers()
        # runs once per logical send, so memoizing beats startswith.
        self._covered: Dict[str, bool] = {}
        # State of the send currently being sequenced, fixed by
        # sequencer(): the retransmission record shared by every copy's
        # unacked slot, and the sender's (hoisted) link row.
        self._rec: "tuple | None" = None
        self._row: Dict[int, _SendLink] = {}

    @property
    def stats(self) -> TransportStats:
        """The run's counters, with the watermark-derived ones synced.

        Every first transmission claims exactly one send-side sequence
        number, and a receiver advances ``next_seq`` by exactly one per
        frame it dispatches upward — so ``data_copies`` and
        ``released`` are the sums of the links' watermarks, derived
        here instead of burdening the per-copy hot paths with counter
        increments.
        """
        stats = self._stats
        stats.data_copies = sum(
            link.next_seq
            for row in self._send_links.values()
            for link in row.values()
        )
        stats.released = sum(
            link.next_seq
            for row in self._recv_links.values()
            for link in row.values()
        )
        return stats

    # ------------------------------------------------------------------
    # Mounting
    # ------------------------------------------------------------------
    def mount(self) -> None:
        """Register the ack handler on every process of the network."""
        for process in self.network.processes():
            process.register_handler(ACK_KIND, self._on_ack)
        self.network.set_transport(self)

    # ------------------------------------------------------------------
    # Send side
    # ------------------------------------------------------------------
    def covers(self, kind: str) -> bool:
        """Whether ``kind`` rides the transport.

        Failure-detection traffic must feel the raw link (a heartbeat
        retransmitted after the sender died would falsify suspicion),
        and the transport's own control kinds are idempotent by design.
        """
        cached = self._covered.get(kind)
        if cached is None:
            cached = not (kind.startswith("fd.") or kind.startswith("tsp."))
            self._covered[kind] = cached
        return cached

    def sequencer(self, src: int, kind: str, payload: dict, now: float):
        """The per-copy sequencing hook for one logical send.

        Returns :meth:`next_wire` when ``kind`` rides the transport,
        None when it must feel the raw link.  The network calls this
        once per ``send``/``send_many`` (one logical send), then the
        returned hook once per copy.  Everything a copy shares with its
        fan-out siblings is fixed here, once: the retransmission record
        ``(kind, payload, sent_at)`` every copy's unacked slot will
        reference, and the sender's link row — so the per-copy cost is
        a single call that allocates nothing but the frame word.
        """
        if not self.covers(kind):
            return None
        self._stats.wrapped_sends += 1
        row = self._send_links.get(src)
        if row is None:
            row = self._send_links[src] = {}
        self._row = row
        self._rec = (kind, payload, now)
        return self.next_wire

    def next_wire(self, src: int, dst: int) -> int:
        """Sequence one copy; returns its frame word for the envelope.

        The caller (the network's send path) has already established
        that the sender is alive, so the unacked record can never be
        stranded by a send the network would have refused.  A relayed
        payload (protocols re-send ``msg.payload`` verbatim, e.g. the
        reliable-multicast lazy relay) needs no special casing: the
        frame word lives on the new copy's envelope, never in the
        payload.
        """
        try:
            link = self._row[dst]
        except KeyError:
            link = self._row[dst] = self._new_send_link(src, dst)
        seq = link.next_seq
        link.next_seq = seq + 1
        link.unacked[seq] = self._rec
        if not link.timer_armed:
            link.timer_armed = True
            self.sim.schedule_action(
                link.rto, lambda k=(src, dst): self._on_timer(k))
        return (seq << 8) | ((seq * 2654435761) ^ link.salt) & 0xFF

    def _new_send_link(self, src: int, dst: int) -> _SendLink:
        """Per-link timeouts scaled to the link's (fixed) latency."""
        group_of = self.network.topology.group_index
        delay = self.network.latency.fixed_delay(group_of[src],
                                                 group_of[dst])
        if self._rto_override is not None:
            rto = self._rto_override
        elif delay is not None:
            # > one round trip plus the receiver's ack coalescing delay,
            # so a zero-loss run never retransmits spuriously.
            rto = 3.0 * delay + 2.0 * self.ack_delay
        else:
            rto = self._default_rto
        min_gap = 2.0 * (delay if delay is not None else self.ack_delay)
        return _SendLink(rto, min_gap, (src * 7919) ^ (dst * 104729))

    def _resend(self, src: int, dst: int, seq: int, kind: str,
                body: dict) -> None:
        wire = (seq << 8) | _checksum(src, dst, seq)
        self.network._send_copy(src, dst, kind, body, wire)

    def _on_timer(self, lk: Tuple[int, int]) -> None:
        """Lazy per-link retransmission timer (non-cancellable kernel
        events force the check-on-fire shape: the timer re-derives what
        is actually due instead of being rescheduled on every ack)."""
        link = self._send_links[lk[0]][lk[1]]
        link.timer_armed = False
        if not link.unacked:
            link.backoff = 0
            return
        src, dst = lk
        processes = self.network._processes
        if processes[src].crashed:
            link.unacked.clear()
            return
        if processes[dst].crashed:
            # Ground-truth give-up: quasi-reliability promises nothing
            # to a crashed destination, and detector *suspicion* alone
            # must never stop retransmission between correct processes.
            self._stats.abandoned += len(link.unacked)
            link.unacked.clear()
            return
        now = self.sim.now
        factor = min(self.BACKOFF_FACTOR ** link.backoff,
                     self.BACKOFF_FACTOR ** self.MAX_BACKOFF_EXP)
        effective = link.rto * factor
        oldest_sent = next(iter(link.unacked.values()))[2]
        due = oldest_sent + effective
        if now + 1e-12 < due:
            link.timer_armed = True
            self.sim.schedule_action(due - now, lambda k=lk: self._on_timer(k))
            return
        for seq, (kind, body, _) in list(link.unacked.items()):
            link.unacked[seq] = (kind, body, now)
            self._resend(src, dst, seq, kind, body)
            self._stats.retransmits += 1
        link.backoff = min(link.backoff + 1, self.MAX_BACKOFF_EXP)
        factor = self.BACKOFF_FACTOR ** link.backoff
        jittered = link.rto * factor * (1.0 + self.JITTER * self.rng.random())
        link.timer_armed = True
        self.sim.schedule_action(jittered, lambda k=lk: self._on_timer(k))

    def _on_ack(self, msg) -> None:
        """Clear acked frames; SACK gaps trigger fast retransmission."""
        lk = (msg.dst, msg.src)  # the ack flows dst -> src of the link
        row = self._send_links.get(msg.dst)
        link = row.get(msg.src) if row is not None else None
        if link is None:
            return
        cum, sack = msg.payload[_ACK_BODY]
        unacked = link.unacked
        progress = False
        for seq in list(unacked):
            if seq >= cum:
                break  # insertion order == seq order
            del unacked[seq]
            progress = True
        for seq in sack:
            if seq in unacked:
                del unacked[seq]
                progress = True
        if progress:
            link.backoff = 0
        if sack and unacked:
            # Everything below the highest SACKed seq is a hole the
            # receiver is definitely missing: the NACK signal.
            src, dst = lk
            now = self.sim.now
            hi = sack[-1]
            for seq, (kind, body, sent_at) in list(unacked.items()):
                if seq >= hi:
                    break
                if now - sent_at < link.min_gap:
                    continue  # damp: a resend for this hole is in flight
                unacked[seq] = (kind, body, now)
                self._resend(src, dst, seq, kind, body)
                self._stats.fast_retransmits += 1

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def on_frame(self, receiver, msg, wire: int, handler,
                 profiler) -> None:
        """Admit one arriving copy: checksum, dedup, in-order release.

        Called by ``Network._deliver`` (with ``wire = msg.wire``) after
        the crash/filter/clock/trace steps, in place of the direct
        handler dispatch.  Releases zero or more frames upward (the
        copy itself if it fills the window's head, plus any buffered
        successors it unblocks).
        """
        dst = msg.dst
        src = msg.src
        try:
            link = self._recv_links[dst][src]
        except KeyError:
            row = self._recv_links.setdefault(dst, {})
            link = row[src] = _RecvLink((src * 7919) ^ (dst * 104729))
        seq = wire >> 8
        if (wire & 0xFF) != ((seq * 2654435761) ^ link.salt) & 0xFF:
            self._stats.corrupt_detected += 1
            # Ack anyway: the cumulative/SACK state tells the sender
            # what survived, and the damaged seq stays unacked.
        elif seq == link.next_seq:
            # In-order fast path: every copy of a fault-free run lands
            # here, so it touches no counters at all — the released
            # count is derived from next_seq (see the stats property).
            link.next_seq = seq + 1
            if profiler is None:
                handler(msg)
            else:
                self._dispatch_profiled(msg, handler, profiler)
            buffer = link.buffer
            while buffer and not receiver.crashed:
                entry = buffer.pop(link.next_seq, None)
                if entry is None:
                    break
                link.next_seq += 1
                self._dispatch(entry[0], entry[1], profiler)
        elif seq < link.next_seq or seq in link.buffer:
            self._stats.dup_suppressed += 1
            # Ack anyway: the first ack for this seq may have been lost.
        else:
            link.buffer[seq] = (msg, handler)
            self._stats.buffered += 1
        if not link.ack_armed:
            link.ack_armed = True
            self.sim.schedule_action(self.ack_delay,
                                     lambda k=(src, dst): self._send_ack(k))

    def _dispatch(self, msg, handler, profiler) -> None:
        """Release one frame to its protocol handler, profiled like a
        direct delivery (the handler's phase, not "network")."""
        if profiler is None:
            handler(msg)
            return
        self._dispatch_profiled(msg, handler, profiler)

    @staticmethod
    def _dispatch_profiled(msg, handler, profiler) -> None:
        from repro.net.network import _phase_of_kind

        profiler.push(_phase_of_kind(msg.kind))
        try:
            handler(msg)
        finally:
            profiler.pop()

    def _send_ack(self, lk: Tuple[int, int]) -> None:
        src, dst = lk
        link = self._recv_links[dst][src]
        link.ack_armed = False
        if self.network._processes[dst].crashed:
            return  # the dead don't ack
        sack = tuple(sorted(link.buffer)) if link.buffer else ()
        self._stats.acks_sent += 1
        self.network._send_copy(dst, src, ACK_KIND,
                                {_ACK_BODY: (link.next_seq, sack)})

    # ------------------------------------------------------------------
    # Drain inspection (stabilization checker)
    # ------------------------------------------------------------------
    def outstanding(self) -> Dict[str, Dict[Tuple[int, int], int]]:
        """Undrained transport state between *correct* endpoints.

        Links with a crashed endpoint are exempt: quasi-reliability
        promises nothing across them, so frames stranded there are not
        a stabilization failure.  An empty result is the transport's
        half of the self-stabilization property.
        """
        processes = self.network._processes
        unacked = {
            (src, dst): len(link.unacked)
            for src, row in self._send_links.items()
            for dst, link in row.items()
            if link.unacked and not processes[src].crashed
            and not processes[dst].crashed
        }
        buffered = {
            (src, dst): len(link.buffer)
            for dst, row in self._recv_links.items()
            for src, link in row.items()
            if link.buffer and not processes[src].crashed
            and not processes[dst].crashed
        }
        return {"unacked": unacked, "buffered": buffered}
