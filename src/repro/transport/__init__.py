"""Self-stabilizing reliable transport beneath the multicast protocols.

See :mod:`repro.transport.reliable` for the protocol; mounted via
``build_system(..., transport="reliable")`` or
``ScenarioSpec.transport``.
"""

from repro.transport.reliable import (
    ACK_KIND,
    ReliableTransport,
    TransportStats,
)

#: Transport modes accepted by ``build_system`` / ``ScenarioSpec``.
TRANSPORTS = ("none", "reliable")

__all__ = ["ACK_KIND", "ReliableTransport", "TransportStats", "TRANSPORTS"]
