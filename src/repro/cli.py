"""Command-line entry point: regenerate the paper's artefacts.

Usage::

    python -m repro.cli                 # run every experiment, print all
    python -m repro.cli fig1 theorems   # run a subset
    python -m repro.cli --list          # show experiments AND campaigns

    python -m repro.cli campaign cross-protocol --jobs 4
    python -m repro.cli campaign wan-storm --seeds 1,2,3 --out results/
    python -m repro.cli campaign crash-storm --jobs 8 --compare-serial

    python -m repro.cli profile --protocol a1 --groups 3,3,3 --rate 5
    python -m repro.cli profile --detector heartbeat --json prof.json

Each experiment prints the same rows/series the paper reports (or that
our extension sections define); the benchmark suite asserts the shapes,
this CLI is for eyeballing and for regenerating EXPERIMENTS.md.

The ``campaign`` verb executes a built-in scenario matrix
(:mod:`repro.campaigns.library`) over ``--jobs`` worker processes,
writes ``CAMPAIGN_<name>.json`` plus a markdown summary into ``--out``,
and exits non-zero if any property/genuineness checker failed.
``--compare-serial`` re-runs the campaign with one job, asserts the
per-seed metrics are identical, and records the measured speedup in the
JSON artefact.

The ``profile`` verb runs one scenario under the phase profiler and
prints where the wall time went — kernel dispatch, network, protocol,
consensus, failure detection, checkers.  The phases are *exclusive*
times, so they sum to the profiled wall clock (``--json`` emits the
machine-readable record the CI smoke job asserts on).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional


def _fig1() -> str:
    from repro.experiments.figure1 import fig1a_table, fig1b_table

    return fig1a_table() + "\n\n" + fig1b_table()


def _theorems() -> str:
    from repro.experiments.theorems import theorem_table

    return theorem_table()


def _lower_bounds() -> str:
    from repro.experiments.lower_bounds import lower_bound_table

    return lower_bound_table()


def _rate_sweep() -> str:
    from repro.experiments.rate_sweep import rate_table

    return rate_table()


def _tradeoff() -> str:
    from repro.experiments.tradeoff import tradeoff_table

    return tradeoff_table()


def _ablation() -> str:
    from repro.experiments.ablation import ablation_table

    return ablation_table()


def _prediction() -> str:
    from repro.experiments.prediction import prediction_table

    return prediction_table()


def _scalability() -> str:
    from repro.experiments.scalability import scalability_table

    return scalability_table()


def _wan() -> str:
    from repro.experiments.wan_heterogeneity import heterogeneity_table

    return heterogeneity_table()


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "fig1": _fig1,
    "theorems": _theorems,
    "lower-bounds": _lower_bounds,
    "rate-sweep": _rate_sweep,
    "tradeoff": _tradeoff,
    "ablation": _ablation,
    "prediction": _prediction,
    "wan": _wan,
    "scalability": _scalability,
}

DESCRIPTIONS = {
    "fig1": "Figure 1(a)+(b): protocol comparison tables",
    "theorems": "Theorems 4.1 / 5.1 / 5.2 constructive runs",
    "lower-bounds": "Propositions 3.1-3.3 counterexample search",
    "rate-sweep": "Section 5.3 broadcast-rate sweep (100 ms WAN)",
    "tradeoff": "Introduction's genuine-vs-broadcast tradeoff",
    "ablation": "Stage-skipping ablation vs Fritzke et al. [5]",
    "prediction": "Quiescence prediction strategies (§5.3 extension)",
    "wan": "Heterogeneous three-continent WAN, A1 vs ring [4]",
    "scalability": "Group-count/group-size sweeps of Figure 1 asymptotics",
}


def _print_listing() -> None:
    from repro.campaigns.library import CAMPAIGN_DESCRIPTIONS

    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name:14s} {DESCRIPTIONS[name]}")
    print()
    print("campaigns (python -m repro.cli campaign <name>):")
    for name, description in CAMPAIGN_DESCRIPTIONS.items():
        print(f"  {name:14s} {description}")


def _parse_seeds(parser: argparse.ArgumentParser,
                 text: Optional[str]) -> Optional[List[int]]:
    """Parse ``--seeds``; malformed values are usage errors (exit 2)."""
    if text is None:
        return None
    try:
        seeds = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        parser.error(f"--seeds must be comma-separated ints: {text!r}")
    if not seeds:
        parser.error("--seeds must name at least one seed")
    # Results are keyed by (scenario, seed): a repeated seed would pay
    # for a run whose result collapses onto the first one.
    return list(dict.fromkeys(seeds))


def campaign_main(argv: List[str]) -> int:
    """The ``campaign`` verb: run built-in scenario matrices."""
    from repro.campaigns.library import CAMPAIGNS, get_campaign
    from repro.campaigns.runner import CampaignRunner, verify_determinism

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli campaign",
        description="Run a declarative scenario matrix over worker "
                    "processes and persist CAMPAIGN_<name>.json.",
    )
    parser.add_argument("names", nargs="*",
                        help="campaign names (default: all built-ins)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default: 1, serial)")
    parser.add_argument("--seeds", type=str, default=None, metavar="CSV",
                        help="comma-separated seed override, e.g. 1,2,3")
    parser.add_argument("--out", type=str, default=".", metavar="DIR",
                        help="directory for CAMPAIGN_*.json artefacts")
    parser.add_argument("--max-scenarios", type=int, default=None,
                        metavar="K",
                        help="truncate each matrix to its first K "
                             "scenarios (smoke runs)")
    parser.add_argument("--compare-serial", action="store_true",
                        help="re-run with --jobs 1, assert per-seed "
                             "metrics identical, record the speedup")
    parser.add_argument("--list", action="store_true",
                        help="list built-in campaigns and exit")
    args = parser.parse_args(argv)

    if args.list:
        _print_listing()
        return 0

    chosen = args.names or list(CAMPAIGNS)
    unknown = [name for name in chosen if name not in CAMPAIGNS]
    if unknown:
        print(f"unknown campaign(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(CAMPAIGNS)}", file=sys.stderr)
        return 2

    seeds = _parse_seeds(parser, args.seeds)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.max_scenarios is not None and args.max_scenarios < 1:
        parser.error(
            f"--max-scenarios must be >= 1, got {args.max_scenarios}"
        )
    status = 0
    for name in chosen:
        campaign = get_campaign(name, seeds=seeds)
        if args.max_scenarios is not None:
            campaign.scenarios = campaign.scenarios[:args.max_scenarios]
        runner = CampaignRunner(campaign, jobs=args.jobs)
        result = runner.run()
        extra = None
        if args.compare_serial:
            import os

            serial = CampaignRunner(runner.campaign, jobs=1).run()
            verify_determinism(result, serial)
            baseline = {
                "wall_seconds": round(serial.wall_seconds, 4),
                "speedup": round(serial.wall_seconds
                                 / max(result.wall_seconds, 1e-9), 2),
                "per_seed_metrics_identical": True,
            }
            if (os.cpu_count() or 1) < 2 <= args.jobs:
                baseline["note"] = (
                    "single-CPU host: workers time-share one core, so "
                    "no wall-clock speedup is physically available here"
                )
            extra = {"serial_baseline": baseline}
        path = result.write(args.out, extra=extra)
        print(result.markdown_summary())
        if extra:
            print(f"\nserial wall {extra['serial_baseline']['wall_seconds']}s"
                  f" vs jobs={args.jobs} wall {result.wall_seconds:.2f}s "
                  f"-> speedup {extra['serial_baseline']['speedup']}x "
                  f"(per-seed metrics identical)")
        print(f"\nwrote {path}")
        if not result.all_checkers_ok:
            for scenario, seed, checker, verdict in result.failures():
                print(f"CHECKER FAILED: {scenario} seed={seed} "
                      f"{checker}: {verdict}", file=sys.stderr)
            status = 1
        print()
    return status


def profile_main(argv: List[str]) -> int:
    """The ``profile`` verb: one scenario under the phase profiler."""
    import json
    import time

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli profile",
        description="Run one scenario with per-subsystem wall-time "
                    "attribution and print the phase breakdown.",
    )
    parser.add_argument("--protocol", default="a1",
                        help="protocol registry key (default: a1)")
    parser.add_argument("--groups", default="3,3,3", metavar="CSV",
                        help="group sizes, e.g. 3,3,3 (default)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rate", type=float, default=5.0,
                        help="Poisson cast rate (default: 5.0)")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="workload duration in virtual time")
    parser.add_argument("--detector", default="perfect",
                        help="perfect | eventually-perfect | heartbeat "
                             "| heartbeat-elided")
    parser.add_argument("--heartbeat-period", type=float, default=5.0)
    parser.add_argument("--heartbeat-timeout", type=float, default=20.0)
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write the profile record as JSON")
    args = parser.parse_args(argv)

    from repro.runtime.builder import DETECTORS, PROTOCOLS, build_system
    from repro.runtime.report import RunReport
    from repro.workload.generators import (
        all_groups,
        poisson_workload,
        schedule_workload,
        uniform_k_groups,
    )

    if args.protocol not in PROTOCOLS:
        print(f"unknown protocol {args.protocol!r}; "
              f"available: {', '.join(sorted(PROTOCOLS))}", file=sys.stderr)
        return 2
    if args.detector not in DETECTORS:
        print(f"unknown detector {args.detector!r}; "
              f"available: {', '.join(DETECTORS)}", file=sys.stderr)
        return 2
    try:
        group_sizes = [int(part) for part in args.groups.split(",")
                       if part.strip()]
    except ValueError:
        parser.error(f"--groups must be comma-separated ints: "
                     f"{args.groups!r}")
    if not group_sizes:
        parser.error("--groups must name at least one group")

    heartbeat = args.detector.startswith("heartbeat")
    horizon = (args.duration + 10 * args.heartbeat_timeout
               if heartbeat else None)
    system = build_system(
        protocol=args.protocol, group_sizes=group_sizes, seed=args.seed,
        detector=args.detector, heartbeat_period=args.heartbeat_period,
        heartbeat_timeout=args.heartbeat_timeout,
        heartbeat_horizon=horizon, profile=True,
    )
    broadcast = not hasattr(system.endpoints[0], "a_mcast")
    destinations = (all_groups if broadcast
                    else uniform_k_groups(min(2, len(group_sizes))))
    plans = poisson_workload(
        system.topology, system.rng.stream("wl"),
        rate=args.rate, duration=args.duration, destinations=destinations,
    )
    schedule_workload(system, plans)
    if hasattr(system.endpoints[0], "start_rounds"):
        system.start_rounds()

    wall_start = time.perf_counter()
    system.run_quiescent()
    with system.profiler.phase("checkers"):
        from repro.checkers.properties import check_all

        check_all(system.log, system.topology, system.crashes)
    wall_seconds = time.perf_counter() - wall_start

    report = RunReport(system)
    print(report.render())
    print()
    timings = report.phase_timings()
    attributed = sum(timings.values())
    print(f"phase sum {attributed:.4f}s of {wall_seconds:.4f}s measured "
          f"wall ({attributed / wall_seconds:.1%} attributed)")
    if args.json:
        record = {
            "protocol": args.protocol,
            "group_sizes": group_sizes,
            "detector": args.detector,
            "seed": args.seed,
            "phase_timings": {k: round(v, 6) for k, v in timings.items()},
            "phase_sum_seconds": round(attributed, 6),
            "wall_seconds": round(wall_seconds, 6),
            "kernel_events": system.sim.events_executed,
            "casts": len(system.log.cast_messages()),
        }
        with open(args.json, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


def main(argv: List[str] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "campaign":
        return campaign_main(argv[1:])
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate the paper's tables, figures and runs. "
                    "Use the 'campaign' verb to run scenario matrices.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and campaigns")
    args = parser.parse_args(argv)

    if args.list:
        _print_listing()
        return 0

    chosen = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in chosen if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    for i, name in enumerate(chosen):
        if i:
            print("\n" + "=" * 72 + "\n")
        print(EXPERIMENTS[name]())
    return 0


if __name__ == "__main__":
    sys.exit(main())
