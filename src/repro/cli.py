"""Command-line entry point: regenerate the paper's artefacts.

Usage::

    python -m repro.cli                 # run every experiment, print all
    python -m repro.cli fig1 theorems   # run a subset
    python -m repro.cli --list          # show available experiments

Each experiment prints the same rows/series the paper reports (or that
our extension sections define); the benchmark suite asserts the shapes,
this CLI is for eyeballing and for regenerating EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List


def _fig1() -> str:
    from repro.experiments.figure1 import fig1a_table, fig1b_table

    return fig1a_table() + "\n\n" + fig1b_table()


def _theorems() -> str:
    from repro.experiments.theorems import theorem_table

    return theorem_table()


def _lower_bounds() -> str:
    from repro.experiments.lower_bounds import lower_bound_table

    return lower_bound_table()


def _rate_sweep() -> str:
    from repro.experiments.rate_sweep import rate_table

    return rate_table()


def _tradeoff() -> str:
    from repro.experiments.tradeoff import tradeoff_table

    return tradeoff_table()


def _ablation() -> str:
    from repro.experiments.ablation import ablation_table

    return ablation_table()


def _prediction() -> str:
    from repro.experiments.prediction import prediction_table

    return prediction_table()


def _scalability() -> str:
    from repro.experiments.scalability import scalability_table

    return scalability_table()


def _wan() -> str:
    from repro.experiments.wan_heterogeneity import heterogeneity_table

    return heterogeneity_table()


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "fig1": _fig1,
    "theorems": _theorems,
    "lower-bounds": _lower_bounds,
    "rate-sweep": _rate_sweep,
    "tradeoff": _tradeoff,
    "ablation": _ablation,
    "prediction": _prediction,
    "wan": _wan,
    "scalability": _scalability,
}

DESCRIPTIONS = {
    "fig1": "Figure 1(a)+(b): protocol comparison tables",
    "theorems": "Theorems 4.1 / 5.1 / 5.2 constructive runs",
    "lower-bounds": "Propositions 3.1-3.3 counterexample search",
    "rate-sweep": "Section 5.3 broadcast-rate sweep (100 ms WAN)",
    "tradeoff": "Introduction's genuine-vs-broadcast tradeoff",
    "ablation": "Stage-skipping ablation vs Fritzke et al. [5]",
    "prediction": "Quiescence prediction strategies (§5.3 extension)",
    "wan": "Heterogeneous three-continent WAN, A1 vs ring [4]",
    "scalability": "Group-count/group-size sweeps of Figure 1 asymptotics",
}


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate the paper's tables, figures and runs.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(f"{name:14s} {DESCRIPTIONS[name]}")
        return 0

    chosen = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in chosen if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    for i, name in enumerate(chosen):
        if i:
            print("\n" + "=" * 72 + "\n")
        print(EXPERIMENTS[name]())
    return 0


if __name__ == "__main__":
    sys.exit(main())
