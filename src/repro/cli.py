"""Command-line entry point: regenerate the paper's artefacts.

Usage::

    python -m repro.cli                 # run every experiment, print all
    python -m repro.cli fig1 theorems   # run a subset
    python -m repro.cli --list          # show experiments AND campaigns

    python -m repro.cli campaign cross-protocol --jobs 4
    python -m repro.cli campaign wan-storm --seeds 1,2,3 --out results/
    python -m repro.cli campaign crash-storm --jobs 8 --compare-serial

    python -m repro.cli profile --protocol a1 --groups 3,3,3 --rate 5
    python -m repro.cli profile --detector heartbeat --json prof.json

    python -m repro.cli torture --campaign torture --seeds 3
    python -m repro.cli torture --selftest --out torture-out
    python -m repro.cli replay COUNTEREXAMPLE_torture_s3.json

    python -m repro.cli store --protocol a1 --groups 2,2,2,2 --rate 1
    python -m repro.cli store --protocol a2 --routing broadcast

    python -m repro.cli rebalance --seeds 1,2,3 --out results/
    python -m repro.cli rebalance --explore --max-scenarios 2

    python -m repro.cli parallel --scenario both --jobs 2
    python -m repro.cli campaign cross-protocol --kernel auto

Each experiment prints the same rows/series the paper reports (or that
our extension sections define); the benchmark suite asserts the shapes,
this CLI is for eyeballing and for regenerating EXPERIMENTS.md.

The ``campaign`` verb executes a built-in scenario matrix
(:mod:`repro.campaigns.library`) over ``--jobs`` worker processes,
writes ``CAMPAIGN_<name>.json`` plus a markdown summary into ``--out``,
and exits non-zero if any property/genuineness checker failed.
``--compare-serial`` re-runs the campaign with one job, asserts the
per-seed metrics are identical, and records the measured speedup in the
JSON artefact.

The ``profile`` verb runs one scenario under the phase profiler and
prints where the wall time went — kernel dispatch, network, protocol,
consensus, failure detection, checkers.  The phases are *exclusive*
times, so they sum to the profiled wall clock (``--json`` emits the
machine-readable record the CI smoke job asserts on).

The ``store`` verb runs the transactional partitioned store
(:mod:`repro.store`) under one scenario — one-shot multi-partition
transactions routed by key ownership over genuine atomic multicast (or
broadcast-everything for the comparison) — checks one-copy
serializability and convergence, and prints commit latency plus the
per-group involvement table that quantifies genuineness.

The ``rebalance`` verb runs the elastic-repartitioning campaign
(:mod:`repro.reconfig`): the same zipf-skewed workload with the load
balancer off (the frozen epoch-0 map) and on, at 16 and 24 data
groups, every cell gated by the serializability and reconfig checkers.
It prints the static-vs-rebalance committed-throughput table and, with
``--explore``, aims the schedule explorer at the migration window and
shrinks any violation to a replayable counterexample.

The ``parallel`` verb runs a small and a large (64-process heartbeat)
scenario under both the serial and the conservative parallel kernel
and asserts bit-identical delivery orders, checker verdicts and
metrics — the CI smoke for the parallel kernel's equivalence claim.
``campaign --kernel auto`` runs a whole campaign over the parallel
kernel wherever a scenario is eligible (>= 2 groups, fixed latencies,
deterministic detector), degrading to serial elsewhere.

The ``torture`` verb drives a campaign's scenario × adversary grid
through the adversarial schedule explorer: each case runs under its
named adversary, and any checker violation is automatically shrunk
(fewer faults, smaller topology, shorter horizon) to a minimal
counterexample written as a replayable ``COUNTEREXAMPLE_*.json``
artifact.  ``--selftest`` proves the pipeline catches real bugs by
hunting the intentionally broken FIFO-sequencer fixture.  The
``replay`` verb re-runs an artifact and asserts bit-identical checker
verdicts and delivery orders.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional


def _fig1() -> str:
    from repro.experiments.figure1 import fig1a_table, fig1b_table

    return fig1a_table() + "\n\n" + fig1b_table()


def _theorems() -> str:
    from repro.experiments.theorems import theorem_table

    return theorem_table()


def _lower_bounds() -> str:
    from repro.experiments.lower_bounds import lower_bound_table

    return lower_bound_table()


def _rate_sweep() -> str:
    from repro.experiments.rate_sweep import rate_table

    return rate_table()


def _tradeoff() -> str:
    from repro.experiments.tradeoff import tradeoff_table

    return tradeoff_table()


def _ablation() -> str:
    from repro.experiments.ablation import ablation_table

    return ablation_table()


def _prediction() -> str:
    from repro.experiments.prediction import prediction_table

    return prediction_table()


def _scalability() -> str:
    from repro.experiments.scalability import scalability_table

    return scalability_table()


def _wan() -> str:
    from repro.experiments.wan_heterogeneity import heterogeneity_table

    return heterogeneity_table()


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "fig1": _fig1,
    "theorems": _theorems,
    "lower-bounds": _lower_bounds,
    "rate-sweep": _rate_sweep,
    "tradeoff": _tradeoff,
    "ablation": _ablation,
    "prediction": _prediction,
    "wan": _wan,
    "scalability": _scalability,
}

DESCRIPTIONS = {
    "fig1": "Figure 1(a)+(b): protocol comparison tables",
    "theorems": "Theorems 4.1 / 5.1 / 5.2 constructive runs",
    "lower-bounds": "Propositions 3.1-3.3 counterexample search",
    "rate-sweep": "Section 5.3 broadcast-rate sweep (100 ms WAN)",
    "tradeoff": "Introduction's genuine-vs-broadcast tradeoff",
    "ablation": "Stage-skipping ablation vs Fritzke et al. [5]",
    "prediction": "Quiescence prediction strategies (§5.3 extension)",
    "wan": "Heterogeneous three-continent WAN, A1 vs ring [4]",
    "scalability": "Group-count/group-size sweeps of Figure 1 asymptotics",
}


def _print_listing() -> None:
    from repro.adversary.spec import ADVERSARIES
    from repro.campaigns.library import CAMPAIGN_DESCRIPTIONS

    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name:14s} {DESCRIPTIONS[name]}")
    print()
    print("campaigns (python -m repro.cli campaign <name>):")
    for name, description in CAMPAIGN_DESCRIPTIONS.items():
        print(f"  {name:14s} {description}")
    print()
    print("adversaries (ScenarioSpec adversary=<name>, "
          "python -m repro.cli torture):")
    for name, spec in ADVERSARIES.items():
        print(f"  {name:16s} {spec.describe()}")
    print()
    print("loss sweeps: python -m repro.cli lossy "
          "[--rates CSV] [--include-none]")


def _parse_seeds(parser: argparse.ArgumentParser,
                 text: Optional[str]) -> Optional[List[int]]:
    """Parse ``--seeds``; malformed values are usage errors (exit 2)."""
    if text is None:
        return None
    try:
        seeds = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        parser.error(f"--seeds must be comma-separated ints: {text!r}")
    if not seeds:
        parser.error("--seeds must name at least one seed")
    # Results are keyed by (scenario, seed): a repeated seed would pay
    # for a run whose result collapses onto the first one.
    return list(dict.fromkeys(seeds))


def _parse_int_csv(parser: argparse.ArgumentParser, flag: str,
                   text: str, required: bool = True) -> List[int]:
    """Parse a comma-separated int flag; malformed values exit 2."""
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        parser.error(f"{flag} must be comma-separated ints: {text!r}")
    if required and not values:
        parser.error(f"{flag} must name at least one value")
    return values


def campaign_main(argv: List[str]) -> int:
    """The ``campaign`` verb: run built-in scenario matrices."""
    from repro.campaigns.library import CAMPAIGNS, get_campaign
    from repro.campaigns.runner import CampaignRunner, verify_determinism

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli campaign",
        description="Run a declarative scenario matrix over worker "
                    "processes and persist CAMPAIGN_<name>.json.",
    )
    parser.add_argument("names", nargs="*",
                        help="campaign names (default: all built-ins)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default: 1, serial)")
    parser.add_argument("--seeds", type=str, default=None, metavar="CSV",
                        help="comma-separated seed override, e.g. 1,2,3")
    parser.add_argument("--out", type=str, default=".", metavar="DIR",
                        help="directory for CAMPAIGN_*.json artefacts")
    parser.add_argument("--max-scenarios", type=int, default=None,
                        metavar="K",
                        help="truncate each matrix to its first K "
                             "scenarios (smoke runs)")
    parser.add_argument("--compare-serial", action="store_true",
                        help="re-run with --jobs 1, assert per-seed "
                             "metrics identical, record the speedup")
    parser.add_argument("--kernel", default=None,
                        choices=["serial", "auto", "parallel"],
                        help="override every scenario's simulation "
                             "kernel ('auto' uses the parallel kernel "
                             "where eligible, serial elsewhere)")
    parser.add_argument("--list", action="store_true",
                        help="list built-in campaigns and exit")
    args = parser.parse_args(argv)

    if args.list:
        _print_listing()
        return 0

    chosen = args.names or list(CAMPAIGNS)
    unknown = [name for name in chosen if name not in CAMPAIGNS]
    if unknown:
        print(f"unknown campaign(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(CAMPAIGNS)}", file=sys.stderr)
        return 2

    seeds = _parse_seeds(parser, args.seeds)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.max_scenarios is not None and args.max_scenarios < 1:
        parser.error(
            f"--max-scenarios must be >= 1, got {args.max_scenarios}"
        )
    status = 0
    for name in chosen:
        campaign = get_campaign(name, seeds=seeds)
        if args.max_scenarios is not None:
            campaign.scenarios = campaign.scenarios[:args.max_scenarios]
        if args.kernel is not None:
            import dataclasses

            campaign.scenarios = [
                dataclasses.replace(spec, kernel=args.kernel)
                for spec in campaign.scenarios
            ]
        runner = CampaignRunner(campaign, jobs=args.jobs)
        result = runner.run()
        extra = None
        if args.compare_serial:
            import os

            serial = CampaignRunner(runner.campaign, jobs=1).run()
            verify_determinism(result, serial)
            baseline = {
                "wall_seconds": round(serial.wall_seconds, 4),
                "speedup": round(serial.wall_seconds
                                 / max(result.wall_seconds, 1e-9), 2),
                "per_seed_metrics_identical": True,
            }
            if (os.cpu_count() or 1) < 2 <= args.jobs:
                baseline["note"] = (
                    "single-CPU host: workers time-share one core, so "
                    "no wall-clock speedup is physically available here"
                )
            extra = {"serial_baseline": baseline}
        path = result.write(args.out, extra=extra)
        print(result.markdown_summary())
        if extra:
            print(f"\nserial wall {extra['serial_baseline']['wall_seconds']}s"
                  f" vs jobs={args.jobs} wall {result.wall_seconds:.2f}s "
                  f"-> speedup {extra['serial_baseline']['speedup']}x "
                  f"(per-seed metrics identical)")
        print(f"\nwrote {path}")
        if not result.all_checkers_ok:
            for scenario, seed, checker, verdict in result.failures():
                print(f"CHECKER FAILED: {scenario} seed={seed} "
                      f"{checker}: {verdict}", file=sys.stderr)
            status = 1
        print()
    return status


def profile_main(argv: List[str]) -> int:
    """The ``profile`` verb: one scenario under the phase profiler."""
    import json
    import time

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli profile",
        description="Run one scenario with per-subsystem wall-time "
                    "attribution and print the phase breakdown.",
    )
    parser.add_argument("--protocol", default="a1",
                        help="protocol registry key (default: a1)")
    parser.add_argument("--groups", default="3,3,3", metavar="CSV",
                        help="group sizes, e.g. 3,3,3 (default)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rate", type=float, default=5.0,
                        help="Poisson cast rate (default: 5.0)")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="workload duration in virtual time")
    parser.add_argument("--detector", default="perfect",
                        help="perfect | eventually-perfect | heartbeat "
                             "| heartbeat-elided")
    parser.add_argument("--heartbeat-period", type=float, default=5.0)
    parser.add_argument("--heartbeat-timeout", type=float, default=20.0)
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write the profile record as JSON")
    args = parser.parse_args(argv)

    from repro.runtime.builder import DETECTORS, PROTOCOLS, build_system
    from repro.runtime.report import RunReport
    from repro.workload.generators import (
        all_groups,
        poisson_workload,
        schedule_workload,
        uniform_k_groups,
    )

    if args.protocol not in PROTOCOLS:
        print(f"unknown protocol {args.protocol!r}; "
              f"available: {', '.join(sorted(PROTOCOLS))}", file=sys.stderr)
        return 2
    if args.detector not in DETECTORS:
        print(f"unknown detector {args.detector!r}; "
              f"available: {', '.join(DETECTORS)}", file=sys.stderr)
        return 2
    group_sizes = _parse_int_csv(parser, "--groups", args.groups)

    heartbeat = args.detector.startswith("heartbeat")
    horizon = (args.duration + 10 * args.heartbeat_timeout
               if heartbeat else None)
    system = build_system(
        protocol=args.protocol, group_sizes=group_sizes, seed=args.seed,
        detector=args.detector, heartbeat_period=args.heartbeat_period,
        heartbeat_timeout=args.heartbeat_timeout,
        heartbeat_horizon=horizon, profile=True,
    )
    broadcast = not hasattr(system.endpoints[0], "a_mcast")
    destinations = (all_groups if broadcast
                    else uniform_k_groups(min(2, len(group_sizes))))
    plans = poisson_workload(
        system.topology, system.rng.stream("wl"),
        rate=args.rate, duration=args.duration, destinations=destinations,
    )
    schedule_workload(system, plans)
    if hasattr(system.endpoints[0], "start_rounds"):
        system.start_rounds()

    wall_start = time.perf_counter()
    system.run_quiescent()
    with system.profiler.phase("checkers"):
        from repro.checkers.properties import check_all

        check_all(system.log, system.topology, system.crashes)
    wall_seconds = time.perf_counter() - wall_start

    report = RunReport(system)
    print(report.render())
    print()
    timings = report.phase_timings()
    attributed = sum(timings.values())
    print(f"phase sum {attributed:.4f}s of {wall_seconds:.4f}s measured "
          f"wall ({attributed / wall_seconds:.1%} attributed)")
    if args.json:
        record = {
            "protocol": args.protocol,
            "group_sizes": group_sizes,
            "detector": args.detector,
            "seed": args.seed,
            "phase_timings": {k: round(v, 6) for k, v in timings.items()},
            "phase_sum_seconds": round(attributed, 6),
            "wall_seconds": round(wall_seconds, 6),
            "kernel_events": system.sim.events_executed,
            "casts": len(system.log.cast_messages()),
        }
        with open(args.json, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


def store_main(argv: List[str]) -> int:
    """The ``store`` verb: one transactional-store scenario, checked."""
    import json

    from repro.campaigns.runner import run_scenario_seed
    from repro.campaigns.spec import ScenarioSpec, StoreSpec
    from repro.runtime.builder import PROTOCOLS

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli store",
        description="Run the transactional partitioned store under one "
                    "scenario: route one-shot transactions via genuine "
                    "multicast (or broadcast-everything), check "
                    "one-copy serializability, and report commit "
                    "latency plus per-group involvement.",
    )
    parser.add_argument("--protocol", default="a1",
                        help="protocol registry key (default: a1)")
    parser.add_argument("--groups", default="2,2,2,2", metavar="CSV",
                        help="group sizes, e.g. 2,2,2,2 (default)")
    parser.add_argument("--data-groups", default=None, metavar="CSV",
                        help="groups owning partitions (default: all)")
    parser.add_argument("--routing", default="genuine",
                        choices=("genuine", "broadcast"),
                        help="genuine multicast to owner groups, or "
                             "broadcast-everything")
    parser.add_argument("--keys", type=int, default=48,
                        help="keyspace size (default: 48)")
    parser.add_argument("--rate", type=float, default=1.0,
                        help="Poisson transaction arrival rate")
    parser.add_argument("--duration", type=float, default=30.0,
                        help="workload duration in virtual time")
    parser.add_argument("--read-fraction", type=float, default=0.5)
    parser.add_argument("--multi-partition", type=float, default=0.25,
                        metavar="FRACTION",
                        help="fraction of multi-partition transactions")
    parser.add_argument("--ops", type=int, default=2, metavar="N",
                        help="operations per transaction (default: 2)")
    parser.add_argument("--zipf", type=float, default=1.0,
                        help="key-popularity zipf skew (default: 1.0)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write the run record as JSON")
    args = parser.parse_args(argv)

    if args.protocol not in PROTOCOLS:
        print(f"unknown protocol {args.protocol!r}; "
              f"available: {', '.join(sorted(PROTOCOLS))}", file=sys.stderr)
        return 2
    group_sizes = tuple(_parse_int_csv(parser, "--groups", args.groups))
    data_groups = None
    if args.data_groups is not None:
        data_groups = tuple(_parse_int_csv(parser, "--data-groups",
                                           args.data_groups))

    checkers = ["properties", "serializability", "convergence"]
    if args.routing == "genuine" and args.protocol != "nongenuine":
        checkers.append("genuineness")
    try:
        spec = ScenarioSpec(
            name="store-cli",
            protocol=args.protocol,
            group_sizes=group_sizes,
            store=StoreSpec(
                n_keys=args.keys, data_groups=data_groups,
                routing=args.routing, rate=args.rate,
                duration=args.duration, read_fraction=args.read_fraction,
                multi_partition_fraction=args.multi_partition,
                ops_per_txn=args.ops, zipf_skew=args.zipf,
            ),
            seeds=(args.seed,),
            checkers=tuple(checkers),
            metrics=("core", "latency", "traffic", "store", "involvement"),
        )
        result = run_scenario_seed(spec, args.seed)
    except ValueError as exc:
        print(f"invalid store scenario: {exc}", file=sys.stderr)
        return 2

    metrics = result.metrics
    print(f"store: {args.protocol} ({args.routing} routing), "
          f"groups {list(group_sizes)}, seed {args.seed}")
    print(f"  transactions: {metrics['txn_committed']:.0f} committed "
          f"of {metrics['txn_planned']:.0f} planned "
          f"({metrics['txn_multi_partition_fraction']:.0%} "
          f"multi-partition)")
    if "txn_latency_mean" in metrics:
        print(f"  commit latency (sim time): "
              f"mean {metrics['txn_latency_mean']:.2f}, "
              f"p50 {metrics['txn_latency_p50']:.2f}, "
              f"p90 {metrics['txn_latency_p90']:.2f}, "
              f"p99 {metrics['txn_latency_p99']:.2f}, "
              f"max {metrics['txn_latency_max']:.2f}")
    print("  involvement (sent/recv copies vs transactions addressed):")
    for gid in range(len(group_sizes)):
        sent = metrics.get(f"group{gid}_sent", 0.0)
        recv = metrics.get(f"group{gid}_recv", 0.0)
        dest = metrics.get(f"group{gid}_dest_txns", 0.0)
        tag = "" if dest else "   <- non-destination"
        print(f"    group {gid}: {sent:6.0f} sent {recv:6.0f} recv "
              f"{dest:5.0f} txns{tag}")
    print(f"  non-destination traffic: "
          f"{metrics['nondest_messages']:.0f} copies")
    for name, verdict in result.checkers.items():
        print(f"  checker {name}: {verdict}")

    if args.json:
        record = {
            "spec": spec.to_dict(),
            "seed": args.seed,
            "metrics": metrics,
            "checkers": result.checkers,
            "wall_seconds": round(result.wall_seconds, 4),
        }
        with open(args.json, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0 if result.ok else 1


def lossy_main(argv: List[str]) -> int:
    """The ``lossy`` verb: loss rate × transport grid for one protocol."""
    import json

    from repro.adversary.spec import AdversarySpec, InjectorSpec
    from repro.campaigns.metrics import extract
    from repro.campaigns.runner import build_scenario_system, run_checkers
    from repro.campaigns.spec import (
        DestinationSpec, ScenarioSpec, WorkloadSpec,
    )
    from repro.runtime.builder import PROTOCOLS
    from repro.sim.kernel import SimulationError

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli lossy",
        description="Sweep channel loss against the reliable transport: "
                    "for each loss rate, drop/duplicate/corrupt a "
                    "protocol's traffic and check that every property "
                    "plus self-stabilization survives.  --include-none "
                    "adds raw-link rows that show what the transport is "
                    "saving you from (expected to fail; they never "
                    "affect the exit status).",
    )
    parser.add_argument("--protocol", default="a1",
                        help="protocol registry key (default: a1)")
    parser.add_argument("--groups", default="2,2", metavar="CSV",
                        help="group sizes, e.g. 2,2 (default)")
    parser.add_argument("--rates", default="0.05,0.15,0.3", metavar="CSV",
                        help="drop probabilities to sweep "
                             "(default: 0.05,0.15,0.3)")
    parser.add_argument("--dup", type=float, default=0.1,
                        help="duplicate probability per rate (default 0.1)")
    parser.add_argument("--corrupt", type=float, default=0.05,
                        help="corrupt probability per rate (default 0.05)")
    parser.add_argument("--until", type=float, default=25.0,
                        help="virtual-time fault horizon (default 25)")
    parser.add_argument("--rate", type=float, default=1.0,
                        help="Poisson cast arrival rate (default 1.0)")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="workload duration in virtual time")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--max-events", type=int, default=2_000_000,
                        help="kernel event budget per cell (raw-link "
                             "rows livelock under loss; this bounds them)")
    parser.add_argument("--include-none", action="store_true",
                        help="also run each rate over transport='none'")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write the grid as JSON")
    args = parser.parse_args(argv)

    if args.protocol not in PROTOCOLS:
        print(f"unknown protocol {args.protocol!r}; "
              f"available: {', '.join(sorted(PROTOCOLS))}", file=sys.stderr)
        return 2
    group_sizes = tuple(_parse_int_csv(parser, "--groups", args.groups))
    try:
        rates = [float(part) for part in args.rates.split(",")
                 if part.strip()]
    except ValueError:
        parser.error(f"--rates must be comma-separated floats: "
                     f"{args.rates!r}")
    if not rates:
        parser.error("--rates must name at least one rate")

    transports = ("reliable", "none") if args.include_none else ("reliable",)
    rows = []
    status = 0
    for drop_p in rates:
        injectors = [InjectorSpec(kind="drop",
                                  params=(("probability", drop_p),
                                          ("until", args.until)))]
        if args.dup > 0:
            injectors.append(InjectorSpec(
                kind="duplicate",
                params=(("probability", args.dup), ("until", args.until))))
        if args.corrupt > 0:
            injectors.append(InjectorSpec(
                kind="corrupt",
                params=(("probability", args.corrupt),
                        ("until", args.until))))
        adversary = AdversarySpec(name=f"lossy-cli-{drop_p:g}",
                                  injectors=tuple(injectors))
        for transport in transports:
            spec = ScenarioSpec(
                name=f"lossy-cli-{drop_p:g}-{transport}",
                protocol=args.protocol,
                group_sizes=group_sizes,
                workload=WorkloadSpec(
                    kind="poisson", rate=args.rate, duration=args.duration,
                    destinations=DestinationSpec(kind="uniform-k",
                                                 k=min(2, len(group_sizes))),
                ),
                seeds=(args.seed,),
                transport=transport,
                start_rounds=(args.protocol == "a2"),
                checkers=("properties", "stabilization"),
                metrics=("core", "traffic", "transport"),
                max_events=args.max_events,
            )
            try:
                system, plans, applied = build_scenario_system(
                    spec, args.seed, adversary=adversary)
                system.run_quiescent(max_events=spec.max_events)
            except SimulationError as exc:
                rows.append({"drop": drop_p, "transport": transport,
                             "verdict": f"FAIL: {exc}", "metrics": {}})
                if transport == "reliable":
                    status = 1
                continue
            metrics = extract(system, list(spec.metrics))
            if applied is not None:
                metrics["faults_injected"] = float(applied.total_faults)
            verdicts = run_checkers(system, spec)
            bad = {k: v for k, v in verdicts.items() if v != "ok"}
            verdict = "ok" if not bad else "; ".join(
                f"{k}: {v}" for k, v in bad.items())
            rows.append({"drop": drop_p, "transport": transport,
                         "verdict": verdict, "metrics": metrics})
            if bad and transport == "reliable":
                status = 1

    print(f"lossy: {args.protocol}, groups {list(group_sizes)}, "
          f"seed {args.seed}, dup {args.dup:g}, corrupt {args.corrupt:g}, "
          f"faults stop at t={args.until:g}")
    header = (f"  {'drop':>6s} {'transport':>9s} {'faults':>6s} "
              f"{'rtx':>5s} {'fast':>5s} {'dupsup':>6s} {'corrupt':>7s} "
              f"{'ovh':>5s}  verdict")
    print(header)
    for row in rows:
        m = row["metrics"]
        if m:
            cells = (f"  {row['drop']:>6g} {row['transport']:>9s} "
                     f"{m.get('faults_injected', 0):>6.0f} "
                     f"{m['tsp_retransmits']:>5.0f} "
                     f"{m['tsp_fast_retransmits']:>5.0f} "
                     f"{m['tsp_dup_suppressed']:>6.0f} "
                     f"{m['tsp_corrupt_detected']:>7.0f} "
                     f"{m['tsp_overhead_copies']:>5.2f}  {row['verdict']}")
        else:
            cells = (f"  {row['drop']:>6g} {row['transport']:>9s} "
                     f"{'—':>6s} {'—':>5s} {'—':>5s} {'—':>6s} {'—':>7s} "
                     f"{'—':>5s}  {row['verdict'][:60]}")
        print(cells)
    if args.include_none:
        print("  (transport=none rows are expected to fail: they "
              "demonstrate the raw links; exit status ignores them)")

    if args.json:
        record = {
            "protocol": args.protocol,
            "group_sizes": list(group_sizes),
            "seed": args.seed,
            "dup": args.dup,
            "corrupt": args.corrupt,
            "until": args.until,
            "rows": rows,
        }
        with open(args.json, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return status


def _artifact_name(scenario: str, seed: int) -> str:
    safe = scenario.replace("/", "_").replace("=", "-").replace(" ", "_")
    return f"COUNTEREXAMPLE_{safe}_s{seed}.json"


def torture_main(argv: List[str]) -> int:
    """The ``torture`` verb: adversarial exploration with shrinking."""
    import json
    import os
    import time

    from repro.adversary.artifact import write_artifact
    from repro.adversary.explorer import run_case
    from repro.adversary.shrink import shrink
    from repro.adversary.spec import get_adversary
    from repro.campaigns.library import CAMPAIGNS, get_campaign

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli torture",
        description="Drive a campaign's scenario x adversary grid "
                    "through the schedule explorer; shrink any checker "
                    "violation to a minimal replayable counterexample.",
    )
    parser.add_argument("--campaign", default="torture", metavar="NAME",
                        help="campaign to torture (default: torture)")
    parser.add_argument("--seeds", type=str, default=None, metavar="CSV",
                        help="comma-separated seed override, e.g. 1,2,3")
    parser.add_argument("--out", type=str, default=".", metavar="DIR",
                        help="directory for TORTURE_/COUNTEREXAMPLE_ "
                             "artifacts")
    parser.add_argument("--max-scenarios", type=int, default=None,
                        metavar="K",
                        help="truncate the grid to its first K scenarios")
    parser.add_argument("--shrink-budget", type=int, default=120,
                        metavar="N",
                        help="max candidate runs per shrink (default 120)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="emit raw (unshrunk) counterexamples")
    parser.add_argument("--selftest", action="store_true",
                        help="hunt the intentionally broken protocol "
                             "fixture instead of a campaign: asserts "
                             "the explorer catches it, the shrinker "
                             "minimises it, and the artifact replays")
    args = parser.parse_args(argv)

    if args.shrink_budget < 1:
        parser.error(f"--shrink-budget must be >= 1, "
                     f"got {args.shrink_budget}")
    if args.max_scenarios is not None and args.max_scenarios < 1:
        parser.error(f"--max-scenarios must be >= 1, "
                     f"got {args.max_scenarios}")
    seeds = _parse_seeds(parser, args.seeds)
    os.makedirs(args.out, exist_ok=True)

    if args.selftest:
        # The selftest runs one fixed scenario; flags that only make
        # sense for a campaign grid would be silently ignored — reject
        # them instead.
        for flag, off in (("--campaign", args.campaign == "torture"),
                          ("--max-scenarios",
                           args.max_scenarios is None),
                          ("--no-shrink", not args.no_shrink)):
            if not off:
                parser.error(f"{flag} cannot be combined with "
                             f"--selftest")
        return _torture_selftest(args, seeds)

    if args.campaign not in CAMPAIGNS:
        print(f"unknown campaign: {args.campaign}", file=sys.stderr)
        print(f"available: {', '.join(CAMPAIGNS)}", file=sys.stderr)
        return 2
    campaign = get_campaign(args.campaign, seeds=seeds)
    scenarios = campaign.scenarios
    if args.max_scenarios is not None:
        scenarios = scenarios[:args.max_scenarios]

    t0 = time.perf_counter()
    records = {}
    counterexamples = []
    for spec in scenarios:
        adversary = get_adversary(spec.adversary)
        for seed in spec.seeds:
            case = run_case(spec, adversary, seed)
            record = {
                "verdicts": case.verdicts,
                "casts": case.casts,
                "deliveries": case.deliveries,
                "faults_injected": case.total_faults,
            }
            print(case.describe())
            if not case.ok:
                # The record mirrors the *unshrunk* run (its verdicts,
                # counts and violation belong together); the shrunk
                # case lives in the artifact, summarised under
                # "shrunk" — shrinking may legitimately pin a
                # different symptom of the same schedule-sensitivity.
                record["violation"] = case.violation.to_dict()
                minimal = case
                shrink_summary = None
                if not args.no_shrink:
                    outcome = shrink(case, budget=args.shrink_budget)
                    minimal = outcome.minimal
                    shrink_summary = outcome.summary()
                    print(f"  shrunk: {minimal.describe()} "
                          f"({outcome.runs_used} candidate runs)")
                    record["shrunk"] = {
                        "total_faults": minimal.total_faults,
                        "casts": minimal.casts,
                        "violating_checker": minimal.violation.checker,
                    }
                path = os.path.join(
                    args.out, _artifact_name(spec.name, seed))
                write_artifact(minimal, path,
                               shrink_summary=shrink_summary)
                counterexamples.append(path)
                record["counterexample"] = path
                print(f"  wrote {path}", file=sys.stderr)
            records.setdefault(spec.name, {})[str(seed)] = record

    summary = {
        "schema": "repro.adversary.torture/v1",
        "campaign": args.campaign,
        "scenario_count": len(scenarios),
        "case_count": sum(len(spec.seeds) for spec in scenarios),
        "adversaries": sorted({spec.adversary for spec in scenarios}),
        "all_checkers_ok": not counterexamples,
        "counterexamples": counterexamples,
        "wall_seconds": round(time.perf_counter() - t0, 4),
        "scenarios": records,
    }
    safe = args.campaign.replace("/", "_")
    summary_path = os.path.join(args.out, f"TORTURE_{safe}.json")
    with open(summary_path, "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    print(f"\n{summary['case_count']} cases, "
          f"{len(counterexamples)} counterexample(s); "
          f"wrote {summary_path}")
    return 1 if counterexamples else 0


def _torture_selftest(args, seeds: Optional[List[int]]) -> int:
    """Prove the pipeline catches the broken fixture end to end."""
    import os

    from repro.adversary.artifact import replay_file, write_artifact
    from repro.adversary.explorer import run_case
    from repro.adversary.shrink import shrink
    from repro.adversary.spec import get_adversary
    from repro.adversary.selftest import (
        PROTOCOL_NAME,
        register_selftest_protocol,
    )
    from repro.campaigns.spec import ScenarioSpec, WorkloadSpec

    register_selftest_protocol()
    seed = (seeds or [1])[0]
    scenario = ScenarioSpec(
        name="selftest",
        protocol=PROTOCOL_NAME,
        group_sizes=(2, 2),
        workload=WorkloadSpec(kind="poisson", rate=2.0, duration=15.0),
        checkers=("properties",),
    )
    benign = run_case(scenario, get_adversary("none"), seed)
    if not benign.ok:
        print(f"selftest FAILED: fixture should pass benignly, got "
              f"{benign.violation.message}", file=sys.stderr)
        return 1
    print(f"benign: {benign.describe()}")
    case = run_case(scenario, get_adversary("delay-reorder"), seed)
    if case.ok:
        print("selftest FAILED: the delay-reorder adversary did not "
              "catch the broken fixture", file=sys.stderr)
        return 1
    print(f"caught: {case.describe()}")
    outcome = shrink(case, budget=args.shrink_budget)
    minimal = outcome.minimal
    print(f"shrunk: {minimal.describe()} "
          f"({outcome.runs_used} candidate runs)")
    if minimal.total_faults > 5:
        print(f"selftest FAILED: shrunk reproducer still has "
              f"{minimal.total_faults} faults (> 5)", file=sys.stderr)
        return 1
    path = os.path.join(args.out, _artifact_name("selftest", seed))
    write_artifact(minimal, path, shrink_summary=outcome.summary())
    result = replay_file(path)
    if not result.reproduced:
        print(f"selftest FAILED: artifact did not replay: "
              f"{result.describe()}", file=sys.stderr)
        return 1
    print(f"replayed: {result.describe()}")
    print(f"wrote {path}")
    print("selftest OK: caught, shrunk to "
          f"{minimal.total_faults} fault(s), replayed bit-identically")
    return 0


def rebalance_main(argv: List[str]) -> int:
    """The ``rebalance`` verb: elastic repartitioning vs the static map."""
    import json
    import os

    from repro.campaigns.library import get_campaign
    from repro.campaigns.runner import CampaignRunner

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli rebalance",
        description="Run the rebalance campaign (elastic repartitioning "
                    "vs the frozen epoch-0 partition map under "
                    "zipf-skewed load), persist CAMPAIGN_rebalance.json, "
                    "and print the static-vs-rebalance committed-"
                    "throughput comparison.  --explore additionally "
                    "drives the adversary cells through the schedule "
                    "explorer, shrinking any checker violation to a "
                    "replayable COUNTEREXAMPLE_*.json.",
    )
    parser.add_argument("--seeds", type=str, default=None, metavar="CSV",
                        help="comma-separated seed override, e.g. 1,2,3")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default: 1, serial)")
    parser.add_argument("--out", type=str, default=".", metavar="DIR",
                        help="directory for campaign artefacts")
    parser.add_argument("--max-scenarios", type=int, default=None,
                        metavar="K",
                        help="truncate the grid to its first K scenarios "
                             "(smoke runs)")
    parser.add_argument("--explore", action="store_true",
                        help="drive the adversary cells through the "
                             "schedule explorer and shrink any violation")
    parser.add_argument("--shrink-budget", type=int, default=120,
                        metavar="N",
                        help="max candidate runs per shrink (default 120)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write the comparison table as JSON")
    args = parser.parse_args(argv)

    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.max_scenarios is not None and args.max_scenarios < 1:
        parser.error(f"--max-scenarios must be >= 1, "
                     f"got {args.max_scenarios}")
    if args.shrink_budget < 1:
        parser.error(f"--shrink-budget must be >= 1, "
                     f"got {args.shrink_budget}")
    seeds = _parse_seeds(parser, args.seeds)

    campaign = get_campaign("rebalance", seeds=seeds)
    if args.max_scenarios is not None:
        campaign.scenarios = campaign.scenarios[:args.max_scenarios]
    runner = CampaignRunner(campaign, jobs=args.jobs)
    result = runner.run()
    path = result.write(args.out)
    print(result.markdown_summary())
    print(f"\nwrote {path}\n")

    # Static-vs-rebalance comparison, one row per benign topology pair.
    arms: Dict[int, Dict[str, object]] = {}
    for spec in campaign.scenarios:
        if spec.adversary not in (None, "none") or spec.store is None:
            continue
        arm = "rebalance" if spec.store.rebalance_interval > 0 else "static"
        arms.setdefault(len(spec.group_sizes), {})[arm] = spec
    rows = []
    print("committed throughput: static epoch-0 map vs online rebalance")
    print(f"  {'groups':>6s} {'static':>8s} {'rebal':>8s} {'gain':>7s} "
          f"{'migs':>5s} {'moved':>6s} {'bounces':>8s}")
    for n_groups in sorted(arms):
        pair = arms[n_groups]
        if len(pair) != 2:
            continue  # truncated smoke run
        aggs = {arm: result.aggregates(spec.name)
                for arm, spec in pair.items()}
        static = aggs["static"]["txns_per_vtime"].mean
        rebal = aggs["rebalance"]["txns_per_vtime"].mean
        gain = 100.0 * (rebal - static) / static if static else 0.0
        migs = aggs["rebalance"]["reconfigs_completed"].mean
        moved = aggs["rebalance"]["reconfig_keys_moved"].mean
        bounces = aggs["rebalance"]["wrong_epoch_bounces"].mean
        print(f"  {n_groups:>6d} {static:>8.3f} {rebal:>8.3f} "
              f"{gain:>+6.1f}% {migs:>5.1f} {moved:>6.1f} {bounces:>8.1f}")
        rows.append({
            "n_groups": n_groups, "static_tps": round(static, 4),
            "rebalance_tps": round(rebal, 4), "gain_pct": round(gain, 2),
            "migrations": migs, "keys_moved": moved, "bounces": bounces,
        })
    status = 0 if result.all_checkers_ok else 1
    for scenario, seed, checker, verdict in result.failures():
        print(f"CHECKER FAILED: {scenario} seed={seed} "
              f"{checker}: {verdict}", file=sys.stderr)

    counterexamples = []
    if args.explore:
        from repro.adversary.artifact import write_artifact
        from repro.adversary.explorer import run_case
        from repro.adversary.shrink import shrink
        from repro.adversary.spec import get_adversary

        os.makedirs(args.out, exist_ok=True)
        for spec in campaign.scenarios:
            if spec.adversary in (None, "none"):
                continue
            adversary = get_adversary(spec.adversary)
            for seed in spec.seeds:
                case = run_case(spec, adversary, seed)
                print(case.describe())
                if case.ok:
                    continue
                outcome = shrink(case, budget=args.shrink_budget)
                minimal = outcome.minimal
                print(f"  shrunk: {minimal.describe()} "
                      f"({outcome.runs_used} candidate runs)")
                artifact = os.path.join(
                    args.out, _artifact_name(spec.name, seed))
                write_artifact(minimal, artifact,
                               shrink_summary=outcome.summary())
                counterexamples.append(artifact)
                print(f"  wrote {artifact}", file=sys.stderr)
                status = 1

    if args.json:
        record = {
            "campaign": path,
            "comparison": rows,
            "all_checkers_ok": result.all_checkers_ok,
            "counterexamples": counterexamples,
        }
        with open(args.json, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return status


def parallel_main(argv: List[str]) -> int:
    """The ``parallel`` verb: prove serial/parallel bit-identity."""
    import time

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli parallel",
        description="Run scenarios under both the serial and the "
                    "conservative parallel kernel and assert identical "
                    "delivery orders, checker verdicts and metrics.",
    )
    parser.add_argument("--scenario", default="both",
                        choices=["small", "hb-large", "both"],
                        help="which comparison to run (default: both)")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="workers for the parallel run (default: 0, "
                             "one per group)")
    parser.add_argument("--executor", default="inline",
                        choices=["inline", "threads", "processes"],
                        help="how sub-kernels execute between barriers")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")

    from repro.campaigns.spec import ScenarioSpec, WorkloadSpec
    from repro.runtime.parallel import compare_kernels

    small = ScenarioSpec(
        name="parallel-smoke-small", protocol="a1", group_sizes=(3, 3, 3),
        workload=WorkloadSpec(kind="periodic", period=1.0, count=8),
        checkers=("properties", "genuineness"), max_events=10_000_000,
    )
    hb_large = ScenarioSpec(
        name="parallel-smoke-hb-large", protocol="a1",
        group_sizes=(8,) * 8,
        workload=WorkloadSpec(kind="poisson", rate=1.5, duration=60.0),
        detector="heartbeat-elided", heartbeat_period=2.5,
        heartbeat_timeout=12.5, heartbeat_horizon=3_000.0,
        checkers=("properties",), max_events=50_000_000,
    )
    chosen = {"small": [small], "hb-large": [hb_large],
              "both": [small, hb_large]}[args.scenario]

    for spec in chosen:
        t0 = time.perf_counter()
        traces = compare_kernels(spec, seed=args.seed, jobs=args.jobs,
                                 executor=args.executor)
        wall = time.perf_counter() - t0
        serial, parallel = traces["serial"], traces["parallel"]
        n_procs = sum(spec.group_sizes)
        print(f"{spec.name}: identical "
              f"({len(serial.delivery_orders)} processes over "
              f"{n_procs}-proc topology, "
              f"{sum(len(o) for o in serial.delivery_orders.values())} "
              f"deliveries, verdicts {serial.checker_verdicts})")
        print(f"  serial {serial.wall_seconds:.3f}s vs parallel "
              f"{parallel.wall_seconds:.3f}s "
              f"(executor={args.executor}, jobs={args.jobs or 'per-group'}; "
              f"compare took {wall:.2f}s)")
    return 0


def replay_main(argv: List[str]) -> int:
    """The ``replay`` verb: re-run counterexample artifacts."""
    from repro.adversary.artifact import replay_file

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli replay",
        description="Re-run adversary artifacts and assert the checker "
                    "verdicts and delivery orders reproduce exactly.",
    )
    parser.add_argument("artifacts", nargs="+", metavar="FILE",
                        help="COUNTEREXAMPLE_*.json artifact path(s)")
    args = parser.parse_args(argv)

    status = 0
    for path in args.artifacts:
        try:
            result = replay_file(path)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # KeyError/TypeError: structurally malformed spec dicts
            # inside an otherwise schema-valid artifact.
            print(f"{path}: {exc!r}", file=sys.stderr)
            status = 2
            continue
        print(f"{path}: {result.describe()}")
        if not result.reproduced:
            status = 1
    return status


def main(argv: List[str] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "campaign":
        return campaign_main(argv[1:])
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "torture":
        return torture_main(argv[1:])
    if argv and argv[0] == "replay":
        return replay_main(argv[1:])
    if argv and argv[0] == "store":
        return store_main(argv[1:])
    if argv and argv[0] == "parallel":
        return parallel_main(argv[1:])
    if argv and argv[0] == "lossy":
        return lossy_main(argv[1:])
    if argv and argv[0] == "rebalance":
        return rebalance_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate the paper's tables, figures and runs. "
                    "Use the 'campaign' verb to run scenario matrices.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and campaigns")
    args = parser.parse_args(argv)

    if args.list:
        _print_listing()
        return 0

    chosen = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in chosen if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    for i, name in enumerate(chosen):
        if i:
            print("\n" + "=" * 72 + "\n")
        print(EXPERIMENTS[name]())
    return 0


if __name__ == "__main__":
    sys.exit(main())
