"""Declarative scenario specifications and matrix expansion.

A :class:`ScenarioSpec` is a *plan* for one simulated run — protocol,
topology, latency model, workload, crash schedule, checkers and metric
extractors — expressed entirely in plain picklable data.  Because the
spec carries no live objects (no RNGs, no closures, no built systems),
the campaign runner can ship it to a worker process, rebuild the whole
simulation there from the (spec, seed) pair, and still guarantee the
result is bit-identical to a serial run: every source of randomness is
derived from the seed inside the worker.

The sub-specs (:class:`LatencySpec`, :class:`WorkloadSpec`,
:class:`DestinationSpec`, :class:`CrashSpec`) mirror the imperative
helpers in :mod:`repro.net.topology`, :mod:`repro.workload.generators`
and :mod:`repro.failure.schedule`; each knows how to ``build`` its live
counterpart.  :func:`matrix` expands a base spec along declared axes
(dotted field paths) into the cartesian grid of scenarios — the paper's
claims only hold *across* such grids, never at a single point.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.failure.schedule import CrashSchedule
from repro.net.topology import LatencyModel, Topology
from repro.store.spec import StoreSpec
from repro.workload.generators import (
    CastPlan,
    all_groups,
    burst_workload,
    fixed_groups,
    periodic_workload,
    poisson_workload,
    uniform_k_groups,
    zipf_group_count,
)


# ----------------------------------------------------------------------
# Latency
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LatencySpec:
    """Declarative stand-in for a :class:`LatencyModel`.

    ``kind`` is ``"logical"`` (unit inter-group links, degree-reading)
    or ``"wan"`` (milliseconds with exponential jitter).
    """

    kind: str = "logical"
    intra_ms: float = 1.0
    inter_ms: float = 100.0
    intra_jitter_ms: float = 0.1
    inter_jitter_ms: float = 5.0

    def build(self) -> LatencyModel:
        if self.kind == "logical":
            return LatencyModel.logical()
        if self.kind == "wan":
            return LatencyModel.wan(
                intra_ms=self.intra_ms, inter_ms=self.inter_ms,
                intra_jitter_ms=self.intra_jitter_ms,
                inter_jitter_ms=self.inter_jitter_ms,
            )
        raise ValueError(f"unknown latency kind {self.kind!r}")

    def min_inter_group(self) -> float:
        """The parallel kernel's lookahead for this latency spec.

        Delegates to :meth:`LatencyModel.min_inter_group`; raises
        :class:`ValueError` when the inter-group latency has no strictly
        positive lower bound (no conservative window exists then).
        """
        return self.build().min_inter_group()

    @classmethod
    def logical(cls) -> "LatencySpec":
        return cls(kind="logical")

    @classmethod
    def wan(cls, intra_ms: float = 1.0, inter_ms: float = 100.0,
            intra_jitter_ms: float = 0.1,
            inter_jitter_ms: float = 5.0) -> "LatencySpec":
        return cls(kind="wan", intra_ms=intra_ms, inter_ms=inter_ms,
                   intra_jitter_ms=intra_jitter_ms,
                   inter_jitter_ms=inter_jitter_ms)


# ----------------------------------------------------------------------
# Destinations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DestinationSpec:
    """Declarative destination chooser.

    Kinds: ``all`` (broadcast), ``fixed`` (always ``groups``),
    ``uniform-k`` (k uniformly random groups) and ``zipf`` (Zipf-skewed
    destination count up to ``max_k`` — mostly-local traffic).
    """

    kind: str = "all"
    groups: Tuple[int, ...] = ()
    k: int = 2
    max_k: int = 2
    skew: float = 1.5
    include_sender_group: bool = True

    def build(self):
        if self.kind == "all":
            return all_groups
        if self.kind == "fixed":
            return fixed_groups(self.groups)
        if self.kind == "uniform-k":
            return uniform_k_groups(self.k, self.include_sender_group)
        if self.kind == "zipf":
            return zipf_group_count(self.max_k, self.skew,
                                    self.include_sender_group)
        raise ValueError(f"unknown destination kind {self.kind!r}")


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative workload plan: which generator, with which knobs.

    Only the fields relevant to ``kind`` are read: ``rate``/``duration``
    for ``poisson``, ``period``/``count`` for ``periodic``,
    ``bursts``/``burst_size``/``gap``/``spread`` for ``burst``.
    """

    kind: str = "periodic"
    destinations: DestinationSpec = field(default_factory=DestinationSpec)
    senders: Optional[Tuple[int, ...]] = None
    start: float = 0.0
    # poisson
    rate: float = 1.0
    duration: float = 10.0
    # periodic
    period: float = 1.0
    count: int = 10
    # burst
    bursts: int = 3
    burst_size: int = 10
    gap: float = 10.0
    spread: float = 0.5

    def plans(self, topology: Topology,
              rng: random.Random) -> List[CastPlan]:
        """Materialise the plan for ``topology`` using ``rng``."""
        destinations = self.destinations.build()
        if self.kind == "poisson":
            return poisson_workload(
                topology, rng, rate=self.rate, duration=self.duration,
                destinations=destinations, senders=self.senders,
                start=self.start,
            )
        if self.kind == "periodic":
            return periodic_workload(
                topology, period=self.period, count=self.count,
                destinations=destinations, senders=self.senders,
                start=self.start, rng=rng,
            )
        if self.kind == "burst":
            return burst_workload(
                topology, rng, bursts=self.bursts,
                burst_size=self.burst_size, gap=self.gap,
                destinations=destinations, senders=self.senders,
                spread=self.spread, start=self.start,
            )
        raise ValueError(f"unknown workload kind {self.kind!r}")


# ----------------------------------------------------------------------
# Crashes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrashSpec:
    """Declarative crash schedule.

    ``none`` is failure-free; ``explicit`` uses the literal
    ``crashes`` pairs; ``random-minority`` draws a validate-safe
    strict-minority-per-group schedule from the run's seed (so serial
    and parallel executions crash exactly the same processes).
    """

    kind: str = "none"
    crashes: Tuple[Tuple[int, float], ...] = ()
    window: float = 100.0
    probability: float = 0.5

    def build(self, topology: Topology,
              rng: random.Random) -> CrashSchedule:
        if self.kind == "none":
            return CrashSchedule.none()
        if self.kind == "explicit":
            return CrashSchedule(dict(self.crashes))
        if self.kind == "random-minority":
            return CrashSchedule.random_minority(
                topology, rng, window=self.window,
                crash_probability=self.probability,
            )
        raise ValueError(f"unknown crash kind {self.kind!r}")


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """One fully declarative scenario: everything a worker needs.

    ``checkers`` names entries of
    :data:`repro.campaigns.runner.CHECKERS`; requesting ``genuineness``
    automatically builds the system with the message trace enabled.
    ``metrics`` names entries of
    :data:`repro.campaigns.metrics.EXTRACTORS`.
    ``protocol_kwargs`` is a tuple of (name, value) pairs forwarded to
    the protocol factory (tuples keep the spec hashable-by-value and
    picklable).
    """

    name: str
    protocol: str = "a1"
    group_sizes: Tuple[int, ...] = (3, 3)
    latency: LatencySpec = field(default_factory=LatencySpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    crashes: CrashSpec = field(default_factory=CrashSpec)
    # Transactional-store scenario (None = plain cast workload).  When
    # set, the runner mounts a StoreCluster on the built system and the
    # ``workload`` field is ignored — clients issue the transactions.
    store: Optional[StoreSpec] = None
    seeds: Tuple[int, ...] = (1,)
    checkers: Tuple[str, ...] = ("properties",)
    metrics: Tuple[str, ...] = ("core", "latency", "degrees", "traffic")
    # Named adversary from :data:`repro.adversary.spec.ADVERSARIES`
    # ("none" = benign): a grid axis like any other dotted field path,
    # resolved and applied by the campaign runner after build_system.
    adversary: str = "none"
    # "none" (raw quasi-reliable links) or "reliable" (mount the
    # retransmitting transport of :mod:`repro.transport.reliable`
    # beneath the protocol — what makes the lossy adversary kinds
    # survivable).  Serial kernel only; gridable like any other axis.
    transport: str = "none"
    detector: str = "perfect"
    detector_delay: float = 5.0
    stabilise_at: float = 0.0
    # Heartbeat-detector knobs (used when detector is "heartbeat" or
    # "heartbeat-elided"); the horizon bounds heartbeat traffic so
    # finite workloads still reach quiescence in message mode.
    heartbeat_period: float = 10.0
    heartbeat_timeout: float = 35.0
    heartbeat_horizon: Optional[float] = None
    profile: bool = False
    start_rounds: bool = False
    max_events: int = 10_000_000
    # Simulation kernel: "serial" (one global event loop), "parallel"
    # (per-group sub-kernels, bit-identical within the envelope of
    # :mod:`repro.runtime.parallel`) or "auto" (parallel when eligible).
    kernel: str = "serial"
    kernel_jobs: int = 0          # 0 = one worker per group
    kernel_executor: str = "inline"
    protocol_kwargs: Tuple[Tuple[str, object], ...] = ()

    def kwargs_dict(self) -> Dict[str, object]:
        return dict(self.protocol_kwargs)

    def describe(self) -> Dict[str, object]:
        """A JSON-friendly summary for campaign artefacts."""
        out = {
            "protocol": self.protocol,
            "group_sizes": list(self.group_sizes),
            "latency": self.latency.kind,
            "workload": self.workload.kind,
            "crashes": self.crashes.kind,
            "adversary": self.adversary,
            "transport": self.transport,
            "detector": self.detector,
            "checkers": list(self.checkers),
            "seeds": list(self.seeds),
        }
        if self.store is not None:
            out["store"] = {
                "routing": self.store.routing,
                "n_keys": self.store.n_keys,
                "data_groups": (list(self.store.data_groups)
                                if self.store.data_groups is not None
                                else None),
                "read_fraction": self.store.read_fraction,
                "multi_partition_fraction":
                    self.store.multi_partition_fraction,
            }
        return out

    # ------------------------------------------------------------------
    # Lossless (de)serialisation — replay artifacts depend on this
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The complete spec as JSON-compatible plain data.

        Unlike :meth:`describe` (a human-oriented summary) this is
        lossless: ``ScenarioSpec.from_dict(spec.to_dict()) == spec``,
        which is what lets adversary counterexample artifacts replay a
        run bit-identically.  ``protocol_kwargs`` values must be plain
        data for the round trip to survive JSON.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (JSON-safe)."""
        data = dict(data)
        data["group_sizes"] = tuple(data["group_sizes"])
        data["latency"] = LatencySpec(**data["latency"])
        workload = dict(data["workload"])
        destinations = dict(workload["destinations"])
        destinations["groups"] = tuple(destinations["groups"])
        workload["destinations"] = DestinationSpec(**destinations)
        if workload.get("senders") is not None:
            workload["senders"] = tuple(workload["senders"])
        data["workload"] = WorkloadSpec(**workload)
        crashes = dict(data["crashes"])
        crashes["crashes"] = tuple(
            (pid, when) for pid, when in crashes["crashes"])
        data["crashes"] = CrashSpec(**crashes)
        # ``store`` is absent in pre-store artifacts (they replay as
        # plain cast scenarios) and None for non-store scenarios.
        if data.get("store") is not None:
            data["store"] = StoreSpec.from_dict(data["store"])
        for name in ("seeds", "checkers", "metrics"):
            data[name] = tuple(data[name])
        data["protocol_kwargs"] = tuple(
            (key, value) for key, value in data["protocol_kwargs"])
        return cls(**data)


# ----------------------------------------------------------------------
# Matrix expansion
# ----------------------------------------------------------------------
def _replace_path(obj, path: Sequence[str], value):
    """Rebuild nested frozen dataclasses with one field changed."""
    head = path[0]
    if not dataclasses.is_dataclass(obj):
        raise TypeError(f"cannot descend into {type(obj).__name__}")
    if head not in {f.name for f in dataclasses.fields(obj)}:
        raise KeyError(
            f"{type(obj).__name__} has no field {head!r}"
        )
    if len(path) == 1:
        return dataclasses.replace(obj, **{head: value})
    child = _replace_path(getattr(obj, head), path[1:], value)
    return dataclasses.replace(obj, **{head: child})


def _axis_label(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, (tuple, list)):
        return "x".join(_axis_label(v) for v in value)
    return str(value)


def matrix(base: ScenarioSpec,
           axes: Mapping[str, Sequence]) -> List[ScenarioSpec]:
    """Expand ``base`` along ``axes`` into a cartesian scenario grid.

    Axis keys are dotted field paths into the spec
    (``"protocol"``, ``"workload.rate"``, ``"crashes.window"``, ...);
    axis values are the points to take.  Scenario names are
    ``<base>/<key>=<value>/...`` so every grid point is addressable in
    campaign artefacts.

    >>> specs = matrix(ScenarioSpec(name="demo"),
    ...                {"protocol": ["a1", "skeen"],
    ...                 "workload.count": [5, 10]})
    >>> [s.name for s in specs][:2]
    ['demo/protocol=a1/count=5', 'demo/protocol=a1/count=10']
    """
    if not axes:
        return [base]
    keys = list(axes)
    grids = [list(axes[k]) for k in keys]
    if any(not g for g in grids):
        raise ValueError("every axis needs at least one value")
    specs: List[ScenarioSpec] = []
    for combo in itertools.product(*grids):
        spec = base
        parts = [base.name]
        for key, value in zip(keys, combo):
            spec = _replace_path(spec, key.split("."), value)
            parts.append(f"{key.rsplit('.', 1)[-1]}={_axis_label(value)}")
        specs.append(dataclasses.replace(spec, name="/".join(parts)))
    return specs


def with_seeds(specs: Sequence[ScenarioSpec],
               seeds: Sequence[int]) -> List[ScenarioSpec]:
    """Override the seed list of every spec (CLI ``--seeds``)."""
    seeds = tuple(seeds)
    if not seeds:
        raise ValueError("at least one seed is required")
    return [dataclasses.replace(s, seeds=seeds) for s in specs]
