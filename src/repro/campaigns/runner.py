"""Campaign execution: fan scenario × seed tasks over worker processes.

A campaign is a named list of :class:`ScenarioSpec`.  The runner expands
it into (scenario, seed) tasks and executes each task with
:func:`run_scenario_seed` — build the system from the spec, schedule the
declarative workload, run to quiescence, extract metrics, run checkers.
Because a task touches nothing outside its own freshly built simulation
and derives every random stream from its seed, the same task produces
bit-identical metrics whether it runs in this process or in a pool
worker; ``--jobs N`` is purely a wall-clock multiplier.

Parallelism uses a plain :mod:`multiprocessing` pool with small chunks
(load balancing matters because scenario durations vary; chunks only
grow once the task list dwarfs the worker count, to amortise IPC) and
falls back to the serial path when pools cannot be created (e.g.
restricted sandboxes).  Results are keyed by (scenario, seed), never by
completion order, so artefacts are byte-stable across jobs counts.

Artefacts: ``CAMPAIGN_<name>.json`` (per-seed metrics, checker verdicts,
cross-seed aggregates via :class:`~repro.runtime.runner.Aggregate`, wall
clocks) and a Figure-1-style markdown summary table.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaigns.metrics import extract
from repro.campaigns.spec import ScenarioSpec, with_seeds
from repro.checkers.genuineness import check_genuineness
from repro.checkers.properties import check_all
from repro.runtime.builder import build_system
from repro.runtime.runner import Aggregate
from repro.sim.rng import RngRegistry
from repro.workload.generators import schedule_workload


# ----------------------------------------------------------------------
# Checkers
# ----------------------------------------------------------------------
def _check_properties(system) -> None:
    check_all(system.log, system.topology, system.crashes)


def _check_genuineness(system) -> None:
    check_genuineness(system.network.trace, system.log, system.topology)


def _store_cluster(system):
    cluster = getattr(system, "store_cluster", None)
    if cluster is None:
        raise ValueError(
            "store checkers require a store scenario (ScenarioSpec.store)"
        )
    return cluster


def _check_serializability(system) -> None:
    from repro.store.checker import check_serializability

    check_serializability(_store_cluster(system))


def _check_convergence(system) -> None:
    _store_cluster(system).assert_convergence()


def _check_stabilization(system) -> None:
    from repro.checkers.stabilization import check_stabilization

    check_stabilization(system)


def _check_reconfig(system) -> None:
    from repro.reconfig.checker import check_reconfig

    check_reconfig(_store_cluster(system))


CHECKERS: Dict[str, Callable[[object], None]] = {
    "properties": _check_properties,
    "genuineness": _check_genuineness,
    "serializability": _check_serializability,
    "convergence": _check_convergence,
    "stabilization": _check_stabilization,
    "reconfig": _check_reconfig,
}

#: Checkers that need the full message trace recorded during the run.
TRACE_CHECKERS = frozenset({"genuineness"})

#: Checkers that only make sense with a mounted store cluster.
STORE_CHECKERS = frozenset({"serializability", "convergence", "reconfig"})

#: Metric families that need the trace (involvement accounting) — the
#: same auto-enable rule TRACE_CHECKERS applies to checkers.
TRACE_METRICS = frozenset({"involvement"})

#: Metric families that read ``system.store_cluster``.
STORE_METRICS = frozenset({"store", "involvement", "reconfig"})


def run_checkers(system, spec: ScenarioSpec) -> Dict[str, str]:
    """Run the spec's checkers; map each to "ok" or "FAIL: <why>"."""
    verdicts: Dict[str, str] = {}
    for name in spec.checkers:
        try:
            CHECKERS[name](system)
            verdicts[name] = "ok"
        except AssertionError as exc:
            verdicts[name] = f"FAIL: {exc}"
    return verdicts


# ----------------------------------------------------------------------
# One task
# ----------------------------------------------------------------------
@dataclass
class RunResult:
    """Outcome of one (scenario, seed) task."""

    scenario: str
    seed: int
    metrics: Dict[str, float]
    checkers: Dict[str, str]  # checker name -> "ok" or failure text
    wall_seconds: float

    @property
    def ok(self) -> bool:
        return all(v == "ok" for v in self.checkers.values())


def validate_spec(spec: ScenarioSpec) -> None:
    """Fail fast on misconfigured scenarios, before any run starts."""
    from repro.campaigns.metrics import EXTRACTORS

    unknown = [c for c in spec.checkers if c not in CHECKERS]
    if unknown:
        raise ValueError(
            f"unknown checker(s) {unknown}; have {sorted(CHECKERS)}"
        )
    # Metric names are validated before the (potentially long) run too:
    # a typo must not cost a finished simulation.
    unknown = [m for m in spec.metrics if m not in EXTRACTORS]
    if unknown:
        raise ValueError(
            f"unknown metric extractor(s) {unknown}; "
            f"have {sorted(EXTRACTORS)}"
        )
    if spec.adversary != "none":
        from repro.adversary.spec import ADVERSARIES

        if spec.adversary not in ADVERSARIES:
            raise ValueError(
                f"scenario {spec.name!r}: unknown adversary "
                f"{spec.adversary!r}; have {sorted(ADVERSARIES)}"
            )
    from repro.transport import TRANSPORTS

    if spec.transport not in TRANSPORTS:
        raise ValueError(
            f"scenario {spec.name!r}: unknown transport "
            f"{spec.transport!r}; have {list(TRANSPORTS)}"
        )
    if spec.store is None:
        store_only = (STORE_CHECKERS.intersection(spec.checkers)
                      | STORE_METRICS.intersection(spec.metrics))
        if store_only:
            raise ValueError(
                f"scenario {spec.name!r}: {sorted(store_only)} require a "
                f"store scenario — set ScenarioSpec.store to a StoreSpec"
            )
    elif spec.store.data_groups is not None:
        # Explicit partition assignments must name groups that exist in
        # *this* topology; catching the mismatch at spec time turns a
        # mid-campaign KeyError (per scenario, per seed, per worker)
        # into one immediate error naming the scenario.
        n_groups = len(spec.group_sizes)
        bad = sorted(g for g in spec.store.data_groups
                     if not 0 <= g < n_groups)
        if bad:
            raise ValueError(
                f"scenario {spec.name!r}: store data_groups {bad} outside "
                f"the topology's groups 0..{n_groups - 1}"
            )
    if spec.detector == "heartbeat" and spec.heartbeat_horizon is None:
        # Message-driven heartbeats reschedule forever; without a
        # horizon the run_quiescent below would grind max_events and
        # die, per (scenario, seed), in every worker.  Fail fast.
        raise ValueError(
            f"scenario {spec.name!r}: detector='heartbeat' needs a "
            f"finite heartbeat_horizon (message-driven beats never "
            f"stop, so the run cannot quiesce); set heartbeat_horizon "
            f"past the workload tail or use 'heartbeat-elided'"
        )


def build_scenario_system(spec: ScenarioSpec, seed: int,
                          adversary=None):
    """Build the system for one (scenario, seed), workload scheduled.

    The one construction path shared by the campaign runner and the
    adversary explorer: crash resolution, build_system, adversary
    application (the named ``spec.adversary`` axis, or an explicit
    :class:`~repro.adversary.spec.AdversarySpec` overriding it) and
    workload scheduling all happen here, so a campaign run and an
    explorer/shrinker/replay run of the same (spec, adversary, seed)
    triple are bit-identical by construction.

    Returns ``(system, plans, applied)`` where ``applied`` is the
    :class:`~repro.adversary.injectors.AppliedAdversary` (None when
    benign).
    """
    validate_spec(spec)
    if spec.kernel != "serial":
        from repro.runtime.parallel import ParallelKernelError

        try:
            if adversary is not None or spec.adversary != "none":
                raise ParallelKernelError(
                    "adversaries act through global network hooks whose "
                    "firing order is a cross-group side channel; the "
                    "parallel kernel cannot replay them per group"
                )
            return _build_parallel_scenario(spec, seed)
        except ParallelKernelError:
            if spec.kernel == "parallel":
                raise
            # kernel="auto": the scenario is outside the parallel
            # envelope — assemble it on the serial kernel below.
    crash_rng = RngRegistry(seed).stream("campaign-crashes")
    # The topology is rebuilt by build_system; constructing it here too
    # keeps CrashSpec resolution independent of builder internals.
    from repro.net.topology import Topology

    crashes = spec.crashes.build(Topology(list(spec.group_sizes)), crash_rng)
    system = build_system(
        protocol=spec.protocol,
        group_sizes=list(spec.group_sizes),
        latency=spec.latency.build(),
        seed=seed,
        crashes=crashes,
        detector=spec.detector,
        detector_delay=spec.detector_delay,
        stabilise_at=spec.stabilise_at,
        heartbeat_period=spec.heartbeat_period,
        heartbeat_timeout=spec.heartbeat_timeout,
        heartbeat_horizon=spec.heartbeat_horizon,
        transport=spec.transport,
        trace=bool(TRACE_CHECKERS.intersection(spec.checkers)
                   or TRACE_METRICS.intersection(spec.metrics)),
        # The "phases" metric family needs the profiler, the same way
        # genuineness needs the trace — requesting it enables it.
        profile=spec.profile or "phases" in spec.metrics,
        **spec.kwargs_dict(),
    )
    applied = None
    if adversary is None and spec.adversary != "none":
        from repro.adversary.spec import get_adversary

        adversary = get_adversary(spec.adversary)
    if adversary is not None and adversary.injectors:
        from repro.adversary.injectors import apply_adversary

        applied = apply_adversary(system, adversary)
    # Post-run checkers read the live injectors (fault horizons) and
    # the streaming settling observer off the system itself, so replay
    # and campaign paths agree on what "stabilized" means.
    system.applied_adversary = applied
    if "stabilization" in spec.checkers:
        from repro.checkers.stabilization import (
            StreamingStabilizationChecker,
        )

        system.stabilization_checker = (
            StreamingStabilizationChecker().attach(system))
    if spec.start_rounds:
        system.start_rounds()
    if spec.store is not None:
        # Store scenarios: mount the serving layer; clients issue the
        # transactions, so the plain ``workload`` field is not used.
        from repro.store.cluster import StoreCluster

        cluster = StoreCluster.attach(system, spec.store)
        return system, cluster.plans, applied
    plans = spec.workload.plans(system.topology, system.rng.stream("wl"))
    schedule_workload(system, plans)
    return system, plans, applied


def _build_parallel_scenario(spec: ScenarioSpec, seed: int):
    """The parallel-kernel arm of :func:`build_scenario_system`.

    Raises :class:`~repro.runtime.parallel.ParallelKernelError` when the
    scenario falls outside the parallel envelope (non-fixed latency,
    stochastic detector, single group, non-group-major plans) — the
    caller decides whether that is fatal (``kernel="parallel"``) or a
    fallback (``kernel="auto"``).
    """
    from repro.runtime.parallel import ParallelKernelError

    if spec.store is not None and spec.store.elastic:
        raise ParallelKernelError(
            "elastic store scenarios are outside the parallel envelope: "
            "the load balancer is a global controller and WrongEpoch "
            "bounce callbacks cross groups outside the network"
        )
    crash_rng = RngRegistry(seed).stream("campaign-crashes")
    from repro.net.topology import Topology

    crashes = spec.crashes.build(Topology(list(spec.group_sizes)), crash_rng)
    system = build_system(
        protocol=spec.protocol,
        group_sizes=list(spec.group_sizes),
        latency=spec.latency.build(),
        seed=seed,
        crashes=crashes,
        detector=spec.detector,
        detector_delay=spec.detector_delay,
        stabilise_at=spec.stabilise_at,
        heartbeat_period=spec.heartbeat_period,
        heartbeat_timeout=spec.heartbeat_timeout,
        heartbeat_horizon=spec.heartbeat_horizon,
        # Passed through so check_envelope rejects transport scenarios
        # with its precise reason (retransmit timers undercut the
        # lookahead bound); kernel="auto" then degrades to serial.
        transport=spec.transport,
        trace=bool(TRACE_CHECKERS.intersection(spec.checkers)
                   or TRACE_METRICS.intersection(spec.metrics)),
        profile=spec.profile or "phases" in spec.metrics,
        kernel="parallel",
        jobs=spec.kernel_jobs,
        executor=spec.kernel_executor,
        **spec.kwargs_dict(),
    )
    if spec.start_rounds:
        system.start_rounds()
    if spec.store is not None:
        cluster = system.attach_store(spec.store)
        return system, cluster.plans, None
    plans = spec.workload.plans(system.topology, system.rng.stream("wl"))
    system.schedule_plans(plans)
    return system, plans, None


def run_scenario_seed(spec: ScenarioSpec, seed: int) -> RunResult:
    """Build, run, measure and check one scenario under one seed.

    Everything random — network jitter, workload arrivals, crash draws,
    adversarial fault streams — derives from ``seed`` via the same
    named-stream registry the rest of the repository uses, so repeated
    invocations (in any process) agree exactly.
    """
    t0 = time.perf_counter()
    system, plans, applied = build_scenario_system(spec, seed)
    system.run_quiescent(max_events=spec.max_events)

    metrics = extract(system, list(spec.metrics))
    metrics["planned_casts"] = float(len(plans))
    if applied is not None:
        metrics["faults_injected"] = float(applied.total_faults)
    verdicts = run_checkers(system, spec)
    return RunResult(
        scenario=spec.name, seed=seed, metrics=metrics, checkers=verdicts,
        wall_seconds=time.perf_counter() - t0,
    )


def _run_task(task: Tuple[ScenarioSpec, int]) -> RunResult:
    """Module-level pool target (must be picklable by name)."""
    spec, seed = task
    return run_scenario_seed(spec, seed)


# ----------------------------------------------------------------------
# Campaign + results
# ----------------------------------------------------------------------
@dataclass
class Campaign:
    """A named scenario matrix, ready to execute."""

    name: str
    scenarios: List[ScenarioSpec]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("a campaign needs at least one scenario")
        names = [s.name for s in self.scenarios]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ValueError(f"duplicate scenario names: {sorted(dupes)}")

    def with_seeds(self, seeds: Sequence[int]) -> "Campaign":
        """The same matrix under an overridden seed list."""
        return Campaign(name=self.name,
                        scenarios=with_seeds(self.scenarios, seeds),
                        description=self.description)

    @property
    def task_count(self) -> int:
        return sum(len(s.seeds) for s in self.scenarios)


class CampaignResult:
    """All task outcomes of one campaign execution."""

    def __init__(self, campaign: Campaign, jobs: int,
                 results: List[RunResult], wall_seconds: float,
                 jobs_requested: Optional[int] = None) -> None:
        self.campaign = campaign
        #: Worker processes actually used (1 when the pool fell back).
        self.jobs = jobs
        #: What the caller asked for; differs from ``jobs`` only when
        #: pool creation failed and the run degraded to serial.
        self.jobs_requested = jobs_requested or jobs
        self.wall_seconds = wall_seconds
        self._by_key: Dict[Tuple[str, int], RunResult] = {
            (r.scenario, r.seed): r for r in results
        }

    # ------------------------------------------------------------------
    def result(self, scenario: str, seed: int) -> RunResult:
        return self._by_key[(scenario, seed)]

    def results_of(self, scenario: str) -> List[RunResult]:
        spec = self._spec(scenario)
        return [self._by_key[(scenario, seed)] for seed in spec.seeds]

    def _spec(self, scenario: str) -> ScenarioSpec:
        for spec in self.campaign.scenarios:
            if spec.name == scenario:
                return spec
        raise KeyError(f"unknown scenario {scenario!r}")

    def per_seed_metrics(self) -> Dict[str, Dict[int, Dict[str, float]]]:
        """scenario -> seed -> metrics; the determinism-comparison key.

        Wall clocks and profiler phase timings are deliberately
        excluded: they are the only parts of a result that legitimately
        differ between serial and parallel executions of the same
        campaign.
        """
        return {
            spec.name: {
                seed: {
                    name: value
                    for name, value in
                    self._by_key[(spec.name, seed)].metrics.items()
                    if not name.startswith("phase_")
                }
                for seed in spec.seeds
            }
            for spec in self.campaign.scenarios
        }

    def aggregates(self, scenario: str) -> Dict[str, Aggregate]:
        """Cross-seed aggregates of every metric of one scenario."""
        runs = self.results_of(scenario)
        names = sorted({k for r in runs for k in r.metrics})
        return {
            name: Aggregate(name=name,
                            values=[r.metrics[name] for r in runs
                                    if name in r.metrics])
            for name in names
        }

    @property
    def all_checkers_ok(self) -> bool:
        return all(r.ok for r in self._by_key.values())

    def failures(self) -> List[Tuple[str, int, str, str]]:
        """Every (scenario, seed, checker, message) that failed."""
        out = []
        for (scenario, seed), run in sorted(self._by_key.items()):
            for checker, verdict in run.checkers.items():
                if verdict != "ok":
                    out.append((scenario, seed, checker, verdict))
        return out

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        scenarios = {}
        for spec in self.campaign.scenarios:
            aggs = self.aggregates(spec.name)
            scenarios[spec.name] = {
                "spec": spec.describe(),
                "seeds": {
                    str(seed): {
                        "metrics": self._by_key[(spec.name, seed)].metrics,
                        "checkers": self._by_key[(spec.name, seed)].checkers,
                        "wall_seconds": round(
                            self._by_key[(spec.name, seed)].wall_seconds, 4),
                    }
                    for seed in spec.seeds
                },
                "aggregates": {
                    name: {"mean": agg.mean, "min": agg.minimum,
                           "max": agg.maximum, "stdev": agg.stdev,
                           "n": agg.n}
                    for name, agg in aggs.items()
                },
            }
        return {
            "campaign": self.campaign.name,
            "description": self.campaign.description,
            "jobs": self.jobs,
            "jobs_requested": self.jobs_requested,
            "cpu_count": os.cpu_count(),
            "scenario_count": len(self.campaign.scenarios),
            "task_count": self.campaign.task_count,
            "wall_seconds": round(self.wall_seconds, 4),
            "all_checkers_ok": self.all_checkers_ok,
            "scenarios": scenarios,
        }

    def write(self, out_dir: str = ".", extra: Optional[dict] = None) -> str:
        """Write ``CAMPAIGN_<name>.json`` (+ markdown) into ``out_dir``."""
        data = self.to_json()
        if extra:
            data.update(extra)
        os.makedirs(out_dir, exist_ok=True)
        safe = self.campaign.name.replace("/", "_").replace(" ", "_")
        path = os.path.join(out_dir, f"CAMPAIGN_{safe}.json")
        with open(path, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=False)
            fh.write("\n")
        md_path = os.path.join(out_dir, f"CAMPAIGN_{safe}.md")
        with open(md_path, "w") as fh:
            fh.write(self.markdown_summary() + "\n")
        return path

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    _SUMMARY_COLUMNS = (
        ("casts", "casts"),
        ("deliveries", "delivs"),
        ("degree_mean", "deg"),
        ("latency_worst_mean", "lat"),
        ("inter_per_cast", "inter/cast"),
    )

    def markdown_summary(self) -> str:
        """A GitHub-markdown table: one row per scenario."""
        headers = (["scenario", "seeds", "checkers"]
                   + [short for _, short in self._SUMMARY_COLUMNS])
        lines = [
            f"## Campaign `{self.campaign.name}` "
            f"({len(self.campaign.scenarios)} scenarios, "
            f"{self.campaign.task_count} runs, jobs={self.jobs}, "
            f"{self.wall_seconds:.1f}s wall)",
            "",
            "| " + " | ".join(headers) + " |",
            "|" + "|".join("---" for _ in headers) + "|",
        ]
        for spec in self.campaign.scenarios:
            runs = self.results_of(spec.name)
            checks = "ok" if all(r.ok for r in runs) else "FAIL"
            aggs = self.aggregates(spec.name)
            cells = [spec.name, str(len(spec.seeds)), checks]
            for metric, _ in self._SUMMARY_COLUMNS:
                agg = aggs.get(metric)
                cells.append(f"{agg.mean:.2f}" if agg and agg.n else "—")
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
class CampaignRunner:
    """Execute a campaign serially or over a process pool.

    ``jobs=1`` (or an unavailable pool) runs every task in-process; the
    two paths call the identical task function, which is what makes the
    serial-vs-parallel determinism guarantee checkable rather than
    aspirational (see :func:`verify_determinism`).
    """

    def __init__(self, campaign: Campaign, jobs: int = 1,
                 seeds: Optional[Sequence[int]] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        # `is not None`, not truthiness: an empty seed list must hit
        # with_seeds' ValueError, not silently keep the spec defaults.
        self.campaign = (campaign.with_seeds(seeds)
                         if seeds is not None else campaign)
        self.jobs = jobs

    def tasks(self) -> List[Tuple[ScenarioSpec, int]]:
        for spec in self.campaign.scenarios:
            if len(set(spec.seeds)) != len(spec.seeds):
                raise ValueError(
                    f"scenario {spec.name!r} repeats seeds {spec.seeds}: "
                    f"results are keyed by (scenario, seed), so duplicate "
                    f"seeds would silently collapse"
                )
        return [(spec, seed)
                for spec in self.campaign.scenarios
                for seed in spec.seeds]

    def run(self) -> CampaignResult:
        tasks = self.tasks()
        t0 = time.perf_counter()
        results: Optional[List[RunResult]] = None
        if self.jobs > 1 and len(tasks) > 1:
            results = self._run_pool(tasks)
        effective_jobs = self.jobs
        if results is None:
            # Honest artefacts: a degraded run must not claim its
            # wall clock came from N workers.
            effective_jobs = 1
            results = [_run_task(task) for task in tasks]
        return CampaignResult(
            campaign=self.campaign, jobs=effective_jobs, results=results,
            wall_seconds=time.perf_counter() - t0,
            jobs_requested=self.jobs,
        )

    def _run_pool(self, tasks) -> Optional[List[RunResult]]:
        """Fan out over multiprocessing; None means "fall back serial".

        Only pool *creation* may fall back (restricted sandboxes):
        once workers exist, task errors propagate — silently re-running
        a half-finished campaign serially would mask the failure and
        double the wall time.
        """
        try:
            import multiprocessing

            pool = multiprocessing.Pool(processes=self.jobs)
        except (ImportError, OSError, PermissionError):
            return None
        with pool:
            # Small chunks keep the pool load-balanced (scenario
            # durations vary wildly); batching only once the task list
            # dwarfs the worker count keeps per-task IPC amortised.
            chunksize = max(1, len(tasks) // (self.jobs * 8))
            return pool.map(_run_task, tasks, chunksize=chunksize)


def run_campaign(campaign: Campaign, jobs: int = 1,
                 seeds: Optional[Sequence[int]] = None) -> CampaignResult:
    """One-call convenience wrapper around :class:`CampaignRunner`."""
    return CampaignRunner(campaign, jobs=jobs, seeds=seeds).run()


def verify_determinism(parallel: CampaignResult,
                       serial: CampaignResult) -> None:
    """Assert per-seed metrics are identical between two executions.

    Used by the benchmark suite and by ``repro.cli campaign
    --compare-serial`` to turn the "bit-identical serial vs parallel"
    guarantee into a checked invariant.
    """
    a, b = parallel.per_seed_metrics(), serial.per_seed_metrics()
    if a != b:
        diffs = []
        for scenario in sorted(set(a) | set(b)):
            if a.get(scenario) != b.get(scenario):
                diffs.append(scenario)
        raise AssertionError(
            f"per-seed metrics diverged between executions in: {diffs}"
        )
