"""Declarative scenario matrices with a parallel multi-core executor.

``campaigns`` turns the repository's bespoke experiment loops into
data: a :class:`ScenarioSpec` declares one run, :func:`matrix` expands
a grid of them, and :class:`CampaignRunner` executes the grid over a
process pool with per-seed results guaranteed identical to a serial
run.  See :mod:`repro.campaigns.library` for the built-in campaigns and
``python -m repro.cli campaign --help`` for the command-line front end.
"""

from repro.campaigns.library import (
    CAMPAIGN_DESCRIPTIONS,
    CAMPAIGNS,
    get_campaign,
)
from repro.campaigns.metrics import EXTRACTORS, extract, register_extractor
from repro.campaigns.runner import (
    Campaign,
    CampaignResult,
    CampaignRunner,
    RunResult,
    run_campaign,
    run_scenario_seed,
    verify_determinism,
)
from repro.campaigns.spec import (
    CrashSpec,
    DestinationSpec,
    LatencySpec,
    ScenarioSpec,
    WorkloadSpec,
    matrix,
    with_seeds,
)

__all__ = [
    "CAMPAIGNS", "CAMPAIGN_DESCRIPTIONS", "get_campaign",
    "EXTRACTORS", "extract", "register_extractor",
    "Campaign", "CampaignResult", "CampaignRunner", "RunResult",
    "run_campaign", "run_scenario_seed", "verify_determinism",
    "CrashSpec", "DestinationSpec", "LatencySpec", "ScenarioSpec",
    "WorkloadSpec", "matrix", "with_seeds",
]
