"""Built-in campaign matrices.

Five ready-made campaigns cover the axes the paper's claims range over:

* ``wan-storm`` — A1 under WAN latency sweeps (link delay × arrival
  rate), the Pod-style wide-area evaluation grid;
* ``crash-storm`` — the paper's protocols under seed-derived
  strict-minority crash schedules of varying aggressiveness;
* ``zipf-fanout`` — mostly-local Zipf destination traffic as the group
  count grows, the partial-replication access pattern that motivates
  genuine multicast;
* ``cross-protocol`` — one workload plan driven through A1 and every
  baseline, property-checked on each: the strongest cross-validation
  the repository offers, now as a single declarative matrix;
* ``fd-overhead`` — the same workload under the oracle detector, real
  message-driven heartbeats, and the elided analytic heartbeat mode:
  failure-detector traffic is pure overhead in crash-free runs, and
  this grid measures it;
* ``torture`` — the paper's four protocols (A1, A1-noskip, A2 and the
  non-genuine wrapper) under every built-in adversary: latency-skewed
  links, bounded delay/reorder, partition spikes and phase-boundary
  crashes.  The uniform properties must hold on *every* schedule an
  adversary can construct within the model; ``repro.cli torture``
  drives this grid through the explorer and shrinks any failure to a
  minimal replayable counterexample;
* ``lossy-net`` — dropping/duplicating/corrupting channels (three
  severities plus Gilbert–Elliott bursts, faults stopping at a
  horizon) × three protocols, all riding the reliable transport:
  every cell must satisfy the uniform properties *and* self-stabilize
  once the faults stop, with the transport's masking cost metered;
* ``store-scaling`` — the transactional partitioned store (one-shot
  multi-partition transactions, see :mod:`repro.store`) at 4/6/8
  groups under genuine A1, the non-genuine wrapper and
  broadcast-everything A2: serializability checked everywhere,
  per-group involvement quantifying that genuineness keeps
  non-destination groups idle;
* ``txn-mix`` — the store's YCSB-style mix grid (read fraction ×
  multi-partition ratio) on A1;
* ``rebalance`` — elastic repartitioning (see :mod:`repro.reconfig`)
  vs the frozen epoch-0 map under zipf-skewed load at 16/24 groups,
  with adversary cells aimed at the migration window: committed
  throughput quantifies what online key-range migration buys, with
  serializability and the reconfig checker green as the precondition.

Each builder returns a :class:`Campaign`; pass ``seeds`` to widen or
narrow the per-scenario seed list (the CLI's ``--seeds`` does).
``repro.cli campaign <name>`` is the front door.
"""

from __future__ import annotations

from dataclasses import replace as dataclasses_replace
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.campaigns.runner import Campaign
from repro.campaigns.spec import (
    CrashSpec,
    DestinationSpec,
    LatencySpec,
    ScenarioSpec,
    StoreSpec,
    WorkloadSpec,
    matrix,
)

DEFAULT_SEEDS: Tuple[int, ...] = (1, 2)


def wan_storm(seeds: Optional[Sequence[int]] = None) -> Campaign:
    """A1 across a WAN grid: inter-group delay × Poisson arrival rate."""
    base = ScenarioSpec(
        name="wan",
        protocol="a1",
        group_sizes=(3, 3, 3),
        latency=LatencySpec.wan(intra_ms=1.0, inter_ms=100.0,
                                inter_jitter_ms=2.0),
        workload=WorkloadSpec(
            kind="poisson", rate=0.01, duration=3_000.0,
            destinations=DestinationSpec(kind="uniform-k", k=2),
        ),
        seeds=tuple(seeds or DEFAULT_SEEDS),
        checkers=("properties", "genuineness"),
    )
    scenarios = matrix(base, {
        "latency.inter_ms": [50.0, 100.0, 200.0],
        "workload.rate": [0.005, 0.02],
    })
    return Campaign(
        name="wan-storm", scenarios=scenarios,
        description="A1 genuine multicast over a WAN latency x rate grid",
    )


def crash_storm(seeds: Optional[Sequence[int]] = None) -> Campaign:
    """Protocols under seed-derived strict-minority crash schedules."""
    base = ScenarioSpec(
        name="crash",
        protocol="a1",
        group_sizes=(3, 3),
        workload=WorkloadSpec(kind="periodic", period=2.0, count=12),
        crashes=CrashSpec(kind="random-minority", window=30.0,
                          probability=0.8),
        seeds=tuple(seeds or DEFAULT_SEEDS),
        checkers=("properties",),
    )
    scenarios = matrix(base, {
        "protocol": ["a1", "a1-noskip", "a2"],
        "crashes.window": [15.0, 30.0],
    })
    return Campaign(
        name="crash-storm", scenarios=scenarios,
        description="uniformity under random minority crashes, "
                    "two crash-window aggressiveness levels",
    )


def zipf_fanout(seeds: Optional[Sequence[int]] = None) -> Campaign:
    """Zipf-skewed destination counts as the system gains groups."""
    base = ScenarioSpec(
        name="zipf",
        protocol="a1",
        group_sizes=(2, 2, 2),
        workload=WorkloadSpec(
            kind="poisson", rate=0.5, duration=20.0,
            destinations=DestinationSpec(kind="zipf", max_k=3, skew=1.5),
        ),
        seeds=tuple(seeds or DEFAULT_SEEDS),
        checkers=("properties", "genuineness"),
    )
    scenarios = matrix(base, {
        "group_sizes": [(2, 2, 2), (2, 2, 2, 2), (2, 2, 2, 2, 2)],
        "workload.destinations.skew": [1.0, 2.0],
    })
    return Campaign(
        name="zipf-fanout", scenarios=scenarios,
        description="mostly-local Zipf traffic; genuineness must keep "
                    "bystander groups silent as the system grows",
    )


def cross_protocol(seeds: Optional[Sequence[int]] = None) -> Campaign:
    """One workload, A1 vs every baseline, same laws checked on each."""
    seeds = tuple(seeds or DEFAULT_SEEDS)
    mcast_base = ScenarioSpec(
        name="mcast",
        group_sizes=(2, 2, 2),
        workload=WorkloadSpec(
            kind="poisson", rate=1.2, duration=80.0,
            destinations=DestinationSpec(kind="uniform-k", k=2),
        ),
        seeds=seeds,
        checkers=("properties", "genuineness"),
    )
    bcast_base = ScenarioSpec(
        name="bcast",
        group_sizes=(2, 2),
        workload=WorkloadSpec(kind="poisson", rate=0.8, duration=80.0),
        seeds=seeds,
        checkers=("properties",),
    )
    scenarios = (
        matrix(mcast_base, {"protocol": ["a1", "a1-noskip", "skeen",
                                         "fritzke", "ring", "global"]})
        + matrix(bcast_base, {"protocol": ["a2", "sequencer",
                                           "optimistic", "detmerge"]})
    )
    return Campaign(
        name="cross-protocol", scenarios=scenarios,
        description="A1 and nine related-work protocols under one shared "
                    "workload plan, paper properties checked on every run",
    )


def fd_overhead(seeds: Optional[Sequence[int]] = None) -> Campaign:
    """Oracle vs heartbeat vs elided-heartbeat detector cost, A1 and A2.

    Failure-detector traffic is pure overhead in crash-free executions
    (Aspnes' classic observation), so the grid quantifies it: the same
    workload under the oracle detector, real message-driven heartbeats,
    and the analytic elided mode — whose per-seed metrics must match
    message mode's on everything but traffic and kernel-event counts.
    """
    base = ScenarioSpec(
        name="fd",
        protocol="a1",
        group_sizes=(3, 3),
        workload=WorkloadSpec(
            kind="poisson", rate=0.5, duration=60.0,
            destinations=DestinationSpec(kind="uniform-k", k=2),
        ),
        seeds=tuple(seeds or DEFAULT_SEEDS),
        checkers=("properties",),
        heartbeat_period=5.0,
        heartbeat_timeout=20.0,
        heartbeat_horizon=150.0,
    )
    bcast = dataclasses_replace(
        base, protocol="a2",
        workload=WorkloadSpec(kind="poisson", rate=0.4, duration=60.0),
        name="fd-bcast",
    )
    detectors = ["perfect", "heartbeat", "heartbeat-elided"]
    scenarios = (matrix(base, {"detector": detectors})
                 + matrix(bcast, {"detector": detectors}))
    return Campaign(
        name="fd-overhead", scenarios=scenarios,
        description="failure-detector cost: oracle vs real heartbeats vs "
                    "the elided analytic fast path",
    )


def torture(seeds: Optional[Sequence[int]] = None) -> Campaign:
    """The paper's protocols × every built-in adversary.

    The axis order (adversary outer, protocol inner) is deliberate:
    smoke runs that truncate with ``--max-scenarios 4`` still cover two
    adversaries × two protocols rather than four adversaries × one.
    """
    seeds = tuple(seeds or DEFAULT_SEEDS)
    adversaries = ["link-skew", "delay-reorder", "partition-spike",
                   "phase-crash"]
    genuine = ScenarioSpec(
        name="torture",
        protocol="a1",
        group_sizes=(3, 3),
        workload=WorkloadSpec(
            kind="poisson", rate=1.0, duration=30.0,
            destinations=DestinationSpec(kind="uniform-k", k=2),
        ),
        seeds=seeds,
        checkers=("properties", "genuineness"),
    )
    nongenuine = dataclasses_replace(
        genuine, name="torture-ng", protocol="nongenuine",
        checkers=("properties",),  # non-genuine by design
    )
    bcast = dataclasses_replace(
        genuine, name="torture-bc", protocol="a2",
        workload=WorkloadSpec(kind="poisson", rate=0.8, duration=30.0),
        checkers=("properties",),
    )
    scenarios = (
        matrix(genuine, {"adversary": adversaries,
                         "protocol": ["a1", "a1-noskip"]})
        + matrix(nongenuine, {"adversary": adversaries})
        + matrix(bcast, {"adversary": adversaries})
    )
    return Campaign(
        name="torture", scenarios=scenarios,
        description="A1/A1-noskip/A2/nongenuine under all built-in "
                    "adversaries; uniform properties checked per run",
    )


def lossy_net(seeds: Optional[Sequence[int]] = None) -> Campaign:
    """Protocols over genuinely lossy channels, transport mounted.

    The four lossy adversaries (5%/15%/30% i.i.d. loss plus the bursty
    Gilbert–Elliott composition, each with duplication and checksum
    corruption mixed in and an ``until=25`` horizon) × three protocols,
    all with ``transport="reliable"``: the retransmitting transport must
    mask every channel fault, so the uniform properties *and* the
    stabilization checker (faults stop → transport drains → system
    quiesces) hold on every cell, while the ``transport`` metric family
    prices the masking in retransmissions, suppressed duplicates and
    ack overhead.

    The axis order (adversary outer, protocol inner) matches
    :func:`torture`: a ``--max-scenarios 2`` smoke still covers two
    protocols under loss rather than two severities of one protocol.
    """
    base = ScenarioSpec(
        name="lossy",
        protocol="a1",
        group_sizes=(2, 2),
        workload=WorkloadSpec(
            kind="poisson", rate=1.0, duration=20.0,
            destinations=DestinationSpec(kind="uniform-k", k=2),
        ),
        seeds=tuple(seeds or DEFAULT_SEEDS),
        transport="reliable",
        checkers=("properties", "stabilization"),
        metrics=("core", "latency", "traffic", "transport"),
    )
    scenarios = matrix(base, {
        "adversary": ["lossy-light", "lossy-medium", "lossy-heavy",
                      "lossy-burst"],
        "protocol": ["a1", "a2", "nongenuine"],
    })
    # A2 is proactive: its rounds only start when asked to.
    scenarios = [
        dataclasses_replace(spec, start_rounds=True)
        if spec.protocol == "a2" else spec
        for spec in scenarios
    ]
    return Campaign(
        name="lossy-net", scenarios=scenarios,
        description="drop/duplicate/corrupt channels under the reliable "
                    "transport: properties plus self-stabilization on "
                    "every cell, masking cost measured",
    )


def store_scaling(seeds: Optional[Sequence[int]] = None) -> Campaign:
    """The transactional store as the deployment gains groups.

    Three protocols over the same transaction plan (four data
    partitions, zipf keys, 40% multi-partition mix) at 4, 6 and 8
    groups — the groups beyond the first four own no data, so they are
    the measurement instrument for the genuineness claim:

    * ``a1`` (genuine routing): non-destination groups exchange **zero**
      protocol messages (``nondest_messages`` metric);
    * ``nongenuine`` (same destination sets, broadcast underneath): the
      very same transactions now drag every group in;
    * ``a2`` with ``routing="broadcast"``: the broadcast-everything
      store — every group receives, orders and filters every
      transaction.

    Every scenario runs the one-copy-serializability and convergence
    checkers; the a1 scenarios additionally assert genuineness.
    """
    seeds = tuple(seeds or DEFAULT_SEEDS)
    store = StoreSpec(
        n_keys=48, data_groups=(0, 1, 2, 3), routing="genuine",
        rate=0.8, duration=40.0, read_fraction=0.5,
        multi_partition_fraction=0.4, ops_per_txn=2, zipf_skew=1.0,
    )
    sizes = [(2, 2, 2, 2), (2, 2, 2, 2, 2, 2), (2,) * 8]
    base = ScenarioSpec(
        name="store",
        protocol="a1",
        group_sizes=sizes[0],
        store=store,
        seeds=seeds,
        checkers=("properties", "serializability", "convergence",
                  "genuineness"),
        metrics=("core", "latency", "traffic", "store", "involvement"),
    )
    nongenuine = dataclasses_replace(
        base, name="store-ng", protocol="nongenuine",
        checkers=("properties", "serializability", "convergence"),
    )
    bcast = dataclasses_replace(
        base, name="store-bc", protocol="a2",
        store=dataclasses_replace(store, routing="broadcast"),
        checkers=("properties", "serializability", "convergence"),
    )
    scenarios = (matrix(base, {"group_sizes": sizes})
                 + matrix(nongenuine, {"group_sizes": sizes})
                 + matrix(bcast, {"group_sizes": sizes}))
    return Campaign(
        name="store-scaling", scenarios=scenarios,
        description="transactional store at 4/6/8 groups: genuine A1 vs "
                    "nongenuine vs broadcast-everything; serializability "
                    "checked, per-group involvement measured",
    )


def txn_mix(seeds: Optional[Sequence[int]] = None) -> Campaign:
    """A1 store under the YCSB-style mix grid.

    Read fraction × multi-partition ratio, four data partitions: the
    serving layer must stay one-copy serialisable whether the workload
    is read-heavy and local or write-heavy and cross-partition, and the
    commit-latency metrics quantify what the mix costs.
    """
    base = ScenarioSpec(
        name="mix",
        protocol="a1",
        group_sizes=(2, 2, 2, 2),
        store=StoreSpec(
            n_keys=48, routing="genuine", rate=1.0, duration=40.0,
            ops_per_txn=2, zipf_skew=1.2,
        ),
        seeds=tuple(seeds or DEFAULT_SEEDS),
        checkers=("properties", "serializability", "convergence",
                  "genuineness"),
        metrics=("core", "latency", "store", "involvement"),
    )
    scenarios = matrix(base, {
        "store.read_fraction": [0.95, 0.5, 0.1],
        "store.multi_partition_fraction": [0.1, 0.5],
    })
    return Campaign(
        name="txn-mix", scenarios=scenarios,
        description="store read/write x multi-partition mix grid on A1; "
                    "serializability and genuineness checked per cell",
    )


def rebalance(seeds: Optional[Sequence[int]] = None) -> Campaign:
    """Elastic repartitioning vs a static map under zipf skew.

    Sixteen to twenty-four data groups with ring placement, a global
    zipf-1.0 key popularity and a per-transaction service cost: the
    hottest partition's execution queue is the bottleneck, so committed
    transactions per virtual second measure how much the
    :class:`~repro.reconfig.balancer.LoadBalancer`'s online key-range
    migrations buy over the frozen epoch-0 assignment.  The skew is
    deliberately moderate — at zipf ≥ 1.2 the single hottest key alone
    saturates whichever group owns it, and no key-*range* migration can
    split one indivisible key, so the imbalance the balancer can
    actually fix is the placement-induced kind: several moderately hot
    keys ring-hashed onto the same group.  The grid's inner axis is
    ``rebalance_interval`` ``{0, 10}`` — the *same* workload plan with
    the balancer off and on — and every cell runs
    the one-copy-serializability, convergence and reconfig checkers, so
    the speedup is only reported on runs where migration provably
    preserved the paper's guarantees.

    Two adversary cells aim bounded delay/reordering and
    phase-boundary crashes at the migration window (balancer on, same
    grid parameters); ``repro.cli rebalance`` additionally drives the
    explorer over these and shrinks any failure to a minimal
    replayable counterexample.
    """
    seeds = tuple(seeds or DEFAULT_SEEDS)
    store = StoreSpec(
        n_keys=96, routing="genuine", placement="ring",
        rate=1.5, duration=150.0, read_fraction=0.5,
        multi_partition_fraction=0.4, ops_per_txn=2,
        zipf_skew=1.0, popularity="global",
        service_time=2.5, notice_delay=0.5,
        rebalance_interval=10.0, rebalance_threshold=1.3,
    )
    base = ScenarioSpec(
        name="rebalance",
        protocol="a1",
        group_sizes=(2,) * 16,
        store=store,
        seeds=seeds,
        checkers=("properties", "serializability", "convergence",
                  "reconfig"),
        metrics=("core", "latency", "store", "reconfig"),
    )
    # The arrival rate scales with the group count so per-partition
    # pressure stays comparable: a rate that saturates 16 groups spreads
    # thin over 24, and an unsaturated static map leaves the balancer
    # nothing to win.
    benign = []
    for n_groups, rate in ((16, 1.5), (24, 2.25)):
        cell = dataclasses_replace(
            base, name=f"rebalance-{n_groups}g",
            group_sizes=(2,) * n_groups,
            store=dataclasses_replace(store, rate=rate))
        benign += matrix(cell, {"store.rebalance_interval": [0.0, 10.0]})
    # Adversary cells run three replicas per group so the phase-crash
    # injector can take a member of a group mid-migration and still
    # leave the strict majority the protocol needs.
    adversarial = matrix(
        dataclasses_replace(base, name="rebalance-adv",
                            group_sizes=(3,) * 16),
        {"adversary": ["delay-reorder", "phase-crash"]},
    )
    return Campaign(
        name="rebalance", scenarios=benign + adversarial,
        description="elastic repartitioning vs static map under zipf "
                    "skew at 16/24 groups; serializability and reconfig "
                    "checked on every cell, adversaries aimed at the "
                    "migration window",
    )


CampaignBuilder = Callable[..., Campaign]

CAMPAIGNS: Dict[str, CampaignBuilder] = {
    "wan-storm": wan_storm,
    "crash-storm": crash_storm,
    "zipf-fanout": zipf_fanout,
    "cross-protocol": cross_protocol,
    "fd-overhead": fd_overhead,
    "torture": torture,
    "lossy-net": lossy_net,
    "store-scaling": store_scaling,
    "txn-mix": txn_mix,
    "rebalance": rebalance,
}

CAMPAIGN_DESCRIPTIONS: Dict[str, str] = {
    "wan-storm": "A1 over a WAN latency x arrival-rate grid (6 scenarios)",
    "crash-storm": "protocol x crash-window matrix under random minority "
                   "crashes (6 scenarios)",
    "zipf-fanout": "Zipf destination skew x group count (6 scenarios)",
    "cross-protocol": "A1 vs nine baselines on one workload (10 scenarios)",
    "fd-overhead": "oracle vs heartbeat vs elided-heartbeat detector "
                   "cost, A1 and A2 (6 scenarios)",
    "torture": "4 protocols x 4 adversaries; minimal counterexample on "
               "any failure (16 scenarios)",
    "lossy-net": "drop/duplicate/corrupt channels x 3 protocols under "
                 "the reliable transport; stabilization checked "
                 "(12 scenarios)",
    "store-scaling": "transactional store at 4/6/8 groups, genuine vs "
                     "nongenuine vs broadcast (9 scenarios)",
    "txn-mix": "store read/write x multi-partition mix grid on A1 "
               "(6 scenarios)",
    "rebalance": "elastic repartitioning vs static map under zipf skew "
                 "at 16/24 groups, adversaries on the migration window "
                 "(6 scenarios)",
}


def get_campaign(name: str,
                 seeds: Optional[Sequence[int]] = None) -> Campaign:
    """Look a built-in campaign up by name."""
    if name not in CAMPAIGNS:
        raise KeyError(
            f"unknown campaign {name!r}; have {sorted(CAMPAIGNS)}"
        )
    return CAMPAIGNS[name](seeds=seeds)
