"""Per-run metric extraction for campaign scenarios.

Every extractor maps a finished :class:`~repro.runtime.builder.System`
to a flat ``{metric name: float}`` dict, computed through
:class:`~repro.runtime.report.RunReport` so campaigns report exactly the
numbers the rest of the repository reports.  Scenario specs name the
extractors they want (``ScenarioSpec.metrics``); the registry keeps the
names picklable across worker processes — workers look extractors up by
name instead of shipping function objects.

The flat-dict shape is what
:class:`~repro.runtime.runner.Aggregate` consumes, so cross-seed
aggregation falls out of the existing multi-seed machinery.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.runtime.report import RunReport

MetricExtractor = Callable[[object], Dict[str, float]]


def core_metrics(system) -> Dict[str, float]:
    """Engine-level counters: casts, deliveries, events, traffic."""
    return {k: float(v)
            for k, v in RunReport(system).throughput_summary().items()}


def latency_metrics(system) -> Dict[str, float]:
    """Worst- and mean-replica delivery latency percentiles."""
    report = RunReport(system)
    out: Dict[str, float] = {}
    worst = report.latency_summary(worst_replica=True)
    if worst is not None:
        out.update({
            "latency_worst_mean": worst.mean,
            "latency_worst_p50": worst.p50,
            "latency_worst_p90": worst.p90,
            "latency_worst_max": worst.max,
        })
    mean = report.latency_summary(worst_replica=False)
    if mean is not None:
        out["latency_mean_mean"] = mean.mean
    return out


def degree_metrics(system) -> Dict[str, float]:
    """Latency-degree statistics (the paper's optimality currency)."""
    return RunReport(system).degree_summary()


def traffic_metrics(system) -> Dict[str, float]:
    """Network copies, split intra/inter and amortised per cast."""
    stats = system.network.stats
    out = {
        "inter_group_messages": float(stats.inter_group_messages),
        "intra_group_messages": float(stats.intra_group_messages),
    }
    casts = len(system.log.cast_messages())
    if casts:
        out["inter_per_cast"] = stats.inter_group_messages / casts
        out["intra_per_cast"] = stats.intra_group_messages / casts
    per_cast = RunReport(system).messages_per_cast()
    if per_cast is not None:
        out["messages_per_cast"] = per_cast
    return out


def round_metrics(system) -> Dict[str, float]:
    """Round usefulness for proactive round-based protocols (A2 family).

    Protocols without round counters report zeros, so a mixed-protocol
    campaign still returns a consistent metric set per scenario.
    """
    endpoint = system.endpoints[min(system.endpoints)]
    executed = float(getattr(endpoint, "rounds_executed", 0) or 0)
    useful = float(getattr(endpoint, "useful_rounds", 0) or 0)
    return {
        "rounds_executed": executed,
        "useful_rounds": useful,
        "useful_round_fraction": useful / executed if executed else 0.0,
    }


def phase_metrics(system) -> Dict[str, float]:
    """Profiler phase timings as ``phase_<name>_seconds`` metrics.

    Naming ``phases`` in ``ScenarioSpec.metrics`` makes the campaign
    runner build the system with ``profile=True`` automatically (the
    same auto-enable rule genuineness uses for the trace).  Phase wall
    times are machine-dependent, so campaigns that also
    ``--compare-serial`` should leave this extractor out — it is the
    one metric family that legitimately differs between executions.
    """
    timings = RunReport(system).phase_timings()
    return {f"phase_{name}_seconds": seconds
            for name, seconds in timings.items()}


def transport_metrics(system) -> Dict[str, float]:
    """Reliable-transport counters plus channel-fault accounting.

    Works on any system: without a mounted transport the ``tsp_*``
    counters are all zero (so a transport="none"/"reliable" grid axis
    yields comparable rows), and the wire-level drop/duplicate counters
    come from the network stats either way.  ``tsp_overhead_copies`` is
    the transport's price in extra wire copies — retransmissions plus
    acks — amortised per sequenced data copy.
    """
    stats = system.network.stats
    out = {
        "wire_dropped": float(stats.dropped),
        "wire_duplicated": float(stats.duplicated),
    }
    from repro.transport import TransportStats

    transport = getattr(system, "transport", None)
    snap = (transport.stats if transport is not None
            else TransportStats()).snapshot()
    out.update({f"tsp_{name}": float(value)
                for name, value in snap.items()})
    data = snap["data_copies"]
    extra = snap["retransmits"] + snap["fast_retransmits"] + snap["acks_sent"]
    out["tsp_overhead_copies"] = extra / data if data else 0.0
    checker = getattr(system, "stabilization_checker", None)
    settle = getattr(checker, "last_delivery_at", None)
    out["stab_last_delivery_at"] = float(settle) if settle is not None else 0.0
    return out


def _store_metrics(system) -> Dict[str, float]:
    """Serving-layer metrics (see :mod:`repro.store.metrics`)."""
    from repro.store.metrics import store_metrics

    return store_metrics(system)


def _reconfig_metrics(system) -> Dict[str, float]:
    """Elastic-repartitioning counters (see :mod:`repro.reconfig.metrics`).

    All zeros on a static store scenario, so a rebalance-on/off grid
    axis yields comparable rows.  Only valid for store scenarios.
    """
    from repro.reconfig.metrics import reconfig_metrics

    return reconfig_metrics(system)


def _involvement_metrics(system) -> Dict[str, float]:
    """Per-group involvement metrics (see :mod:`repro.store.metrics`).

    Naming ``involvement`` in ``ScenarioSpec.metrics`` makes the
    campaign runner build the system with ``trace=True`` automatically
    (the rule genuineness uses).  Only valid for store scenarios.
    """
    from repro.store.metrics import involvement_metrics

    return involvement_metrics(system)


EXTRACTORS: Dict[str, MetricExtractor] = {
    "core": core_metrics,
    "latency": latency_metrics,
    "degrees": degree_metrics,
    "traffic": traffic_metrics,
    "rounds": round_metrics,
    "phases": phase_metrics,
    "transport": transport_metrics,
    "store": _store_metrics,
    "involvement": _involvement_metrics,
    "reconfig": _reconfig_metrics,
}


def register_extractor(name: str, extractor: MetricExtractor) -> None:
    """Add a custom extractor.

    Pool workers re-import modules rather than inheriting this dict
    under the ``spawn`` start method (macOS/Windows default), so the
    registration call must live at module top level — *not* under an
    ``if __name__ == "__main__"`` guard — to be visible with
    ``jobs > 1`` there.  Under ``fork`` (Linux default) and ``jobs=1``
    any call site works.
    """
    if name in EXTRACTORS:
        raise ValueError(f"extractor {name!r} already registered")
    EXTRACTORS[name] = extractor


def extract(system, names: List[str]) -> Dict[str, float]:
    """Run the named extractors and merge their metric dicts."""
    out: Dict[str, float] = {}
    for name in names:
        if name not in EXTRACTORS:
            raise KeyError(
                f"unknown metric extractor {name!r}; "
                f"have {sorted(EXTRACTORS)}"
            )
        for key, value in EXTRACTORS[name](system).items():
            if key in out:
                raise ValueError(
                    f"metric {key!r} produced by two extractors"
                )
            out[key] = float(value)
    return out
