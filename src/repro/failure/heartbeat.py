"""A real, message-based eventually-perfect failure detector.

The default detectors in :mod:`repro.failure.detectors` are oracles —
they answer suspicion queries from ground truth, which keeps protocol
message counts clean for the Figure 1 comparisons (the paper's own
methodology: its substrate costs come from oracle-based consensus and
reliable broadcast).

This module is the opt-in realistic alternative: every process
periodically sends heartbeats to its group; an observer suspects a peer
once no heartbeat arrived for ``timeout``.  With quasi-reliable links
and bounded (simulated) delays this implements ◊P within a group:

* *strong completeness* — a crashed process stops heartbeating and is
  eventually suspected by every correct observer;
* *eventual strong accuracy* — here delays are bounded by the latency
  model, so a timeout above the worst intra-group delay plus the
  heartbeat period yields no false suspicions after startup.

Heartbeats run forever, so systems using this detector are **not
quiescent** — run them with ``sim.run(until=...)`` and stop the
detector before draining, or accept the standing traffic.  The tests
exercise consensus and Algorithm A1 under this detector to show the
protocols only need the abstract interface, not the oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.failure.detectors import FailureDetector
from repro.net.message import Message
from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.kernel import Simulator


class HeartbeatFailureDetector(FailureDetector):
    """Group-scoped heartbeat detector for every registered process."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        topology: Topology,
        period: float = 10.0,
        timeout: float = 35.0,
        namespace: str = "fd",
    ) -> None:
        """Start heartbeating on every process of the network.

        Args:
            period: Gap between a process's heartbeats.
            timeout: Silence after which a peer is suspected.  Must
                exceed ``period`` plus the worst intra-group delay or
                correct processes will be falsely suspected forever.
        """
        if timeout <= period:
            raise ValueError("timeout must exceed the heartbeat period")
        self.sim = sim
        self.network = network
        self.topology = topology
        self.period = period
        self.timeout = timeout
        self.ns = namespace
        self._running = True
        # last_seen[observer][peer] = virtual time of last heartbeat.
        self._last_seen: Dict[int, Dict[int, float]] = {}
        for process in network.processes():
            peers = topology.members(process.group_id)
            self._last_seen[process.pid] = {
                peer: sim.now for peer in peers if peer != process.pid
            }
            process.register_handler(f"{self.ns}.hb", self._make_on_hb(
                process.pid))
            self._schedule_beat(process.pid, initial=True)

    # ------------------------------------------------------------------
    # Heartbeat machinery
    # ------------------------------------------------------------------
    def _schedule_beat(self, pid: int, initial: bool = False) -> None:
        delay = 0.0 if initial else self.period
        self.sim.schedule(delay, lambda: self._beat(pid),
                          label=f"{self.ns}.beat")

    def _beat(self, pid: int) -> None:
        if not self._running:
            return
        process = self.network.process(pid)
        if process.crashed:
            return  # a crashed process stops heartbeating, forever
        peers = [p for p in self.topology.members(process.group_id)
                 if p != pid]
        if peers:
            process.send_many(peers, f"{self.ns}.hb", {"from": pid})
        self._schedule_beat(pid)

    def _make_on_hb(self, observer: int):
        def on_hb(msg: Message) -> None:
            self._last_seen[observer][msg.payload["from"]] = self.sim.now

        return on_hb

    def stop(self) -> None:
        """Cease all heartbeating (lets the simulation drain)."""
        self._running = False

    # ------------------------------------------------------------------
    # FailureDetector interface
    # ------------------------------------------------------------------
    def suspects(self, querying_pid: int, target_pid: int) -> bool:
        if querying_pid == target_pid:
            return False
        seen = self._last_seen.get(querying_pid, {})
        if target_pid not in seen:
            # Outside the observer's group: heartbeats don't cover it;
            # fall back to "not suspected" (the paper's protocols only
            # consult detectors within consensus cohorts).
            return False
        return self.sim.now - seen[target_pid] > self.timeout

    def last_heartbeat(self, observer: int, peer: int) -> Optional[float]:
        """Diagnostic accessor used by tests."""
        return self._last_seen.get(observer, {}).get(peer)
