"""A real, message-based eventually-perfect failure detector.

The default detectors in :mod:`repro.failure.detectors` are oracles —
they answer suspicion queries from ground truth, which keeps protocol
message counts clean for the Figure 1 comparisons (the paper's own
methodology: its substrate costs come from oracle-based consensus and
reliable broadcast).

This module is the opt-in realistic alternative: every process
periodically sends heartbeats to its group; an observer suspects a peer
once no heartbeat arrived for ``timeout``.  With quasi-reliable links
and bounded (simulated) delays this implements ◊P within a group:

* *strong completeness* — a crashed process stops heartbeating and is
  eventually suspected by every correct observer;
* *eventual strong accuracy* — here delays are bounded by the latency
  model, so a timeout above the worst intra-group delay plus the
  heartbeat period yields no false suspicions after startup.

Two execution modes share identical observable semantics:

* ``mode="messages"`` — real heartbeat copies travel the network.  A
  single *coalesced timer per group* drives every member's beat (all
  members beat at the same virtual instants anyway, so one kernel event
  per group per period replaces one per process per period).
* ``mode="elided"`` — the analytic fast path: no timers, no messages,
  no kernel events.  Suspicion answers are derived on demand from the
  observed crash times (via crash hooks) and the fixed intra-group link
  delay, reproducing exactly the ``last_seen`` values the message-driven
  mode would have recorded.  Failure-detector traffic is pure overhead
  in crash-free executions, so large-n runs get it for free.

:mod:`repro.failure.harness` asserts the two modes produce bit-identical
suspicion transitions and protocol delivery orders on crash scenarios.

Message-driven heartbeats run until ``horizon`` (forever when None), so
systems using that mode are **not quiescent** unless a horizon is set —
run them with ``sim.run(until=...)``, or call :meth:`stop` (which
cancels the outstanding group timers so draining is immediate).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.failure.detectors import FailureDetector
from repro.net.message import Message
from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.kernel import Simulator

MODES = ("messages", "elided")


class HeartbeatFailureDetector(FailureDetector):
    """Group-scoped heartbeat detector for every registered process."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        topology: Topology,
        period: float = 10.0,
        timeout: float = 35.0,
        namespace: str = "fd",
        mode: str = "messages",
        horizon: Optional[float] = None,
    ) -> None:
        """Start heartbeating on every process of the network.

        Args:
            period: Gap between a process's heartbeats.
            timeout: Silence after which a peer is suspected.  Must
                exceed ``period`` plus the worst intra-group delay or
                correct processes will be falsely suspected forever.
            mode: ``"messages"`` (real heartbeat traffic, one coalesced
                timer per group) or ``"elided"`` (analytic, zero
                traffic; requires fixed intra-group link delays).
            horizon: Virtual time after which heartbeating ceases (both
                modes).  Lets finite workloads reach quiescence without
                an explicit :meth:`stop` call.
        """
        if timeout <= period:
            raise ValueError("timeout must exceed the heartbeat period")
        if mode not in MODES:
            raise ValueError(f"unknown heartbeat mode {mode!r}; "
                             f"pick one of {MODES}")
        self.sim = sim
        self.network = network
        self.topology = topology
        self.period = period
        self.timeout = timeout
        self.ns = namespace
        self.mode = mode
        self.horizon = horizon
        self._running = True
        self._stopped_at: Optional[float] = None
        self._epoch = sim.now  # first beat instant (k = 0)
        # last_seen[observer][peer] = virtual time of last heartbeat
        # (message mode only; elided mode computes it analytically).
        self._last_seen: Dict[int, Dict[int, float]] = {}
        # One cancellable timer per group (message mode).
        self._timers: Dict[int, object] = {}
        # Observed crash instants (elided mode), via crash hooks so any
        # crash mechanism — schedule or direct crash() — is captured.
        self._crash_at: Dict[int, float] = {}
        # Fixed intra-group delay per group (elided mode).
        self._intra_delay: Dict[int, float] = {}
        self._peers: Dict[int, List[int]] = {
            pid: [p for p in topology.members(topology.group_of(pid))
                  if p != pid]
            for pid in topology.processes
        }
        if mode == "messages":
            self._init_messages()
        else:
            self._init_elided()

    # ------------------------------------------------------------------
    # Message-driven mode: one coalesced timer per group
    # ------------------------------------------------------------------
    def _init_messages(self) -> None:
        for process in self.network.processes():
            self._last_seen[process.pid] = {
                peer: self.sim.now for peer in self._peers[process.pid]
            }
            process.register_handler(f"{self.ns}.hb",
                                     self._make_on_hb(process.pid))
        for gid in self.topology.group_ids:
            self._schedule_group_beat(gid, initial=True)

    def _schedule_group_beat(self, gid: int, initial: bool = False) -> None:
        delay = 0.0 if initial else self.period
        if self.horizon is not None and self.sim.now + delay > self.horizon:
            self._timers.pop(gid, None)
            return
        self._timers[gid] = self.sim.schedule(
            delay, lambda: self._group_beat(gid), label=f"{self.ns}.beat")

    def _group_beat(self, gid: int) -> None:
        """One period tick: every live member of ``gid`` heartbeats.

        Members beat in pid order, exactly the order the old
        per-process timers fired in (they were scheduled in pid order at
        identical instants), so coalescing changes no delivery
        interleaving — it only removes kernel events.
        """
        if not self._running:
            return
        profiler = getattr(self.sim, "profiler", None)
        if profiler is not None:
            profiler.push("failure_detection")
        alive = False
        kind = f"{self.ns}.hb"
        for pid in self.topology.members(gid):
            process = self.network.process(pid)
            if process.crashed:
                continue
            alive = True
            peers = self._peers[pid]
            if peers:
                process.send_many(peers, kind, {"from": pid})
        if profiler is not None:
            profiler.pop()
        if alive:
            self._schedule_group_beat(gid)
        else:
            # Every member crashed: the group's timer dies with it.
            self._timers.pop(gid, None)

    def _make_on_hb(self, observer: int):
        def on_hb(msg: Message) -> None:
            self._last_seen[observer][msg.payload["from"]] = self.sim.now

        return on_hb

    def stop(self) -> None:
        """Cease all heartbeating and cancel outstanding beat timers.

        Cancelling (rather than letting the pending beats fire as
        no-ops) means ``run_until_quiescent`` drains immediately: a
        stopped detector contributes zero future events.  The elided
        mode records the stop instant and caps its analytic beats
        there, so both modes fall silent — and start suspecting
        everyone — at the same virtual time.
        """
        self._running = False
        if self._stopped_at is None:
            self._stopped_at = self.sim.now
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()

    # ------------------------------------------------------------------
    # Elided mode: suspicion derived from crash times + link delay
    # ------------------------------------------------------------------
    def _init_elided(self) -> None:
        latency = self.network.latency
        for gid in self.topology.group_ids:
            delay = latency.fixed_delay(gid, gid)
            if delay is None:
                raise ValueError(
                    "elided heartbeat mode needs a fixed intra-group "
                    f"link delay, but group {gid}'s is sampled; use "
                    "mode='messages' under jittered intra-group latency"
                )
            self._intra_delay[gid] = delay
        for process in self.network.processes():
            pid = process.pid
            if process.crashed:
                self._crash_at[pid] = self.sim.now
            else:
                process.add_crash_hook(
                    lambda pid=pid: self._crash_at.setdefault(
                        pid, self.sim.now))

    def _beats_until(self, limit: float, *, strict: bool) -> int:
        """Index of the last beat at time < limit (<= when not strict)."""
        k = (limit - self._epoch) / self.period
        if strict:
            return math.ceil(k) - 1
        return math.floor(k)

    def _analytic_last_seen(self, observer: int, peer: int) -> float:
        """The ``last_seen`` value message mode would hold right now.

        Beat k fires at ``epoch + k*period`` and its copies arrive one
        fixed intra-group delay later.  The arrival counted is the
        latest one that (a) has happened, (b) the peer was still alive
        to send (a crash at the exact beat instant preempts the beat:
        crash events are scheduled earlier, so they fire first), and
        (c) the observer was still alive to receive (same tie rule).
        """
        now = self.sim.now
        d = self._intra_delay[self.topology.group_of(peer)]
        k = math.floor((now - self._epoch - d) / self.period)
        crash_peer = self._crash_at.get(peer)
        if crash_peer is not None:
            k = min(k, self._beats_until(crash_peer, strict=True))
        crash_obs = self._crash_at.get(observer)
        if crash_obs is not None:
            k = min(k, self._beats_until(crash_obs - d, strict=True))
        if self.horizon is not None:
            k = min(k, self._beats_until(self.horizon, strict=False))
        if self._stopped_at is not None:
            # Beats up to the stop instant happened (message mode's
            # in-flight copies still arrive after stop); later ones
            # were cancelled.
            k = min(k, self._beats_until(self._stopped_at, strict=False))
        if k < 0:
            return self._epoch
        return self._epoch + k * self.period + d

    # ------------------------------------------------------------------
    # FailureDetector interface
    # ------------------------------------------------------------------
    def suspects(self, querying_pid: int, target_pid: int) -> bool:
        if querying_pid == target_pid:
            return False
        if self.mode == "elided":
            if target_pid not in self._peers.get(querying_pid, ()):
                # Outside the observer's group: heartbeats don't cover
                # it; fall back to "not suspected" (the paper's
                # protocols only consult detectors within cohorts).
                return False
            last = self._analytic_last_seen(querying_pid, target_pid)
            return self.sim.now - last > self.timeout
        seen = self._last_seen.get(querying_pid, {})
        if target_pid not in seen:
            return False
        return self.sim.now - seen[target_pid] > self.timeout

    def last_heartbeat(self, observer: int, peer: int) -> Optional[float]:
        """Diagnostic accessor used by tests and the harness."""
        if self.mode == "elided":
            if peer not in self._peers.get(observer, ()):
                return None
            return self._analytic_last_seen(observer, peer)
        return self._last_seen.get(observer, {}).get(peer)

    @property
    def pending_timers(self) -> int:
        """Live beat timers (0 in elided mode / after :meth:`stop`)."""
        return len(self._timers)
