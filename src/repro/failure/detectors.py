"""Simulated failure detectors.

Rather than exchanging heartbeats (which would pollute the genuineness
and message-complexity measurements), detectors here are *oracles* driven
by the ground-truth crash state, with configurable accuracy:

* :class:`PerfectDetector` — suspects exactly the crashed processes,
  after a fixed detection delay.  Models the class P.
* :class:`EventuallyPerfectDetector` — before a stabilisation time it may
  wrongly suspect correct processes (each query flips a coin); afterwards
  it behaves like a perfect detector.  Models ◊P, strong enough for ◊S
  use inside consensus.

This oracle design mirrors the paper's measurement methodology: in
Figure 1 the paper charges the algorithms for *protocol* messages only,
assuming an oracle-based consensus/reliable-broadcast substrate ([6],
[11]); detector traffic is out of band.
"""

from __future__ import annotations

import random
from typing import Optional, Set

from repro.net.network import Network
from repro.sim.kernel import Simulator


class FailureDetector:
    """Interface: per-process suspicion queries."""

    def suspects(self, querying_pid: int, target_pid: int) -> bool:
        """Does ``querying_pid`` currently suspect ``target_pid``?"""
        raise NotImplementedError

    def leader(self, querying_pid: int, candidates) -> Optional[int]:
        """First candidate (ascending pid) not suspected, or None.

        Consensus uses this to pick the ballot-0 proposer and its
        replacements; every correct process eventually agrees on the
        leader once the detector stabilises.
        """
        for pid in sorted(candidates):
            if not self.suspects(querying_pid, pid):
                return pid
        return None


class PerfectDetector(FailureDetector):
    """Suspects exactly the crashed processes after ``delay``."""

    def __init__(self, sim: Simulator, network: Network, delay: float = 0.0) -> None:
        self.sim = sim
        self.network = network
        self.delay = delay
        self._crash_times: dict = {}
        for process in network.processes():
            process.add_crash_hook(
                lambda pid=process.pid: self._crash_times.setdefault(
                    pid, self.sim.now
                )
            )

    def suspects(self, querying_pid: int, target_pid: int) -> bool:
        crashed_at = self._crash_times.get(target_pid)
        if crashed_at is None:
            return False
        return self.sim.now >= crashed_at + self.delay

    def leader(self, querying_pid: int, candidates) -> Optional[int]:
        # Fast path for the common crash-free run: nobody is suspected,
        # so the leader is simply the smallest candidate pid.
        if not self._crash_times:
            return min(candidates)
        return super().leader(querying_pid, candidates)


class EventuallyPerfectDetector(FailureDetector):
    """Unreliable before ``stabilise_at``; perfect afterwards."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        rng: random.Random,
        stabilise_at: float,
        false_suspicion_probability: float = 0.2,
        delay: float = 0.0,
    ) -> None:
        self._perfect = PerfectDetector(sim, network, delay)
        self.sim = sim
        self.rng = rng
        self.stabilise_at = stabilise_at
        self.false_suspicion_probability = false_suspicion_probability

    def suspects(self, querying_pid: int, target_pid: int) -> bool:
        if self._perfect.suspects(querying_pid, target_pid):
            return True
        if self.sim.now < self.stabilise_at:
            return self.rng.random() < self.false_suspicion_probability
        return False
