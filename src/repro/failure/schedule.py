"""Crash-stop failure injection.

A :class:`CrashSchedule` maps process ids to virtual crash times.  When
applied to a simulator it schedules the crashes; the network then stops
accepting sends from and deliveries to the crashed process.

The paper's model requires at least one correct process per group; our
Paxos-based consensus additionally needs a majority of correct processes
per group for liveness.  :meth:`CrashSchedule.validate` checks both so
experiments fail fast on nonsensical schedules.
"""

from __future__ import annotations

import random
import warnings
from typing import Dict, Iterable, Optional

from repro.net.topology import Topology
from repro.sim.kernel import Simulator


class CrashHorizonWarning(UserWarning):
    """A schedule names crash times past the run horizon.

    Such crashes still *execute* (the kernel keeps the crash event
    queued, extending a run-until-quiescent well past the workload
    tail), but they usually no longer influence anything the checkers
    look at — the classic symptom of an unshrunk counterexample.  The
    adversary shrinker uses :meth:`CrashSchedule.late_crashes` to find
    and drop them.
    """


class CrashSchedule:
    """An immutable plan of who crashes when."""

    def __init__(self, crashes: Optional[Dict[int, float]] = None) -> None:
        self.crashes: Dict[int, float] = dict(crashes or {})

    def __len__(self) -> int:
        return len(self.crashes)

    def crash_time(self, pid: int) -> Optional[float]:
        """Virtual crash time of ``pid``, or None if correct."""
        return self.crashes.get(pid)

    def is_faulty(self, pid: int) -> bool:
        """True when ``pid`` crashes at some point in this schedule."""
        return pid in self.crashes

    def correct_processes(self, topology: Topology) -> list:
        """Process ids that never crash."""
        return [p for p in topology.processes if p not in self.crashes]

    def late_crashes(self, horizon: float) -> Dict[int, float]:
        """Crashes scheduled strictly after ``horizon`` (pid -> time).

        The diagnostic behind :class:`CrashHorizonWarning`; the
        adversary shrinker drops these first when it shortens a failing
        scenario's horizon.
        """
        return {pid: t for pid, t in self.crashes.items() if t > horizon}

    def truncated(self, horizon: float) -> "CrashSchedule":
        """A copy of this schedule without the crashes past ``horizon``."""
        return CrashSchedule(
            {pid: t for pid, t in self.crashes.items() if t <= horizon}
        )

    def record_observed(self, pid: int, when: float) -> None:
        """Record a crash injected dynamically during the run.

        Phase-triggered injectors crash processes the static plan never
        named; registering the crash here keeps the post-run checkers'
        notion of "correct process" aligned with what actually happened.
        """
        self.crashes.setdefault(pid, when)

    # ------------------------------------------------------------------
    def validate(self, topology: Topology, require_majority: bool = True,
                 horizon: Optional[float] = None) -> None:
        """Check the schedule against the paper's assumptions.

        Raises ValueError when the schedule names a process outside the
        topology, when a group loses all members, or (when
        ``require_majority``) when a group loses its majority — Paxos
        inside that group would lose liveness.  When ``horizon`` is
        given, crashes scheduled past it additionally emit a
        :class:`CrashHorizonWarning` — legal, but almost always a sign
        the schedule carries dead weight.
        """
        if horizon is not None:
            late = self.late_crashes(horizon)
            if late:
                named = ", ".join(f"pid {pid} at {t:g}"
                                  for pid, t in sorted(late.items()))
                warnings.warn(
                    f"crash(es) scheduled past the run horizon "
                    f"{horizon:g}: {named}; they extend the run without "
                    f"affecting it — consider truncated({horizon:g})",
                    CrashHorizonWarning,
                    stacklevel=2,
                )
        known = set(topology.processes)
        strangers = sorted(pid for pid in self.crashes if pid not in known)
        if strangers:
            raise ValueError(
                f"crash schedule names unknown process(es) {strangers}; "
                f"topology has {topology.n_processes} processes"
            )
        for gid in topology.group_ids:
            members = topology.members(gid)
            faulty = [p for p in members if p in self.crashes]
            correct = len(members) - len(faulty)
            if correct < 1:
                raise ValueError(f"group {gid} has no correct process")
            if require_majority and correct * 2 <= len(members):
                raise ValueError(
                    f"group {gid} loses its majority "
                    f"({correct}/{len(members)} correct)"
                )

    def apply(self, sim: Simulator, network) -> None:
        """Schedule every crash on the simulator."""
        for pid, when in sorted(self.crashes.items()):
            process = network.process(pid)
            sim.call_at(when, process.crash, label=f"crash:{pid}")

    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "CrashSchedule":
        """The failure-free schedule."""
        return cls({})

    @classmethod
    def random_minority(
        cls,
        topology: Topology,
        rng: random.Random,
        window: float = 100.0,
        crash_probability: float = 0.5,
    ) -> "CrashSchedule":
        """Crash a random strict minority of each group within ``window``.

        Useful for property-based tests: the schedule always satisfies
        :meth:`validate`, so liveness is preserved while exercising the
        failure paths.
        """
        crashes: Dict[int, float] = {}
        for gid in topology.group_ids:
            members = topology.members(gid)
            max_faulty = (len(members) - 1) // 2
            candidates = [p for p in members if rng.random() < crash_probability]
            rng.shuffle(candidates)
            for pid in candidates[:max_faulty]:
                crashes[pid] = rng.uniform(0.0, window)
        return cls(crashes)
