"""Crash schedules and simulated failure detectors."""

from repro.failure.detectors import (
    EventuallyPerfectDetector, FailureDetector, PerfectDetector,
)
from repro.failure.heartbeat import HeartbeatFailureDetector
from repro.failure.schedule import CrashSchedule

__all__ = [
    "EventuallyPerfectDetector", "FailureDetector", "PerfectDetector",
    "CrashSchedule", "HeartbeatFailureDetector",
]
