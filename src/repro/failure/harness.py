"""Determinism harness: message-driven vs elided heartbeat modes.

The elided heartbeat mode (:mod:`repro.failure.heartbeat`) claims to be
a pure optimisation: zero traffic and zero kernel events, yet the same
observable failure-detector behaviour as real heartbeat messages.  This
module turns that claim into a checked invariant.  Given a scenario
factory, it runs the scenario once per mode, records

* every **suspicion transition** — the (time, observer, peer, suspected)
  stream sampled by a probe over all same-group ordered pairs,
* the per-process **delivery orders** of the protocol under test, and
* the **checker verdict** of the paper's property suite,

and asserts all three are bit-identical between the modes.  The probe
fires at times offset from the heartbeat grid (``probe_offset``) so no
probe ever ties with a heartbeat arrival — transition instants are
compared at probe resolution, which is exactly what protocols observe
(they query the detector, they do not watch its internals).

The benchmark suite runs this harness on the large-n scenarios before
trusting the elided mode's throughput numbers, and the unit tests run
it across a grid of crash scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.net.topology import Topology
from repro.sim.kernel import Simulator

#: One suspicion change: (virtual time, observer pid, peer pid, suspected).
Transition = Tuple[float, int, int, bool]


class SuspicionRecorder:
    """Probe a failure detector and record suspicion transitions.

    Samples every same-group ordered pair (cross-group pairs are never
    suspected by a group-scoped heartbeat detector, in either mode) at
    ``offset, offset + period, ...`` up to ``until``.  The initial state
    is all-False, matching a freshly constructed detector.
    """

    def __init__(
        self,
        sim: Simulator,
        detector,
        topology: Topology,
        until: float,
        period: float = 1.0,
        offset: float = 0.25,
    ) -> None:
        if period <= 0:
            raise ValueError("probe period must be positive")
        self.sim = sim
        self.detector = detector
        self.until = until
        self.period = period
        self.transitions: List[Transition] = []
        self._state: Dict[Tuple[int, int], bool] = {}
        self._pairs = [
            (p, q)
            for gid in topology.group_ids
            for p in topology.members(gid)
            for q in topology.members(gid)
            if p != q
        ]
        if sim.now + offset <= until:
            sim.schedule(offset, self._probe, label="harness.probe")

    def _probe(self) -> None:
        now = self.sim.now
        suspects = self.detector.suspects
        state = self._state
        for pair in self._pairs:
            suspected = suspects(pair[0], pair[1])
            if suspected != state.get(pair, False):
                state[pair] = suspected
                self.transitions.append((now, pair[0], pair[1], suspected))
        if now + self.period <= self.until:
            self.sim.schedule(self.period, self._probe,
                              label="harness.probe")


@dataclass
class ModeTrace:
    """Everything the harness compares between detector modes."""

    mode: str
    suspicion_transitions: List[Transition] = field(default_factory=list)
    delivery_orders: Dict[int, List[str]] = field(default_factory=dict)
    checker_verdict: str = "ok"
    kernel_events: int = 0
    fd_messages: int = 0


def run_mode(
    make_system: Callable[[str], object],
    mode: str,
    run_until: float,
    probe_period: float = 1.0,
    probe_offset: float = 0.25,
) -> ModeTrace:
    """Build the scenario in ``mode``, run it, capture the trace.

    ``make_system(mode)`` must return a fully scheduled
    :class:`~repro.runtime.builder.System` (workload already cast) whose
    detector is a heartbeat detector in the given mode.
    """
    from repro.checkers.properties import check_all

    system = make_system(mode)
    recorder = SuspicionRecorder(
        system.sim, system.detector, system.topology,
        until=run_until, period=probe_period, offset=probe_offset,
    )
    system.run(until=run_until)
    try:
        check_all(system.log, system.topology, system.crashes)
        verdict = "ok"
    except AssertionError as exc:
        verdict = f"FAIL: {exc}"
    # Message ids come from a process-global counter, so two otherwise
    # identical runs label the same logical message differently.
    # Renumber by cast order (cast instants are part of the plan, hence
    # identical across modes) so delivery orders compare by position.
    rename = {mid: f"c{i}"
              for i, mid in enumerate(system.log.cast_messages())}
    return ModeTrace(
        mode=mode,
        suspicion_transitions=recorder.transitions,
        delivery_orders={pid: [rename[mid] for mid in
                               system.log.sequence(pid)]
                         for pid in system.log.processes()},
        checker_verdict=verdict,
        kernel_events=system.sim.events_executed,
        fd_messages=system.network.stats.by_kind.get("fd.hb", 0),
    )


def compare_modes(
    make_system: Callable[[str], object],
    run_until: float,
    probe_period: float = 1.0,
    probe_offset: float = 0.25,
) -> Dict[str, ModeTrace]:
    """Run both modes and assert their observable behaviour is identical.

    Raises :class:`AssertionError` naming the first divergence; returns
    the two traces (keyed by mode) on success so callers can additionally
    inspect the event/message savings.
    """
    traces = {
        mode: run_mode(make_system, mode, run_until,
                       probe_period=probe_period, probe_offset=probe_offset)
        for mode in ("messages", "elided")
    }
    a, b = traces["messages"], traces["elided"]
    if a.suspicion_transitions != b.suspicion_transitions:
        for x, y in zip(a.suspicion_transitions, b.suspicion_transitions):
            if x != y:
                raise AssertionError(
                    f"suspicion transitions diverged: messages={x} "
                    f"vs elided={y}"
                )
        # One list is a proper prefix of the other: report the first
        # transition only the longer run observed.
        shorter = min(len(a.suspicion_transitions),
                      len(b.suspicion_transitions))
        longer = max(a.suspicion_transitions, b.suspicion_transitions,
                     key=len)
        raise AssertionError(
            f"suspicion transition counts diverged: "
            f"messages has {len(a.suspicion_transitions)}, "
            f"elided has {len(b.suspicion_transitions)}; first extra: "
            f"{longer[shorter]}"
        )
    if a.delivery_orders != b.delivery_orders:
        pids = sorted(set(a.delivery_orders) | set(b.delivery_orders))
        for pid in pids:
            if a.delivery_orders.get(pid) != b.delivery_orders.get(pid):
                raise AssertionError(
                    f"delivery order diverged at process {pid}: "
                    f"messages={a.delivery_orders.get(pid)} vs "
                    f"elided={b.delivery_orders.get(pid)}"
                )
    if a.checker_verdict != b.checker_verdict:
        raise AssertionError(
            f"checker verdicts diverged: messages={a.checker_verdict!r} "
            f"vs elided={b.checker_verdict!r}"
        )
    if b.fd_messages != 0:
        raise AssertionError(
            f"elided mode sent {b.fd_messages} heartbeat copies"
        )
    return traces
