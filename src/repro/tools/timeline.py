"""Debugging tools: render a message trace as a readable timeline.

Protocol debugging in a discrete-event simulator lives or dies on being
able to *see* a run.  :func:`render_timeline` turns a
:class:`MessageTrace` (build the system with ``trace=True``) into a
per-process lane diagram:

::

    t=0.000    p0 >> p3   amc.rmc.data         (inter)
    t=1.000    p3 <<       amc.rmc.data from p0
    ...

and :func:`render_hop_diagram` compresses a single message's causal
story — who forwarded what to whom, at which Lamport timestamps — which
is exactly the view used to debug latency-degree measurements.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.trace import MessageTrace, TraceEvent


def render_timeline(
    trace: MessageTrace,
    start: float = 0.0,
    end: Optional[float] = None,
    kinds_prefix: Optional[str] = None,
    limit: int = 200,
) -> str:
    """A chronological send/deliver listing.

    Args:
        trace: The (enabled) message trace of a run.
        start: Hide events before this virtual time.
        end: Hide events after this virtual time.
        kinds_prefix: Keep only kinds starting with this prefix
            (e.g. ``"amc.ts"``).
        limit: Hard cap on rendered lines (traces get large).
    """
    if not trace.enabled:
        raise ValueError("timeline rendering needs a system built with "
                         "trace=True")
    lines: List[str] = []
    shown = 0
    for event in trace.events:
        if event.time < start or (end is not None and event.time > end):
            continue
        if kinds_prefix and not event.msg.kind.startswith(kinds_prefix):
            continue
        if shown >= limit:
            lines.append(f"... ({len(trace.events)} events total, "
                         f"{limit} shown)")
            break
        lines.append(_format_event(event))
        shown += 1
    return "\n".join(lines) if lines else "(no events in range)"


def _format_event(event: TraceEvent) -> str:
    msg = event.msg
    scope = "inter" if msg.inter_group else "intra"
    if event.event == "send":
        return (f"t={event.time:10.3f}  p{msg.src} >> p{msg.dst}  "
                f"{msg.kind:24s} ts={msg.send_lamport} ({scope})")
    return (f"t={event.time:10.3f}  p{msg.dst} << p{msg.src}  "
            f"{msg.kind:24s} ts={msg.send_lamport} ({scope})")


def render_hop_diagram(trace: MessageTrace, needle: str,
                       limit: int = 100) -> str:
    """The causal story of one application message.

    Filters the trace to events whose payload mentions ``needle`` (a
    message id appearing in payload reprs) and prints them with Lamport
    timestamps, making each inter-group hop visible as a +1 step.
    """
    if not trace.enabled:
        raise ValueError("hop diagrams need a system built with trace=True")
    lines: List[str] = []
    for event in trace.events:
        if needle not in repr(event.msg.payload):
            continue
        if len(lines) >= limit:
            lines.append(f"... (more than {limit} matching events)")
            break
        lines.append(_format_event(event))
    if not lines:
        return f"(no events mention {needle!r})"
    return "\n".join(lines)


def lane_summary(trace: MessageTrace) -> str:
    """Per-process traffic summary: sends, receives, inter-group share."""
    if not trace.enabled:
        raise ValueError("lane summaries need a system built with "
                         "trace=True")
    sends: dict = {}
    recvs: dict = {}
    inter: dict = {}
    for event in trace.events:
        if event.event == "send":
            sends[event.msg.src] = sends.get(event.msg.src, 0) + 1
            if event.msg.inter_group:
                inter[event.msg.src] = inter.get(event.msg.src, 0) + 1
        else:
            recvs[event.msg.dst] = recvs.get(event.msg.dst, 0) + 1
    pids = sorted(set(sends) | set(recvs))
    lines = ["pid   sent  recv  inter-sent"]
    for pid in pids:
        lines.append(f"p{pid:<4d} {sends.get(pid, 0):5d} "
                     f"{recvs.get(pid, 0):5d} {inter.get(pid, 0):6d}")
    return "\n".join(lines)
