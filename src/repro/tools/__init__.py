"""Debugging and inspection tools (timelines, hop diagrams)."""

from repro.tools.timeline import (
    lane_summary,
    render_hop_diagram,
    render_timeline,
)

__all__ = ["lane_summary", "render_hop_diagram", "render_timeline"]
