"""repro — Optimal atomic broadcast and multicast for wide area networks.

A from-scratch reproduction of:

    Nicolas Schiper and Fernando Pedone,
    "Optimal Atomic Broadcast and Multicast Algorithms for Wide Area
    Networks", PODC 2007 (TR 2007/004, University of Lugano).

The package provides:

* ``repro.core`` — the paper's Algorithm A1 (genuine atomic multicast,
  latency degree 2, optimal) and Algorithm A2 (atomic broadcast, latency
  degree 1, quiescent);
* ``repro.baselines`` — the protocols of the paper's Figure 1
  comparison, implemented from their original descriptions;
* ``repro.sim`` / ``repro.net`` / ``repro.consensus`` /
  ``repro.rmcast`` / ``repro.failure`` — the deterministic wide-area
  substrate everything runs on;
* ``repro.clocks`` — the modified Lamport clocks that measure latency
  degrees (paper Section 2.3);
* ``repro.checkers`` — executable versions of the paper's correctness
  properties (integrity, validity, agreement, prefix order,
  genuineness, quiescence);
* ``repro.runtime`` / ``repro.experiments`` — one-call experiment
  construction and the harnesses that regenerate every table, figure
  and theorem run of the paper.

Quickstart::

    from repro.runtime.builder import build_system

    system = build_system(protocol="a1", group_sizes=[3, 3, 3], seed=1)
    msg = system.cast(sender=0, dest_groups=(0, 1))
    system.run_quiescent()
    print(system.meter.latency_degree(msg.mid))   # -> 2 (optimal)
"""

__version__ = "1.0.0"

from repro.core.interfaces import AppMessage

__all__ = ["AppMessage", "__version__"]
