"""Quiescence-prediction strategies for Algorithm A2.

The paper's A2 stops executing rounds as soon as one round delivers
nothing (lines 22-23) and notes the consequence: a message broadcast
after the stop pays latency degree 2.  Section 5.3 closes with *"In
case the broadcast frequency is too low or not constant, to prevent
processes from stopping prematurely, more elaborate prediction
strategies based on application behavior could be used."*

This module implements that extension point.  A predictor decides, at
the end of each round, whether the process should commit to running the
next round (i.e. push ``Barrier`` forward) even though the finished
round may have been empty.  All strategies only *delay* quiescence by a
bounded amount, so Proposition A.9 (quiescence under finite workloads)
is preserved.

Strategies:

* :class:`PaperPredictor` — the paper's rule: continue iff the finished
  round delivered something.
* :class:`LingerPredictor` — tolerate up to ``linger_rounds``
  consecutive empty rounds before stopping.  A static hedge against
  bursty traffic.
* :class:`RateAdaptivePredictor` — estimate the inter-arrival gap of
  recent traffic (exponentially weighted) and keep rounds running while
  the next message is "due" within a configurable number of estimated
  gaps.  Adapts the hedge to the observed workload.
"""

from __future__ import annotations

from typing import Optional


class QuiescencePredictor:
    """Decides whether to run another round after the current one."""

    def observe_cast(self, now: float) -> None:
        """Called when the local process R-Delivers fresh traffic."""

    def should_continue(self, delivered: bool, now: float) -> bool:
        """Commit to the next round?  Called once per finished round.

        Args:
            delivered: Whether the finished round delivered messages.
            now: Virtual time at the end of the round.
        """
        raise NotImplementedError


class PaperPredictor(QuiescencePredictor):
    """The paper's lines 22-23: continue only after a useful round."""

    def should_continue(self, delivered: bool, now: float) -> bool:
        return delivered


class LingerPredictor(QuiescencePredictor):
    """Run up to ``linger_rounds`` empty rounds before going quiet."""

    def __init__(self, linger_rounds: int = 2) -> None:
        if linger_rounds < 0:
            raise ValueError("linger_rounds must be non-negative")
        self.linger_rounds = linger_rounds
        self._empty_streak = 0

    def should_continue(self, delivered: bool, now: float) -> bool:
        if delivered:
            self._empty_streak = 0
            return True
        self._empty_streak += 1
        return self._empty_streak <= self.linger_rounds


class RateAdaptivePredictor(QuiescencePredictor):
    """Keep rounds warm while traffic looks likely to arrive soon.

    Maintains an exponentially weighted moving average of the gaps
    between locally observed casts.  After an empty round at time t,
    the process keeps running iff ``t - last_cast`` is still within
    ``patience`` estimated gaps — i.e. the next message is plausibly
    imminent.  With no history the predictor falls back to the paper's
    rule (stop on empty).
    """

    def __init__(self, patience: float = 3.0, alpha: float = 0.3,
                 max_gap: Optional[float] = None) -> None:
        """Create the predictor.

        Args:
            patience: How many estimated inter-arrival gaps to wait
                beyond the last observed cast before giving up.
            alpha: EWMA weight of the newest gap observation.
            max_gap: Optional hard cap on the estimated gap, bounding
                how long the predictor can keep an idle system busy.
        """
        if patience <= 0:
            raise ValueError("patience must be positive")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.patience = patience
        self.alpha = alpha
        self.max_gap = max_gap
        self._last_cast: Optional[float] = None
        self._ewma_gap: Optional[float] = None

    def observe_cast(self, now: float) -> None:
        if self._last_cast is not None:
            gap = max(now - self._last_cast, 1e-9)
            if self._ewma_gap is None:
                self._ewma_gap = gap
            else:
                self._ewma_gap = (self.alpha * gap
                                  + (1 - self.alpha) * self._ewma_gap)
            if self.max_gap is not None:
                self._ewma_gap = min(self._ewma_gap, self.max_gap)
        self._last_cast = now

    def should_continue(self, delivered: bool, now: float) -> bool:
        if delivered:
            return True
        if self._last_cast is None or self._ewma_gap is None:
            return False  # no history: fall back to the paper's rule
        return (now - self._last_cast) <= self.patience * self._ewma_gap
