"""Public API of the atomic multicast / broadcast layer.

An :class:`AppMessage` is what applications cast: an id, the casting
process, the destination *groups* (paper Section 2.2 addresses groups,
not processes), and an opaque hashable payload.

Protocols deliver through a single callback installed with
``set_delivery_handler``; the experiment runtime wires that callback to
the delivery log and the latency meter.

Hot-path note: protocol payloads and consensus values do not carry
encoded message bodies.  Every endpoint interns the message it casts in
the per-simulation :class:`~repro.net.message.MessageCatalog`
(re-exported here) and from then on only the compact ``mid`` travels;
receivers resolve it with ``catalog.get(mid)``.  ``to_wire`` /
``from_wire`` remain as the explicit encoding for anything that leaves
the simulation (traces, persisted results).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from repro.net.message import MessageCatalog

__all__ = [
    "AppMessage", "AtomicMulticast", "AtomicBroadcast", "DeliveryHandler",
    "MessageCatalog",
    "STAGE_S0", "STAGE_S1", "STAGE_S2", "STAGE_S3",
]

_APP_IDS = itertools.count()


@dataclass(frozen=True, order=True)
class AppMessage:
    """One application-level message.

    Attributes:
        mid: Unique message identifier; also the total-order tiebreaker
            the protocols use, so it must be globally unique.
        sender: Pid of the casting process.
        dest_groups: Sorted tuple of destination group ids.
        payload: Opaque hashable application data.
    """

    mid: str
    sender: int
    dest_groups: Tuple[int, ...]
    payload: Any = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "dest_groups",
                           tuple(sorted(set(self.dest_groups))))

    def to_wire(self) -> tuple:
        """Encode as plain data for message payloads/consensus values."""
        return (self.mid, self.sender, self.dest_groups, self.payload)

    @classmethod
    def from_wire(cls, wire: tuple) -> "AppMessage":
        """Decode :meth:`to_wire` output."""
        mid, sender, dest_groups, payload = wire
        return cls(mid=mid, sender=sender,
                   dest_groups=tuple(dest_groups), payload=payload)

    @classmethod
    def fresh(cls, sender: int, dest_groups, payload: Any = None,
              mid: Optional[str] = None) -> "AppMessage":
        """Create a message with an auto-generated unique id."""
        if mid is None:
            mid = f"m{next(_APP_IDS):06d}"
        return cls(mid=mid, sender=sender,
                   dest_groups=tuple(dest_groups), payload=payload)


# Delivery callback: the delivered AppMessage.
DeliveryHandler = Callable[[AppMessage], None]


class AtomicMulticast:
    """Interface of genuine atomic multicast endpoints (Algorithm A1)."""

    def a_mcast(self, msg: AppMessage) -> None:
        """Atomically multicast ``msg`` to ``msg.dest_groups``."""
        raise NotImplementedError

    def set_delivery_handler(self, handler: DeliveryHandler) -> None:
        """Install the (single) A-Deliver callback."""
        raise NotImplementedError


class AtomicBroadcast:
    """Interface of atomic broadcast endpoints (Algorithm A2)."""

    def a_bcast(self, msg: AppMessage) -> None:
        """Atomically broadcast ``msg`` to every group."""
        raise NotImplementedError

    def set_delivery_handler(self, handler: DeliveryHandler) -> None:
        """Install the (single) A-Deliver callback."""
        raise NotImplementedError


# Message stages of Algorithm A1 (paper Section 4.1).
STAGE_S0 = 0  # timestamp being defined by each destination group
STAGE_S1 = 1  # group proposals being exchanged
STAGE_S2 = 2  # group clock catching up to the final timestamp
STAGE_S3 = 3  # final timestamp known; awaiting delivery order
