"""Algorithm A1 — genuine atomic multicast with optimal latency degree 2.

Faithful implementation of the paper's Algorithm A1 (Section 4).  Every
multicast message walks the stage machine s0..s3:

* **s0** — each destination group runs (intra-group) consensus to agree
  on its timestamp proposal for the message;
* **s1** — destination groups exchange proposals; the final timestamp is
  the maximum;
* **s2** — a group whose proposal was below the maximum runs another
  consensus to push its clock past the final timestamp;
* **s3** — the message is A-Delivered once its (timestamp, id) pair is
  minimal among all pending messages.

The two optimisations over Fritzke et al. [5] (paper Section 4.1):

1. messages addressed to a *single* group jump s0 → s3 (lines 28-29);
2. a group whose proposal equals the maximum skips s2 (line 35-36).

Set ``enable_stage_skipping=False`` to disable both — the ablation
benchmark uses this to measure what the optimisation saves.

Genuineness: only processes in ``m.dest_groups`` (plus the caster, which
sends the initial reliable multicast) ever handle messages concerning m.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.consensus.paxos import GroupConsensus
from repro.consensus.sequence import ConsensusSequence
from repro.core.interfaces import (
    STAGE_S0,
    STAGE_S1,
    STAGE_S2,
    STAGE_S3,
    AppMessage,
    AtomicMulticast,
    DeliveryHandler,
)
from repro.failure.detectors import FailureDetector
from repro.net.message import Message
from repro.net.topology import Topology
from repro.rmcast.reliable import ReliableMulticast
from repro.sim.process import Process


@dataclass
class _Pending:
    """One entry of the PENDING set (paper's message fields)."""

    msg: AppMessage
    ts: int
    stage: int


class AtomicMulticastA1(AtomicMulticast):
    """One process's endpoint of Algorithm A1."""

    #: Reliable multicast flavour; Fritzke et al. [5] swaps in the
    #: uniform variant (paper Section 4.1, first difference from [5]).
    RMCAST_CLS = ReliableMulticast

    def __init__(
        self,
        process: Process,
        topology: Topology,
        detector: FailureDetector,
        retry_timeout: float = 50.0,
        relay_after: float = 20.0,
        enable_stage_skipping: bool = True,
        namespace: str = "amc",
    ) -> None:
        self.process = process
        self.topology = topology
        self.ns = namespace
        self.enable_stage_skipping = enable_stage_skipping
        self.my_gid = topology.group_of(process.pid)

        # Paper line 2: K=1, propK=1, PENDING and ADELIVERED empty.
        self.prop_k = 1
        self.pending: Dict[str, _Pending] = {}
        self.adelivered: Set[str] = set()
        # Timestamp proposals received via (TS, m) messages, buffered by
        # message id and proposing group (may arrive before stage s1).
        self.ts_proposals: Dict[str, Dict[int, int]] = {}
        self._handler: Optional[DeliveryHandler] = None

        self.rmcast = self.RMCAST_CLS(
            process, detector, relay_after=relay_after,
            namespace=f"{self.ns}.rmc",
        )
        self.rmcast.set_delivery_handler(self._on_rdeliver)
        self.consensus = GroupConsensus(
            process, topology.members(self.my_gid), detector,
            retry_timeout=retry_timeout, namespace=f"{self.ns}.cons",
        )
        self.sequence = ConsensusSequence(
            self.consensus, self._on_decided, first_instance=1
        )
        process.register_handler(f"{self.ns}.ts", self._on_ts)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """The group-clock / next-consensus-instance value K."""
        return self.sequence.current

    def set_delivery_handler(self, handler: DeliveryHandler) -> None:
        if self._handler is not None:
            raise ValueError("delivery handler already set")
        self._handler = handler

    def a_mcast(self, msg: AppMessage) -> None:
        """Paper Task 1 (line 8-9): R-MCast m to the addressees."""
        if not msg.dest_groups:
            raise ValueError("message must address at least one group")
        dest_pids = self.topology.processes_of_groups(msg.dest_groups)
        self.rmcast.multicast(dest_pids, {"wire": msg.to_wire()}, mid=msg.mid)

    # ------------------------------------------------------------------
    # Stage s0 entry (paper lines 10-13)
    # ------------------------------------------------------------------
    def _on_rdeliver(self, payload: dict, mid: str, sender: int) -> None:
        self._ensure_pending(AppMessage.from_wire(payload["wire"]))

    def _ensure_pending(self, msg: AppMessage) -> None:
        """Add m to PENDING at stage s0 unless already known."""
        if msg.mid in self.pending or msg.mid in self.adelivered:
            return
        self.pending[msg.mid] = _Pending(msg=msg, ts=self.k, stage=STAGE_S0)
        self._maybe_propose()

    # ------------------------------------------------------------------
    # Consensus interaction (paper lines 14-17)
    # ------------------------------------------------------------------
    def _maybe_propose(self) -> None:
        if self.prop_k > self.k:
            return
        eligible = [
            entry for entry in self.pending.values()
            if entry.stage in (STAGE_S0, STAGE_S2)
        ]
        if not eligible:
            return
        msg_set = tuple(sorted(
            (entry.msg.to_wire(), entry.stage, entry.ts)
            for entry in eligible
        ))
        self.sequence.propose(self.k, msg_set)
        self.prop_k = self.k + 1

    def _on_decided(self, instance: int, msg_set: tuple) -> None:
        """Paper lines 18-32: process the decision of instance K."""
        decided_ts: List[int] = []
        to_check_ts: List[str] = []
        for wire, stage, ts in msg_set:
            msg = AppMessage.from_wire(wire)
            if msg.mid in self.adelivered:
                continue
            entry = self.pending.get(msg.mid)
            if entry is None:
                # Line 30: the decision introduces a message we had not
                # seen (our R-Deliver is late); adopt it.
                entry = _Pending(msg=msg, ts=ts, stage=stage)
                self.pending[msg.mid] = entry
            if len(msg.dest_groups) > 1:
                if stage == STAGE_S0:
                    # Lines 22-24: this instance is our group's proposal.
                    entry.ts = instance
                    entry.stage = STAGE_S1
                    self._send_ts(msg, instance)
                    to_check_ts.append(msg.mid)
                else:
                    # Lines 25-26: clock pushed past the final timestamp.
                    entry.ts = ts
                    entry.stage = STAGE_S3
            else:
                if self.enable_stage_skipping:
                    # Lines 28-29: single-group message — second
                    # consensus not needed, jump straight to s3.
                    entry.ts = instance
                    entry.stage = STAGE_S3
                else:
                    # Ablation: emulate the four-stage pipeline of [5]
                    # even for single-group messages.
                    if stage == STAGE_S0:
                        entry.ts = instance
                        entry.stage = STAGE_S2
                    else:
                        entry.ts = ts
                        entry.stage = STAGE_S3
            decided_ts.append(entry.ts)
        # Line 31: K <- max(max ts, K) + 1.
        new_k = max(max(decided_ts, default=0), self.k) + 1
        self.sequence.advance_to(new_k)
        # Line 32 + re-evaluate guards that depend on K.
        self._adelivery_test()
        for mid in to_check_ts:
            self._check_ts_complete(mid)
        self._maybe_propose()

    # ------------------------------------------------------------------
    # Stage s1: proposal exchange (paper lines 24, 33-40)
    # ------------------------------------------------------------------
    def _send_ts(self, msg: AppMessage, proposal: int) -> None:
        """Line 24: send our group's proposal to the other dest groups."""
        other_groups = [g for g in msg.dest_groups if g != self.my_gid]
        dest_pids = self.topology.processes_of_groups(other_groups)
        if dest_pids:
            self.process.send_many(
                dest_pids, f"{self.ns}.ts",
                {"wire": msg.to_wire(), "ts": proposal, "gid": self.my_gid},
            )

    def _on_ts(self, netmsg: Message) -> None:
        msg = AppMessage.from_wire(netmsg.payload["wire"])
        proposals = self.ts_proposals.setdefault(msg.mid, {})
        proposals[netmsg.payload["gid"]] = netmsg.payload["ts"]
        # Line 10: a TS message also introduces m (footnote 4 liveness).
        self._ensure_pending(msg)
        self._check_ts_complete(msg.mid)

    def _check_ts_complete(self, mid: str) -> None:
        """Lines 33-40: all proposals in — fix the final timestamp."""
        entry = self.pending.get(mid)
        if entry is None or entry.stage != STAGE_S1:
            return
        proposals = self.ts_proposals.get(mid, {})
        needed = [g for g in entry.msg.dest_groups if g != self.my_gid]
        if any(g not in proposals for g in needed):
            return
        max_remote = max(proposals[g] for g in needed)
        if entry.ts >= max_remote and self.enable_stage_skipping:
            # Lines 35-36: our proposal is the maximum — the group clock
            # already passed it (line 31), skip the second consensus.
            entry.stage = STAGE_S3
            self._adelivery_test()
        else:
            # Lines 39-40: adopt the final timestamp, catch the clock up.
            entry.ts = max(entry.ts, max_remote)
            entry.stage = STAGE_S2
            self._maybe_propose()

    # ------------------------------------------------------------------
    # Stage s3: delivery (paper lines 3-7)
    # ------------------------------------------------------------------
    def _adelivery_test(self) -> None:
        """Deliver while some s3 message is minimal among all pending."""
        while True:
            candidate = self._minimal_pending()
            if candidate is None or candidate.stage != STAGE_S3:
                return
            mid = candidate.msg.mid
            del self.pending[mid]
            self.adelivered.add(mid)
            self.ts_proposals.pop(mid, None)
            if self._handler is None:
                raise RuntimeError("no A-Deliver handler installed")
            self._handler(candidate.msg)

    def _minimal_pending(self) -> Optional[_Pending]:
        """The pending entry with the smallest (ts, mid), if any."""
        best: Optional[_Pending] = None
        for entry in self.pending.values():
            if best is None or (entry.ts, entry.msg.mid) < (best.ts, best.msg.mid):
                best = entry
        return best
