"""Algorithm A1 — genuine atomic multicast with optimal latency degree 2.

Faithful implementation of the paper's Algorithm A1 (Section 4).  Every
multicast message walks the stage machine s0..s3:

* **s0** — each destination group runs (intra-group) consensus to agree
  on its timestamp proposal for the message;
* **s1** — destination groups exchange proposals; the final timestamp is
  the maximum;
* **s2** — a group whose proposal was below the maximum runs another
  consensus to push its clock past the final timestamp;
* **s3** — the message is A-Delivered once its (timestamp, id) pair is
  minimal among all pending messages.

The two optimisations over Fritzke et al. [5] (paper Section 4.1):

1. messages addressed to a *single* group jump s0 → s3 (lines 28-29);
2. a group whose proposal equals the maximum skips s2 (line 35-36).

Set ``enable_stage_skipping=False`` to disable both — the ablation
benchmark uses this to measure what the optimisation saves.

Genuineness: only processes in ``m.dest_groups`` (plus the caster, which
sends the initial reliable multicast) ever handle messages concerning m.

Engine notes (protocol semantics unchanged):

* consensus values and (TS, m) payloads carry interned mids resolved
  against the per-simulation :class:`MessageCatalog`, not encoded
  message bodies;
* the A-Delivery test pops a lazy-deletion heap keyed on ``(ts, mid)``
  instead of scanning PENDING — O(log n) per delivery.  An entry's
  timestamp only ever grows (s0 seeds it with the group clock, later
  stages raise it to consensus instances or proposal maxima), so a
  stale heap snapshot is always an underestimate and validating it
  against the live entry is sound.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.consensus.paxos import GroupConsensus
from repro.consensus.sequence import ConsensusSequence
from repro.core.interfaces import (
    STAGE_S0,
    STAGE_S1,
    STAGE_S2,
    STAGE_S3,
    AppMessage,
    AtomicMulticast,
    DeliveryHandler,
    MessageCatalog,
)
from repro.failure.detectors import FailureDetector
from repro.net.message import Message
from repro.net.topology import Topology
from repro.rmcast.reliable import ReliableMulticast
from repro.sim.process import Process


class _Pending:
    """One entry of the PENDING set (paper's message fields)."""

    __slots__ = ("msg", "ts", "stage")

    def __init__(self, msg: AppMessage, ts: int, stage: int) -> None:
        self.msg = msg
        self.ts = ts
        self.stage = stage

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Pending({self.msg.mid} ts={self.ts} s{self.stage})"


class _PendingIndex(dict):
    """PENDING as mid -> :class:`_Pending`, indexed for the delivery test.

    Alongside the dict, a lazy-deletion heap of ``(ts, mid)`` snapshots
    tracks the minimal pending pair.  Inserting through ``__setitem__``
    indexes automatically; code that raises an entry's ``ts`` in place
    must call :meth:`touch` to push a fresh snapshot.  Snapshots are
    invalidated by comparing against the live entry, so deletions need
    no heap surgery.
    """

    __slots__ = ("heap",)

    def __init__(self) -> None:
        super().__init__()
        self.heap: List[Tuple[int, str]] = []

    def __setitem__(self, mid: str, entry: _Pending) -> None:
        super().__setitem__(mid, entry)
        heapq.heappush(self.heap, (entry.ts, mid))

    def touch(self, entry: _Pending) -> None:
        """Re-index ``entry`` after its timestamp changed."""
        heapq.heappush(self.heap, (entry.ts, entry.msg.mid))


class AtomicMulticastA1(AtomicMulticast):
    """One process's endpoint of Algorithm A1."""

    #: Reliable multicast flavour; Fritzke et al. [5] swaps in the
    #: uniform variant (paper Section 4.1, first difference from [5]).
    RMCAST_CLS = ReliableMulticast

    def __init__(
        self,
        process: Process,
        topology: Topology,
        detector: FailureDetector,
        retry_timeout: float = 50.0,
        relay_after: float = 20.0,
        enable_stage_skipping: bool = True,
        namespace: str = "amc",
    ) -> None:
        self.process = process
        self.topology = topology
        self.ns = namespace
        self.enable_stage_skipping = enable_stage_skipping
        self.my_gid = topology.group_of(process.pid)
        self.catalog = MessageCatalog.of(process.sim)

        # Paper line 2: K=1, propK=1, PENDING and ADELIVERED empty.
        self.prop_k = 1
        self.pending: Dict[str, _Pending] = _PendingIndex()
        # Entries at stage s0/s2 — the ones the next consensus proposal
        # must carry (paper line 15's guard).  Kept in sync with stage
        # transitions so proposals never rescan all of PENDING.
        self._eligible: Dict[str, _Pending] = {}
        self.adelivered: Set[str] = set()
        # Timestamp proposals received via (TS, m) messages, buffered by
        # message id and proposing group (may arrive before stage s1).
        self.ts_proposals: Dict[str, Dict[int, int]] = {}
        # dest_groups -> pids of the *other* destination groups (the
        # (TS, m) fan-out target); destination sets repeat heavily.
        self._ts_dests: Dict[Tuple[int, ...], List[int]] = {}
        self._handler: Optional[DeliveryHandler] = None

        self.rmcast = self.RMCAST_CLS(
            process, detector, relay_after=relay_after,
            namespace=f"{self.ns}.rmc",
        )
        self.rmcast.set_delivery_handler(self._on_rdeliver)
        self.consensus = GroupConsensus(
            process, topology.members(self.my_gid), detector,
            retry_timeout=retry_timeout, namespace=f"{self.ns}.cons",
        )
        self.sequence = ConsensusSequence(
            self.consensus, self._on_decided, first_instance=1
        )
        process.register_handler(f"{self.ns}.ts", self._on_ts)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """The group-clock / next-consensus-instance value K."""
        return self.sequence.current

    def set_delivery_handler(self, handler: DeliveryHandler) -> None:
        if self._handler is not None:
            raise ValueError("delivery handler already set")
        self._handler = handler

    def a_mcast(self, msg: AppMessage) -> None:
        """Paper Task 1 (line 8-9): R-MCast m to the addressees."""
        if not msg.dest_groups:
            raise ValueError("message must address at least one group")
        self.catalog.intern(msg)
        dest_pids = self.topology.processes_of_groups(msg.dest_groups)
        self.rmcast.multicast(dest_pids, {"mid": msg.mid}, mid=msg.mid)

    # ------------------------------------------------------------------
    # Stage s0 entry (paper lines 10-13)
    # ------------------------------------------------------------------
    def _on_rdeliver(self, payload: dict, mid: str, sender: int) -> None:
        self._ensure_pending(self.catalog.get(payload["mid"]))

    def _ensure_pending(self, msg: AppMessage) -> None:
        """Add m to PENDING at stage s0 unless already known."""
        if msg.mid in self.pending or msg.mid in self.adelivered:
            return
        entry = _Pending(msg=msg, ts=self.k, stage=STAGE_S0)
        self.pending[msg.mid] = entry
        self._eligible[msg.mid] = entry
        self._maybe_propose()

    # ------------------------------------------------------------------
    # Consensus interaction (paper lines 14-17)
    # ------------------------------------------------------------------
    def _maybe_propose(self) -> None:
        if self.prop_k > self.k or not self._eligible:
            return
        msg_set = sorted(
            (mid, entry.stage, entry.ts)
            for mid, entry in self._eligible.items()
            if entry.stage == STAGE_S0 or entry.stage == STAGE_S2
        )
        if not msg_set:
            return
        self.sequence.propose(self.k, tuple(msg_set))
        self.prop_k = self.k + 1

    def _on_decided(self, instance: int, msg_set: tuple) -> None:
        """Paper lines 18-32: process the decision of instance K."""
        decided_ts: List[int] = []
        to_check_ts: List[str] = []
        eligible = self._eligible
        for mid, stage, ts in msg_set:
            if mid in self.adelivered:
                continue
            entry = self.pending.get(mid)
            if entry is None:
                # Line 30: the decision introduces a message we had not
                # seen (our R-Deliver is late); adopt it.
                entry = _Pending(msg=self.catalog.get(mid), ts=ts,
                                 stage=stage)
                self.pending[mid] = entry
            msg = entry.msg
            if len(msg.dest_groups) > 1:
                if stage == STAGE_S0:
                    # Lines 22-24: this instance is our group's proposal.
                    entry.ts = instance
                    entry.stage = STAGE_S1
                    self.pending.touch(entry)
                    self._send_ts(msg, instance)
                    to_check_ts.append(mid)
                else:
                    # Lines 25-26: clock pushed past the final timestamp.
                    entry.ts = ts
                    entry.stage = STAGE_S3
                    self.pending.touch(entry)
            else:
                if self.enable_stage_skipping:
                    # Lines 28-29: single-group message — second
                    # consensus not needed, jump straight to s3.
                    entry.ts = instance
                    entry.stage = STAGE_S3
                else:
                    # Ablation: emulate the four-stage pipeline of [5]
                    # even for single-group messages.
                    if stage == STAGE_S0:
                        entry.ts = instance
                        entry.stage = STAGE_S2
                    else:
                        entry.ts = ts
                        entry.stage = STAGE_S3
                self.pending.touch(entry)
            # Keep the eligible index exact: only s2 survivors go back
            # into the next proposal.
            if entry.stage == STAGE_S2:
                eligible[mid] = entry
            else:
                eligible.pop(mid, None)
            decided_ts.append(entry.ts)
        # Line 31: K <- max(max ts, K) + 1.
        new_k = max(max(decided_ts, default=0), self.k) + 1
        self.sequence.advance_to(new_k)
        # Line 32 + re-evaluate guards that depend on K.
        self._adelivery_test()
        for mid in to_check_ts:
            self._check_ts_complete(mid)
        self._maybe_propose()

    # ------------------------------------------------------------------
    # Stage s1: proposal exchange (paper lines 24, 33-40)
    # ------------------------------------------------------------------
    def _send_ts(self, msg: AppMessage, proposal: int) -> None:
        """Line 24: send our group's proposal to the other dest groups."""
        dest_pids = self._ts_dests.get(msg.dest_groups)
        if dest_pids is None:
            other_groups = [g for g in msg.dest_groups if g != self.my_gid]
            dest_pids = self.topology.processes_of_groups(other_groups)
            self._ts_dests[msg.dest_groups] = dest_pids
        if dest_pids:
            self.process.send_many(
                dest_pids, f"{self.ns}.ts",
                {"mid": msg.mid, "ts": proposal, "gid": self.my_gid},
            )

    def _on_ts(self, netmsg: Message) -> None:
        mid = netmsg.payload["mid"]
        proposals = self.ts_proposals.setdefault(mid, {})
        proposals[netmsg.payload["gid"]] = netmsg.payload["ts"]
        # Line 10: a TS message also introduces m (footnote 4 liveness).
        self._ensure_pending(self.catalog.get(mid))
        self._check_ts_complete(mid)

    def _check_ts_complete(self, mid: str) -> None:
        """Lines 33-40: all proposals in — fix the final timestamp."""
        entry = self.pending.get(mid)
        if entry is None or entry.stage != STAGE_S1:
            return
        proposals = self.ts_proposals.get(mid)
        # Proposals are keyed by the sending group, which genuineness
        # restricts to destination groups other than ours (we are an
        # addressee whenever m is pending here), so completeness is a
        # count comparison — no per-call list materialisation.
        if proposals is None or len(proposals) < len(entry.msg.dest_groups) - 1:
            return
        max_remote = max(proposals.values())
        if entry.ts >= max_remote and self.enable_stage_skipping:
            # Lines 35-36: our proposal is the maximum — the group clock
            # already passed it (line 31), skip the second consensus.
            entry.stage = STAGE_S3
            self._adelivery_test()
        else:
            # Lines 39-40: adopt the final timestamp, catch the clock up.
            entry.ts = max(entry.ts, max_remote)
            entry.stage = STAGE_S2
            self.pending.touch(entry)
            self._eligible[mid] = entry
            self._maybe_propose()

    # ------------------------------------------------------------------
    # Stage s3: delivery (paper lines 3-7)
    # ------------------------------------------------------------------
    def _adelivery_test(self) -> None:
        """Deliver while some s3 message is minimal among all pending."""
        pending = self.pending
        heap = pending.heap
        while True:
            # Find the minimal live (ts, mid) snapshot, pruning stale
            # ones — this loop runs per delivery opportunity and call
            # overhead shows in profiles, hence no helper.
            candidate = None
            while heap:
                ts, head_mid = heap[0]
                candidate = pending.get(head_mid)
                if candidate is None or candidate.ts != ts:
                    heapq.heappop(heap)  # deleted or superseded snapshot
                    candidate = None
                    continue
                break
            if candidate is None or candidate.stage != STAGE_S3:
                return
            mid = candidate.msg.mid
            del self.pending[mid]
            self._eligible.pop(mid, None)  # defensive: s3 is never eligible
            self.adelivered.add(mid)
            self.ts_proposals.pop(mid, None)
            if self._handler is None:
                raise RuntimeError("no A-Deliver handler installed")
            self._handler(candidate.msg)
