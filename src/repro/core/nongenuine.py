"""Non-genuine atomic multicast: broadcast to everyone, filter locally.

The paper's introduction describes the trivial reduction of atomic
multicast to atomic broadcast: A-BCast every message to *all* groups and
let processes outside ``m.dest`` discard it.  Running on top of
Algorithm A2 this achieves latency degree 1 — beating every genuine
multicast (lower bound 2) — but drags every process in the system into
every message, which is exactly what genuineness forbids and what the
message-complexity columns of the tradeoff experiment quantify.
"""

from __future__ import annotations

from repro.core.abcast import AtomicBroadcastA2
from repro.core.interfaces import AppMessage, AtomicMulticast, DeliveryHandler


class NonGenuineMulticast(AtomicMulticast):
    """Multicast-over-broadcast endpoint (deliberately non-genuine)."""

    def __init__(self, abcast: AtomicBroadcastA2) -> None:
        """Wrap an Algorithm A2 endpoint.

        The wrapped endpoint must not have a delivery handler installed;
        this class installs the filtering handler itself.
        """
        self.abcast = abcast
        self.my_gid = abcast.my_gid
        #: Broadcast deliveries discarded because this process was not
        #: an addressee — the per-process waste genuineness eliminates.
        self.discarded_deliveries = 0
        self._handler = None
        abcast.set_delivery_handler(self._on_adeliver)

    def set_delivery_handler(self, handler: DeliveryHandler) -> None:
        if self._handler is not None:
            raise ValueError("delivery handler already set")
        self._handler = handler

    def a_mcast(self, msg: AppMessage) -> None:
        """Broadcast system-wide; the destination set rides along."""
        if not msg.dest_groups:
            raise ValueError("message must address at least one group")
        self.abcast.a_bcast(msg)

    def start_rounds(self) -> None:
        """Warm up the underlying broadcast rounds (see A2)."""
        self.abcast.start_rounds()

    def _on_adeliver(self, msg: AppMessage) -> None:
        """Deliver only if this process's group is addressed."""
        if self.my_gid not in msg.dest_groups:
            self.discarded_deliveries += 1
            return
        if self._handler is None:
            raise RuntimeError("no A-Deliver handler installed")
        self._handler(msg)
