"""The paper's contributions: Algorithms A1 and A2."""

from repro.core.abcast import AtomicBroadcastA2
from repro.core.amcast import AtomicMulticastA1
from repro.core.interfaces import (
    STAGE_S0, STAGE_S1, STAGE_S2, STAGE_S3,
    AppMessage, AtomicBroadcast, AtomicMulticast,
)
from repro.core.nongenuine import NonGenuineMulticast

__all__ = [
    "AtomicBroadcastA2", "AtomicMulticastA1", "AppMessage",
    "AtomicBroadcast", "AtomicMulticast", "NonGenuineMulticast",
    "STAGE_S0", "STAGE_S1", "STAGE_S2", "STAGE_S3",
]
