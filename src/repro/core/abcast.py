"""Algorithm A2 — fault-tolerant atomic broadcast with latency degree 1.

Faithful implementation of the paper's Algorithm A2 (Section 5).
Processes execute a sequence of *rounds*.  In round K:

1. inside each group, consensus instance K fixes the group's **message
   bundle** — the set of messages R-Delivered but not yet A-Delivered
   (possibly empty);
2. groups exchange bundles; once a process holds round-K bundles from
   every group it A-Delivers their union in a deterministic order.

Because rounds run *proactively* (a round may carry empty bundles), a
message that is broadcast while rounds are in flight rides the very next
bundle exchange and is delivered after a single inter-group message
delay — latency degree 1 (Theorem 5.1).

Quiescence (paper lines 21-23): the round counter K advances every
round, but ``Barrier`` — the last round a process intends to run — only
advances when a round actually delivered something.  After an idle
round, K > Barrier and the process stops proposing; with no traffic the
whole system goes silent (Proposition A.9).  A later broadcast restarts
the machinery: the caster's group starts round K again, and its bundle
pushes every other group's Barrier forward (line 10).  Such a "cold"
message pays latency degree 2 (Theorem 5.2) — the unavoidable price of
quiescence established by the paper's Section 3 lower bound.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.consensus.paxos import GroupConsensus
from repro.consensus.sequence import ConsensusSequence
from repro.core.interfaces import (
    AppMessage,
    AtomicBroadcast,
    DeliveryHandler,
    MessageCatalog,
)
from repro.core.prediction import PaperPredictor, QuiescencePredictor
from repro.failure.detectors import FailureDetector
from repro.net.message import Message
from repro.net.topology import Topology
from repro.rmcast.reliable import ReliableMulticast
from repro.sim.process import Process


class AtomicBroadcastA2(AtomicBroadcast):
    """One process's endpoint of Algorithm A2."""

    def __init__(
        self,
        process: Process,
        topology: Topology,
        detector: FailureDetector,
        retry_timeout: float = 50.0,
        relay_after: float = 20.0,
        propose_delay: float = 0.0,
        predictor: Optional[QuiescencePredictor] = None,
        namespace: str = "abc",
    ) -> None:
        """Attach an A2 endpoint to ``process``.

        Args:
            predictor: Quiescence-prediction strategy (paper §5.3's
                extension point).  Defaults to the paper's rule: stop
                after the first empty round.
            propose_delay: Optional bundling window.  When > 0 the
                process waits this long before proposing each round's
                bundle, re-reading its backlog at proposal time.  The
                asynchronous model allows any such scheduling, so this
                only *selects among admissible runs*: it realises the
                favourable run of Theorem 5.1, where a message broadcast
                while a round is starting slips into that round's bundle
                and is delivered with latency degree 1.  With the
                default of 0 the process proposes the instant a round
                opens, which in a simulator with zero-latency local
                steps makes every broadcast just miss the closing round.
        """
        self.process = process
        self.topology = topology
        self.ns = namespace
        self.propose_delay = propose_delay
        self.predictor = predictor or PaperPredictor()
        self._propose_scheduled = False
        self.my_gid = topology.group_of(process.pid)
        self.catalog = MessageCatalog.of(process.sim)

        # Paper line 2-3: K=1, propK=1, sets empty, Barrier=0.
        self.prop_k = 1
        self.rdelivered: Dict[str, AppMessage] = {}
        self.adelivered: Set[str] = set()
        self.barrier = 0
        # Bundles received per round and group: msgs[x][gid] = mid tuple.
        self.msgs: Dict[int, Dict[int, tuple]] = {}
        self._own_bundle: Dict[int, tuple] = {}
        self._rounds_executed = 0
        self._useful_rounds = 0
        self._wakeups = 0
        self._completing = False
        self._handler: Optional[DeliveryHandler] = None

        self.rmcast = ReliableMulticast(
            process, detector, relay_after=relay_after,
            namespace=f"{self.ns}.rmc",
        )
        self.rmcast.set_delivery_handler(self._on_rdeliver)
        self.consensus = GroupConsensus(
            process, topology.members(self.my_gid), detector,
            retry_timeout=retry_timeout, namespace=f"{self.ns}.cons",
        )
        self.sequence = ConsensusSequence(
            self.consensus, self._on_decided, first_instance=1
        )
        process.register_handler(f"{self.ns}.bundle", self._on_bundle)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """The current round number K."""
        return self.sequence.current

    @property
    def rounds_executed(self) -> int:
        """Rounds this process completed (diagnostics, rate sweep)."""
        return self._rounds_executed

    @property
    def useful_rounds(self) -> int:
        """Completed rounds that delivered at least one message."""
        return self._useful_rounds

    @property
    def wakeups(self) -> int:
        """Rounds this process *initiated* from the reactive state.

        A wakeup is a proposal made with a non-empty backlog while
        ``K > Barrier`` — i.e. the quiescence prediction had said "no
        more traffic" and a message proved it wrong.  Every wakeup is a
        Theorem 5.2 situation: that message cannot be delivered below
        latency degree 2.
        """
        return self._wakeups

    def set_delivery_handler(self, handler: DeliveryHandler) -> None:
        if self._handler is not None:
            raise ValueError("delivery handler already set")
        self._handler = handler

    def a_bcast(self, msg: AppMessage) -> None:
        """Paper Task 1 (lines 4-5): R-MCast m inside our own group."""
        self.catalog.intern(msg)
        my_members = self.topology.members(self.my_gid)
        self.rmcast.multicast(my_members, {"mid": msg.mid}, mid=msg.mid)

    def start_rounds(self) -> None:
        """Warm the system up: behave as if round 1 must run.

        The paper's algorithm starts with Barrier = 0, so a freshly
        booted system is quiescent until the first broadcast (which then
        pays degree 2).  Experiments that need a *warm* system
        (Theorem 5.1) call this to set Barrier = 1, which bootstraps the
        proactive round pipeline.
        """
        self.barrier = max(self.barrier, 1)
        self._maybe_propose()

    # ------------------------------------------------------------------
    # Tasks 2 and 3
    # ------------------------------------------------------------------
    def _on_rdeliver(self, payload: dict, mid: str, sender: int) -> None:
        """Paper lines 6-7."""
        msg = self.catalog.get(payload["mid"])
        if msg.mid not in self.adelivered:
            self.rdelivered.setdefault(msg.mid, msg)
        self.predictor.observe_cast(self.process.sim.now)
        self._maybe_propose()

    def _on_bundle(self, netmsg: Message) -> None:
        """Paper lines 8-10."""
        x = netmsg.payload["k"]
        gid = self.topology.group_of(netmsg.src)
        if x >= self.k:
            self.msgs.setdefault(x, {}).setdefault(gid, netmsg.payload["set"])
        if x > self.barrier:
            self.barrier = x
        self._maybe_propose()
        self._try_complete_round()

    # ------------------------------------------------------------------
    # Task 4: rounds
    # ------------------------------------------------------------------
    def _backlog(self) -> tuple:
        """RDELIVERED \\ ADELIVERED as a deterministic mid tuple.

        ``rdelivered`` only ever holds not-yet-A-Delivered messages
        (line 6 guards insertion, line 19 pops on delivery), so its key
        set *is* the backlog.
        """
        return tuple(sorted(self.rdelivered))

    def _maybe_propose(self) -> None:
        """Paper lines 11-13 (optionally behind the bundling window)."""
        if self.prop_k > self.k:
            return
        backlog = self._backlog()
        if not backlog and self.k > self.barrier:
            return  # quiescent: nothing pending and no round obligation
        if self.propose_delay > 0:
            if not self._propose_scheduled:
                self._propose_scheduled = True
                self.process.sim.schedule(
                    self.propose_delay, self._do_delayed_propose,
                    label=f"{self.ns}.propose",
                )
            return
        if backlog and self.k > self.barrier:
            self._wakeups += 1
        self.sequence.propose(self.k, backlog)
        self.prop_k = self.k + 1

    def _do_delayed_propose(self) -> None:
        """Fire the bundling window: re-check guards, then propose."""
        self._propose_scheduled = False
        if self.process.crashed or self.prop_k > self.k:
            return
        backlog = self._backlog()
        if not backlog and self.k > self.barrier:
            return
        if backlog and self.k > self.barrier:
            self._wakeups += 1
        self.sequence.propose(self.k, backlog)
        self.prop_k = self.k + 1

    def _on_decided(self, instance: int, bundle: tuple) -> None:
        """Paper lines 14-17: publish our group's bundle for the round."""
        others = [p for p in self.topology.processes
                  if self.topology.group_of(p) != self.my_gid]
        if others:
            self.process.send_many(
                others, f"{self.ns}.bundle",
                {"k": instance, "set": bundle},
            )
        self.msgs.setdefault(instance, {})[self.my_gid] = bundle
        self._own_bundle[instance] = bundle
        self._try_complete_round()

    def _try_complete_round(self) -> None:
        """Paper lines 16-23, re-evaluated on every relevant event."""
        if self._completing:
            return  # re-entered from advance_to(); the outer loop resumes
        self._completing = True
        try:
            self._complete_rounds()
        finally:
            self._completing = False

    def _complete_rounds(self) -> None:
        while True:
            round_k = self.k
            if round_k not in self._own_bundle:
                return  # our group has not decided this round yet
            bundles = self.msgs.get(round_k, {})
            if any(gid not in bundles for gid in self.topology.group_ids):
                return  # line 16: still waiting on some group's bundle
            # Line 18: union of all bundles (mids sort identically to
            # the old wire tuples, whose first element was the mid).
            mids = sorted({m for bundle in bundles.values() for m in bundle})
            to_deliver = [self.catalog.get(mid) for mid in mids
                          if mid not in self.adelivered]
            # Line 19: deterministic delivery order (sorted by id).
            for msg in to_deliver:
                self.adelivered.add(msg.mid)
                self.rdelivered.pop(msg.mid, None)
                if self._handler is None:
                    raise RuntimeError("no A-Deliver handler installed")
                self._handler(msg)
            # Lines 21-23: advance the round; keep going only if useful.
            self._rounds_executed += 1
            if to_deliver:
                self._useful_rounds += 1
            self.msgs.pop(round_k, None)
            self._own_bundle.pop(round_k, None)
            self.sequence.advance_to(round_k + 1)
            # Lines 22-23, generalised: the predictor decides whether to
            # commit to the next round (the paper's rule is the default
            # PaperPredictor: continue iff this round was useful).
            keep_going = self.predictor.should_continue(
                delivered=bool(to_deliver), now=self.process.sim.now)
            if keep_going and self.k > self.barrier:
                self.barrier = self.k
            self._maybe_propose()
