"""Multi-seed experiment execution with simple aggregation.

Single runs of a discrete-event simulation are deterministic but
arbitrary: a conclusion should hold across seeds.  :class:`Repeated`
runs the same experiment body under derived seeds and aggregates any
numeric metrics the body returns — mean, min, max and a crude spread —
which is all the repository's shape assertions need (no scipy required
at runtime, though it is available for heavier analyses).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

# An experiment body: seed -> {metric name: value}.
ExperimentBody = Callable[[int], Dict[str, float]]


@dataclass
class Aggregate:
    """Summary of one metric across repetitions."""

    name: str
    values: List[float]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    @property
    def stdev(self) -> float:
        """Sample standard deviation (0 for a single repetition)."""
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        var = sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        return math.sqrt(var)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        return self.stdev / math.sqrt(len(self.values))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{self.name}: {self.mean:.3f} "
                f"[{self.minimum:.3f}, {self.maximum:.3f}] "
                f"(n={self.n}, +/-{self.stderr:.3f})")


class Repeated:
    """Run an experiment body across seeds and aggregate its metrics."""

    def __init__(self, body: ExperimentBody, seeds: Sequence[int]) -> None:
        if not seeds:
            raise ValueError("at least one seed is required")
        self.body = body
        self.seeds = list(seeds)
        self._results: Dict[str, List[float]] = {}
        self._ran = False

    def run(self) -> "Repeated":
        """Execute every repetition (idempotent)."""
        if self._ran:
            return self
        for seed in self.seeds:
            metrics = self.body(seed)
            for name, value in metrics.items():
                self._results.setdefault(name, []).append(float(value))
        # Every repetition must report the same metric set.
        if any(len(v) != len(self.seeds) for v in self._results.values()):
            raise ValueError(
                "experiment body returned inconsistent metric sets "
                f"across seeds: {sorted(self._results)}"
            )
        self._ran = True
        return self

    def aggregate(self, name: str) -> Aggregate:
        """The aggregate of one metric (runs the experiment if needed)."""
        self.run()
        if name not in self._results:
            raise KeyError(
                f"unknown metric {name!r}; have {sorted(self._results)}"
            )
        return Aggregate(name=name, values=list(self._results[name]))

    def aggregates(self) -> Dict[str, Aggregate]:
        """All metrics, aggregated."""
        self.run()
        return {name: Aggregate(name=name, values=list(values))
                for name, values in sorted(self._results.items())}

    def assert_always(self, name: str, predicate: Callable[[float], bool],
                      description: str = "") -> None:
        """Assert ``predicate`` holds for the metric in *every* seed.

        The bread-and-butter of lower-bound style claims: "in no run
        did X fall below Y."
        """
        agg = self.aggregate(name)
        failures = [v for v in agg.values if not predicate(v)]
        if failures:
            raise AssertionError(
                f"metric {name!r} violated '{description}' in "
                f"{len(failures)}/{agg.n} seeds: examples {failures[:5]}"
            )
