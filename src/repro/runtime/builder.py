"""One-call construction of a complete simulated system.

:func:`build_system` assembles kernel, topology, network, failure
detector, crash schedule and one protocol endpoint per process, fully
wired to a :class:`~repro.clocks.latency.LatencyMeter` and a
:class:`~repro.runtime.results.DeliveryLog`.  Every experiment, test and
example in the repository goes through it.

Protocol registry
-----------------
========== =====================================================
name        protocol
========== =====================================================
a1          Algorithm A1 (genuine atomic multicast, this paper)
a1-noskip   A1 with stage skipping disabled (ablation)
a2          Algorithm A2 (atomic broadcast, this paper)
nongenuine  multicast over A2 broadcast (introduction's tradeoff)
skeen       decentralised Skeen (failure-free baseline, [2])
fritzke     Fritzke et al. [5] (four stages, uniform rmcast)
ring        Delporte-Gallet & Fauconnier [4] (group ring)
global      Rodrigues et al. [10] (consensus across groups)
sequencer   Vicente & Rodrigues [13] (sequencer-based broadcast)
optimistic  Sousa et al. [12] (optimistic total order, non-uniform)
detmerge    Aguilera & Strom [1] (deterministic merge)
========== =====================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.clocks.latency import LatencyMeter
from repro.core.interfaces import AppMessage, MessageCatalog
from repro.failure.detectors import (
    EventuallyPerfectDetector,
    FailureDetector,
    PerfectDetector,
)
from repro.failure.schedule import CrashSchedule
from repro.net.network import Network
from repro.net.topology import LatencyModel, Topology
from repro.net.trace import MessageTrace
from repro.runtime.results import DeliveryLog
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.rng import RngRegistry


class System:
    """A fully wired simulated deployment of one protocol."""

    def __init__(
        self,
        protocol_name: str,
        sim: Simulator,
        topology: Topology,
        network: Network,
        detector: FailureDetector,
        rng: RngRegistry,
        crashes: CrashSchedule,
    ) -> None:
        self.protocol_name = protocol_name
        self.sim = sim
        self.topology = topology
        self.network = network
        self.detector = detector
        self.rng = rng
        self.crashes = crashes
        self.meter = LatencyMeter()
        self.log = DeliveryLog()
        self.catalog = MessageCatalog.of(sim)
        self.endpoints: Dict[int, object] = {}
        self._delivery_taps: Dict[int, List[Callable]] = {}
        #: Shared :class:`~repro.runtime.profiler.PhaseProfiler`, set by
        #: ``build_system(..., profile=True)`` (None otherwise).
        self.profiler = None
        #: The mounted :class:`~repro.transport.reliable.ReliableTransport`
        #: when built with ``transport="reliable"`` (None otherwise).
        self.transport = None
        # Global (pid, msg) hooks: streaming checkers subscribe here.
        self._delivery_hooks: List[Callable] = []
        self._cast_hooks: List[Callable] = []

    # ------------------------------------------------------------------
    # Wiring helpers (used by build_system)
    # ------------------------------------------------------------------
    def install_endpoint(self, pid: int, endpoint: object) -> None:
        """Attach a protocol endpoint and wire its delivery callback."""
        self.endpoints[pid] = endpoint
        process = self.network.process(pid)

        def on_deliver(msg: AppMessage, pid=pid, process=process) -> None:
            self.log.record_delivery(pid, msg)
            self.meter.record_delivery(msg.mid, process, now=self.sim.now)
            for hook in self._delivery_hooks:
                hook(pid, msg)
            for tap in self._delivery_taps.get(pid, ()):
                tap(msg)

        endpoint.set_delivery_handler(on_deliver)

    def add_delivery_tap(self, pid: int, tap: Callable) -> None:
        """Subscribe an application layer (e.g. a replicated store) to
        ``pid``'s A-Deliver stream, after metering and logging."""
        self._delivery_taps.setdefault(pid, []).append(tap)

    def add_delivery_hook(self, hook: Callable) -> None:
        """Subscribe ``hook(pid, msg)`` to *every* A-Deliver event.

        Unlike :meth:`add_delivery_tap` (per-pid, message-only), hooks
        see the delivering process too — the shape incremental checkers
        need.
        """
        self._delivery_hooks.append(hook)

    def add_cast_hook(self, hook: Callable) -> None:
        """Subscribe ``hook(msg)`` to every cast, at the cast instant."""
        self._cast_hooks.append(hook)

    def install_streaming_checker(self):
        """Attach an incremental property checker to this system's run.

        Returns the :class:`~repro.checkers.properties.
        StreamingPropertyChecker`; order/integrity violations raise at
        the offending delivery, and the caller runs ``finalize()`` after
        the run for the completion properties (validity, agreement).
        """
        from repro.checkers.properties import StreamingPropertyChecker

        checker = StreamingPropertyChecker(self.topology, self.crashes)
        self.add_cast_hook(checker.on_cast)
        self.add_delivery_hook(checker.on_delivery)
        return checker

    # ------------------------------------------------------------------
    # Casting
    # ------------------------------------------------------------------
    def _check_broadcast_destinations(self, msg: AppMessage) -> None:
        """Broadcast protocols require the full destination set."""
        endpoint = self.endpoints[msg.sender]
        if hasattr(endpoint, "a_mcast"):
            return
        if set(msg.dest_groups) != set(self.topology.group_ids):
            raise ValueError(
                f"{self.protocol_name} is a broadcast protocol; "
                f"messages must address all groups"
            )

    def _do_cast(self, msg: AppMessage) -> None:
        """Record and hand ``msg`` to its sender's endpoint, now."""
        if self.profiler is not None:
            self.profiler.push("workload")
            try:
                self._do_cast_impl(msg)
            finally:
                self.profiler.pop()
            return
        self._do_cast_impl(msg)

    def _do_cast_impl(self, msg: AppMessage) -> None:
        endpoint = self.endpoints[msg.sender]
        process = self.network.process(msg.sender)
        self.catalog.intern(msg)
        self.log.record_cast(msg)
        self.meter.record_cast(msg.mid, process, dest_groups=msg.dest_groups,
                               now=self.sim.now)
        for hook in self._cast_hooks:
            hook(msg)
        if hasattr(endpoint, "a_mcast"):
            endpoint.a_mcast(msg)
        else:
            endpoint.a_bcast(msg)

    def cast(
        self,
        sender: int,
        dest_groups=None,
        payload=None,
        mid: Optional[str] = None,
    ) -> AppMessage:
        """A-XCast a message from ``sender`` and meter it.

        ``dest_groups`` defaults to all groups (broadcast).  Broadcast
        protocols require the full destination set.
        """
        if dest_groups is None:
            dest_groups = tuple(self.topology.group_ids)
        msg = AppMessage.fresh(sender=sender, dest_groups=dest_groups,
                               payload=payload, mid=mid)
        self._check_broadcast_destinations(msg)
        self._do_cast(msg)
        return msg

    def cast_at(self, time: float, sender: int, dest_groups=None,
                payload=None, mid: Optional[str] = None) -> AppMessage:
        """Schedule a cast at virtual ``time``; returns the message.

        The latency meter records the cast when the event fires, so the
        caster's Lamport clock is read at the true cast instant.
        Destination validation runs here, at scheduling time, so a
        partial-destination cast against a broadcast protocol fails
        loudly instead of silently reaching ``a_bcast`` mid-run.
        """
        msg = AppMessage.fresh(sender=sender,
                               dest_groups=tuple(dest_groups)
                               if dest_groups is not None
                               else tuple(self.topology.group_ids),
                               payload=payload, mid=mid)
        self._check_broadcast_destinations(msg)
        self.sim.call_at(time, lambda: self._do_cast(msg),
                         label=f"cast:{msg.mid}")
        return msg

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run the simulation (see :meth:`Simulator.run`)."""
        return self.sim.run(until=until, max_events=max_events)

    def run_quiescent(self, max_events: int = 10_000_000) -> float:
        """Run until the event queue drains (quiescence required)."""
        return self.sim.run_until_quiescent(max_events=max_events)

    def start_rounds(self) -> None:
        """Warm up proactive protocols (A2 and wrappers) on every node."""
        for endpoint in self.endpoints.values():
            if hasattr(endpoint, "start_rounds"):
                endpoint.start_rounds()

    # ------------------------------------------------------------------
    # Result shortcuts
    # ------------------------------------------------------------------
    @property
    def inter_group_messages(self) -> int:
        """Inter-group message count so far (Figure 1's second column)."""
        return self.network.stats.inter_group_messages

    @property
    def intra_group_messages(self) -> int:
        """Intra-group message count so far."""
        return self.network.stats.intra_group_messages

    def degrees(self) -> Dict[str, Optional[int]]:
        """Latency degree of every metered message."""
        return self.meter.degrees()


# ----------------------------------------------------------------------
# Protocol factories
# ----------------------------------------------------------------------
def _make_a1(system: System, process: Process, **kw) -> object:
    from repro.core.amcast import AtomicMulticastA1

    return AtomicMulticastA1(process, system.topology, system.detector, **kw)


def _make_a1_noskip(system: System, process: Process, **kw) -> object:
    from repro.core.amcast import AtomicMulticastA1

    return AtomicMulticastA1(process, system.topology, system.detector,
                             enable_stage_skipping=False, **kw)


def _pop_predictor(kw: dict):
    """Instantiate a per-process predictor from ``predictor_factory``.

    Predictors are stateful, so sharing one instance across endpoints
    would be wrong; callers pass a zero-argument factory instead.
    """
    factory = kw.pop("predictor_factory", None)
    return factory() if factory is not None else None


def _make_a2(system: System, process: Process, **kw) -> object:
    from repro.core.abcast import AtomicBroadcastA2

    predictor = _pop_predictor(kw)
    return AtomicBroadcastA2(process, system.topology, system.detector,
                             predictor=predictor, **kw)


def _make_nongenuine(system: System, process: Process, **kw) -> object:
    from repro.core.abcast import AtomicBroadcastA2
    from repro.core.nongenuine import NonGenuineMulticast

    predictor = _pop_predictor(kw)
    abcast = AtomicBroadcastA2(process, system.topology, system.detector,
                               predictor=predictor, **kw)
    return NonGenuineMulticast(abcast)


def _make_skeen(system: System, process: Process, **kw) -> object:
    from repro.baselines.skeen import SkeenMulticast

    return SkeenMulticast(process, system.topology, **kw)


def _make_fritzke(system: System, process: Process, **kw) -> object:
    from repro.baselines.fritzke import FritzkeMulticast

    return FritzkeMulticast(process, system.topology, system.detector, **kw)


def _make_ring(system: System, process: Process, **kw) -> object:
    from repro.baselines.ring import RingMulticast

    return RingMulticast(process, system.topology, system.detector, **kw)


def _make_global(system: System, process: Process, **kw) -> object:
    from repro.baselines.global_consensus import GlobalConsensusMulticast

    return GlobalConsensusMulticast(process, system.topology,
                                    system.detector, **kw)


def _make_sequencer(system: System, process: Process, **kw) -> object:
    from repro.baselines.sequencer import SequencerBroadcast

    return SequencerBroadcast(process, system.topology, system.detector, **kw)


def _make_optimistic(system: System, process: Process, **kw) -> object:
    from repro.baselines.optimistic import OptimisticBroadcast

    return OptimisticBroadcast(process, system.topology, **kw)


def _make_detmerge(system: System, process: Process, **kw) -> object:
    from repro.baselines.detmerge import DeterministicMergeBroadcast

    return DeterministicMergeBroadcast(process, system.topology, **kw)


PROTOCOLS: Dict[str, Callable] = {
    "a1": _make_a1,
    "a1-noskip": _make_a1_noskip,
    "a2": _make_a2,
    "nongenuine": _make_nongenuine,
    "skeen": _make_skeen,
    "fritzke": _make_fritzke,
    "ring": _make_ring,
    "global": _make_global,
    "sequencer": _make_sequencer,
    "optimistic": _make_optimistic,
    "detmerge": _make_detmerge,
}


#: Detector names accepted by :func:`build_system`.
DETECTORS = ("perfect", "eventually-perfect", "heartbeat",
             "heartbeat-elided")


def build_system(
    protocol: str = "a1",
    group_sizes: List[int] = (3, 3),
    latency: Optional[LatencyModel] = None,
    seed: int = 0,
    crashes: Optional[CrashSchedule] = None,
    detector: str = "perfect",
    detector_delay: float = 5.0,
    stabilise_at: float = 0.0,
    heartbeat_period: float = 10.0,
    heartbeat_timeout: float = 35.0,
    heartbeat_horizon: Optional[float] = None,
    transport: str = "none",
    trace: bool = False,
    profile: bool = False,
    kernel: str = "serial",
    jobs: int = 0,
    executor: str = "inline",
    _sim: Optional[Simulator] = None,
    **protocol_kwargs,
) -> System:
    """Assemble a ready-to-run :class:`System`.

    Args:
        protocol: A key of :data:`PROTOCOLS`.
        group_sizes: Processes per group, e.g. ``[3, 3, 3]``.
        latency: Link latency model; defaults to
            :meth:`LatencyModel.logical` (1 unit inter-group, ~0
            intra-group) which reads latency degrees directly off the
            virtual clock.
        seed: Root seed for every random stream.
        crashes: Crash schedule; validated against the topology.
        detector: ``"perfect"``, ``"eventually-perfect"``,
            ``"heartbeat"`` (real message-driven heartbeats, one
            coalesced timer per group) or ``"heartbeat-elided"`` (the
            analytic zero-traffic fast path — same observable
            behaviour, see :mod:`repro.failure.harness`).
        detector_delay: Crash-detection delay of the oracle detectors.
        stabilise_at: For the eventually-perfect detector, the virtual
            time after which it stops making mistakes.
        heartbeat_period: Gap between heartbeats (heartbeat detectors).
        heartbeat_timeout: Silence before suspicion (heartbeat
            detectors); must exceed the period.
        heartbeat_horizon: Virtual time after which heartbeating stops,
            so finite workloads reach quiescence (None = forever).
        transport: ``"none"`` (protocols ride the raw quasi-reliable
            links, the default) or ``"reliable"`` (mount the sequenced
            retransmitting transport of
            :mod:`repro.transport.reliable` beneath every protocol
            kind — required for the lossy adversary kinds to be
            masked rather than fatal).  Serial kernel only.
        trace: Enable the full message trace (genuineness checks).
        profile: Attach a :class:`~repro.runtime.profiler.PhaseProfiler`
            (shared by kernel, network and detector) — read the result
            from ``RunReport.phase_timings()``.
        kernel: ``"serial"`` (the default single event loop),
            ``"parallel"`` (per-group sub-kernels with latency-derived
            lookahead — see :mod:`repro.runtime.parallel`; raises
            :class:`~repro.runtime.parallel.ParallelKernelError` outside
            its envelope) or ``"auto"`` (parallel when eligible, serial
            otherwise).
        jobs: Parallel kernel worker count (0 = one per group).
        executor: Parallel worker dispatch — ``"inline"``,
            ``"threads"`` or ``"processes"``.
        _sim: Internal — the parallel kernel passes each sub-kernel's
            group-sequenced simulator here.
        **protocol_kwargs: Forwarded to the protocol constructor.
    """
    if protocol not in PROTOCOLS:
        raise ValueError(
            f"unknown protocol {protocol!r}; pick one of {sorted(PROTOCOLS)}"
        )
    if kernel not in ("serial", "parallel", "auto"):
        raise ValueError(
            f"unknown kernel {kernel!r}; pick 'serial', 'parallel' or 'auto'"
        )
    from repro.transport import TRANSPORTS

    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; pick one of {TRANSPORTS}"
        )
    if kernel != "serial" and _sim is None:
        from repro.runtime.parallel import (
            ParallelKernelError,
            build_parallel_system,
        )

        build_kwargs = dict(
            protocol=protocol, group_sizes=list(group_sizes),
            latency=latency, seed=seed, crashes=crashes,
            detector=detector, detector_delay=detector_delay,
            stabilise_at=stabilise_at, heartbeat_period=heartbeat_period,
            heartbeat_timeout=heartbeat_timeout,
            heartbeat_horizon=heartbeat_horizon, transport=transport,
            trace=trace, profile=profile, **protocol_kwargs,
        )
        if kernel == "parallel":
            return build_parallel_system(build_kwargs, jobs=jobs,
                                         executor=executor)
        try:
            return build_parallel_system(build_kwargs, jobs=jobs,
                                         executor=executor)
        except ParallelKernelError:
            pass  # auto: fall back to the serial kernel
    sim = _sim if _sim is not None else Simulator()
    rng = RngRegistry(seed)
    topology = Topology(list(group_sizes))
    latency = latency or LatencyModel.logical()
    network = Network(sim, topology, latency, rng.stream("net"),
                      trace=MessageTrace(enabled=trace))
    if profile:
        from repro.runtime.profiler import PhaseProfiler

        profiler = PhaseProfiler()
        sim.profiler = profiler
        network.profiler = profiler
    for pid in topology.processes:
        network.register(Process(pid, topology.group_of(pid), sim))

    crashes = crashes or CrashSchedule.none()
    crashes.validate(topology)
    crashes.apply(sim, network)

    if detector == "perfect":
        fd: FailureDetector = PerfectDetector(sim, network,
                                              delay=detector_delay)
    elif detector == "eventually-perfect":
        fd = EventuallyPerfectDetector(
            sim, network, rng.stream("fd"), stabilise_at=stabilise_at,
            delay=detector_delay,
        )
    elif detector in ("heartbeat", "heartbeat-elided"):
        from repro.failure.heartbeat import HeartbeatFailureDetector

        fd = HeartbeatFailureDetector(
            sim, network, topology,
            period=heartbeat_period, timeout=heartbeat_timeout,
            horizon=heartbeat_horizon,
            mode="elided" if detector == "heartbeat-elided" else "messages",
        )
    else:
        raise ValueError(
            f"unknown detector {detector!r}; pick one of {DETECTORS}"
        )

    system = System(protocol, sim, topology, network, fd, rng, crashes)
    if profile:
        system.profiler = sim.profiler
    if transport == "reliable":
        from repro.transport import ReliableTransport

        # Mounted after crashes.apply (crash events are scheduled, so
        # ground-truth give-up sees them) and before the endpoints so
        # every protocol send is intercepted from the first cast.
        tsp = ReliableTransport(sim, network, rng.stream("transport"))
        tsp.mount()
        system.transport = tsp
    factory = PROTOCOLS[protocol]
    for pid in topology.processes:
        endpoint = factory(system, network.process(pid), **protocol_kwargs)
        system.install_endpoint(pid, endpoint)
    return system
