"""Conservative parallel execution of a simulated system, by group.

The serial kernel executes one global ``(time, seq)``-ordered event
queue.  This module partitions a run into **per-group sub-kernels**: one
full system replica per group, each with its own
:class:`~repro.sim.partition.GroupSequencedQueue` and virtual clock,
synchronized at epoch barriers of width

    ``lookahead = LatencyModel.min_inter_group()``

Cross-group sends are diverted into per-sub-kernel outboxes
(:meth:`~repro.net.network.Network.divert_cross_group`) and flushed at
each barrier; a send at time ``t`` inside window ``[eL, (e+1)L)``
arrives no earlier than ``t + L ≥ (e+1)L``, so every window can execute
in parallel without ever delivering into the past.

**Bit-identical to serial.**  The sub-kernel sequence keys are nested
pedigree tuples ``(scheduling time, parent key, call index)`` that
embed the serial kernel's tie-break order exactly (the argument lives
in :mod:`repro.sim.partition`), so delivery orders, checker verdicts
and per-run metrics match the serial kernel bit for bit —
:func:`compare_kernels` is the executable form of that claim.

**The envelope.**  Exact serial-order recovery needs the scenario to be
reproducible from per-group information alone:

* at least two groups, with a strictly positive inter-group latency
  lower bound (the lookahead);
* all latency distributions :class:`~repro.net.topology.Fixed` — jitter
  draws come from one shared RNG stream whose consumption order is a
  global side channel;
* a failure detector whose answers are functions of virtual time and
  the crash schedule (``perfect``, ``heartbeat``, ``heartbeat-elided``;
  the eventually-perfect oracle draws per-query randomness);
* no adversary delay hooks or delivery filters;
* workload/transaction plans sorted by time and group-major at equal
  times (generated workloads are; hand-built ones are validated).

Scenarios outside the envelope raise :class:`ParallelKernelError`
(``kernel="parallel"``) or silently fall back to the serial kernel
(``kernel="auto"``).

**Replication, not splitting.**  Every sub-kernel builds the *complete*
system for the scenario — same seed, same topology, same crash schedule
(crash events execute everywhere, so time-analytic detectors agree) —
but only schedules and executes its own group's workload, warm-ups and
deliveries.  A designated never-run *host* system is built identically;
after the run the per-replica artifacts (delivery log, latency meter,
network stats, traces, store journals) are merged onto the host, so
``RunReport``, metric extractors and checkers operate unchanged.
Observable results are independent of worker count and executor.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.topology import LatencyModel
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.partition import (
    SETUP_BAND_ROUNDS,
    SETUP_BAND_WORKLOAD,
    GroupSequencedQueue,
    Outbox,
    OutboundCopy,
    epoch_of,
    window_end,
)


class ParallelKernelError(ValueError):
    """The scenario lies outside the parallel kernel's envelope."""


#: Detectors whose answers are pure functions of virtual time and the
#: (globally replayed) crash schedule — safe to replicate per group.
PARALLEL_DETECTORS = ("perfect", "heartbeat", "heartbeat-elided")

#: Worker dispatch strategies.  ``inline`` runs sub-kernels in the
#: coordinator (zero overhead, the dev-loop default), ``threads`` uses a
#: thread pool (overlaps only non-GIL work), ``processes`` forks workers
#: that own their replicas and exchange mailboxes over pipes (real
#: multi-core speedup).
EXECUTORS = ("inline", "threads", "processes")

#: Metric keys that legitimately differ between kernels and are excluded
#: from :func:`compare_kernels`' identity check: kernel event counts
#: (crash events replay in every sub-kernel) and wall-clock-derived
#: numbers.  Keys starting with ``phase_`` are excluded as well.
NONCOMPARABLE_METRICS = frozenset(
    {"kernel_events", "events_per_sec", "kernel_events_per_sec",
     "wall_seconds"}
)


def check_envelope(build_kwargs: dict) -> float:
    """Validate ``build_system`` kwargs against the parallel envelope.

    Returns the lookahead (the minimum inter-group latency lower bound).
    Raises :class:`ParallelKernelError` otherwise.
    """
    group_sizes = build_kwargs.get("group_sizes", (3, 3))
    if len(group_sizes) < 2:
        raise ParallelKernelError(
            "the parallel kernel partitions by group; a single-group "
            "topology degenerates to the serial kernel"
        )
    latency = build_kwargs.get("latency") or LatencyModel.logical()
    if not latency.all_fixed():
        raise ParallelKernelError(
            "jittered latency draws consume a shared RNG stream whose "
            "order is a global side channel; the parallel kernel "
            "requires all-Fixed latency distributions"
        )
    try:
        lookahead = latency.min_inter_group()
    except ValueError as exc:
        raise ParallelKernelError(str(exc)) from None
    detector = build_kwargs.get("detector", "perfect")
    if detector not in PARALLEL_DETECTORS:
        raise ParallelKernelError(
            f"detector {detector!r} is outside the parallel envelope; "
            f"its answers are not a pure function of virtual time "
            f"(supported: {PARALLEL_DETECTORS})"
        )
    transport = build_kwargs.get("transport", "none")
    if transport != "none":
        raise ParallelKernelError(
            f"transport {transport!r} is outside the parallel envelope: "
            f"its retransmission timers fire below the lookahead bound "
            f"and its backoff jitter draws from one shared stream whose "
            f"order is a global side channel (use kernel='serial' or "
            f"'auto')"
        )
    return lookahead


def build_parallel_system(build_kwargs: dict, jobs: int = 0,
                          executor: str = "inline") -> "ParallelSystem":
    """Envelope-check and assemble a :class:`ParallelSystem`."""
    lookahead = check_envelope(build_kwargs)
    return ParallelSystem(build_kwargs, lookahead=lookahead, jobs=jobs,
                          executor=executor)


def _check_group_major(entries, what: str) -> None:
    """Require time-sorted, group-major-at-equal-times root schedules.

    ``entries`` is an iterable of ``(time, gid, label)``.  The serial
    kernel executes equal-time root events in scheduling order; the
    partitioned key orders them by group id, so the two agree only when
    equal-time roots are already group-major.
    """
    prev_time: Optional[float] = None
    prev_gid = -1
    prev_label = ""
    for when, gid, label in entries:
        if prev_time is not None and when < prev_time:
            raise ParallelKernelError(
                f"{what} must be sorted by time for the parallel kernel "
                f"({label} at {when:g} follows {prev_label} at "
                f"{prev_time:g})"
            )
        if when == prev_time and gid < prev_gid:
            raise ParallelKernelError(
                f"equal-time {what} must be group-major for the "
                f"parallel kernel: {label} (group {gid}) follows "
                f"{prev_label} (group {prev_gid}) at time {when:g}"
            )
        prev_time, prev_gid, prev_label = when, gid, label


# ----------------------------------------------------------------------
# Per-group replica
# ----------------------------------------------------------------------
@dataclass
class _WorkerConfig:
    """Everything a worker needs to build its replicas (picklable)."""

    build_kwargs: dict
    plans_by_gid: Dict[int, list] = field(default_factory=dict)
    store_spec: object = None
    start_rounds: bool = False


class _GroupReplica:
    """One group's sub-kernel: a full system replica owning one group."""

    def __init__(self, cfg: _WorkerConfig, gid: int,
                 shared_profiler=None) -> None:
        from repro.runtime.builder import build_system

        queue = GroupSequencedQueue(gid)
        sim = Simulator(queue)
        queue.bind(sim)
        system = build_system(_sim=sim, **cfg.build_kwargs)
        self.gid = gid
        self.system = system
        self.queue = queue
        self.owned = frozenset(system.topology.members(gid))
        self.outbox = Outbox(gid, queue)
        system.network.divert_cross_group(gid, self.outbox)
        if shared_profiler is not None:
            # Inline executor: one profiler across coordinator and
            # replicas keeps exclusive-time additivity exact (replica
            # phases nest inside the coordinator's "sync").
            sim.profiler = shared_profiler
            system.network.profiler = shared_profiler
            system.profiler = shared_profiler
        # Message-driven heartbeats: every replica scheduled a beat
        # timer per group at build (identical counter consumption);
        # cancel the non-owned ones so only the owner emits traffic.
        timers = getattr(system.detector, "_timers", None)
        if timers:
            for tgid in [g for g in timers if g != gid]:
                timers.pop(tgid).cancel()
        queue.set_setup_band(SETUP_BAND_ROUNDS)
        if cfg.start_rounds:
            for pid in sorted(self.owned):
                endpoint = system.endpoints[pid]
                if hasattr(endpoint, "start_rounds"):
                    endpoint.start_rounds()
        queue.set_setup_band(SETUP_BAND_WORKLOAD)
        if cfg.store_spec is not None:
            from repro.store.cluster import StoreCluster

            StoreCluster.attach(system, cfg.store_spec,
                                owned_pids=self.owned)
        for when, msg in cfg.plans_by_gid.get(gid, ()):
            system.sim.call_at(when, lambda m=msg: system._do_cast(m),
                               label=f"cast:{msg.mid}")
        queue.begin_run()
        self._catalog = system.catalog
        self._cat_cursor = len(self._catalog._by_mid)

    # ------------------------------------------------------------------
    def next_time(self) -> Optional[float]:
        return self.queue.peek_time()

    def intern(self, msgs) -> None:
        """Adopt application messages cast by other sub-kernels."""
        for msg in msgs:
            self._catalog.intern(msg)
        self._cat_cursor = len(self._catalog._by_mid)

    def inject(self, copies: List[OutboundCopy]) -> None:
        """Queue cross-group arrivals under their sender's seq keys."""
        deliver = self.system.network._deliver
        push = self.queue.push_remote
        for copy in copies:
            push(copy.arrival_time, copy.seq,
                 lambda m=copy.msg: deliver(m))

    def run_window(self, bound: float, inclusive: bool) -> None:
        self.system.sim.run_window(bound, inclusive)

    def drain_new_casts(self) -> list:
        """Application messages interned here since the last barrier."""
        by_mid = self._catalog._by_mid
        cursor = self._cat_cursor
        self._cat_cursor = len(by_mid)
        if cursor == len(by_mid):
            return []
        return list(by_mid.values())[cursor:]

    # ------------------------------------------------------------------
    def finalize(self) -> dict:
        """Pack this sub-kernel's run artifacts for the host merge."""
        system = self.system
        log = system.log
        sequences = {pid: list(log._sequences[pid])
                     for pid in self.owned if pid in log._sequences}
        # This replica executed exactly its own casts; log insertion
        # order is their execution order.  (cast_time, gid, local index)
        # is the serial execution order across replicas.
        casts = []
        for index, (mid, msg) in enumerate(log._cast.items()):
            rec = system.meter.record_for(mid)
            casts.append(((rec.cast_time, self.gid, index), msg))
        delivered_by = {mid: list(pids)
                        for mid, pids in log._delivered_by.items()}
        stats = system.network.stats
        rounds = {}
        for pid in sorted(self.owned):
            endpoint = system.endpoints[pid]
            executed = getattr(endpoint, "rounds_executed", None)
            if executed is not None:
                rounds[pid] = (executed,
                               getattr(endpoint, "useful_rounds", 0))
        store = None
        cluster = getattr(system, "store_cluster", None)
        if cluster is not None:
            store = {
                pid: {
                    "state": cluster.stores[pid].state,
                    "applied": cluster.stores[pid].applied,
                    "applied_txns": cluster.stores[pid].applied_txns,
                    "effects": cluster.stores[pid]._effects,
                }
                for pid in sorted(self.owned)
            }
        profiler = system.sim.profiler
        return {
            "gid": self.gid,
            "now": system.sim.now,
            "events": system.sim.events_executed,
            "sequences": sequences,
            "casts": casts,
            "delivered_by": delivered_by,
            "meter": system.meter._records,
            "stats": (stats.inter_group_messages,
                      stats.intra_group_messages,
                      stats.by_kind, stats.by_kind_inter, stats.dropped),
            "trace": (list(system.network.trace.events)
                      if system.network.trace.enabled else None),
            "rounds": rounds,
            "store": store,
            "issued": ({pid: list(cluster.clients[pid].issued)
                        for pid in sorted(self.owned)
                        if pid in cluster.clients}
                       if cluster is not None else None),
            "profiler": (dict(profiler.timings())
                         if profiler is not None else None),
        }


# ----------------------------------------------------------------------
# Workers
# ----------------------------------------------------------------------
class _LocalWorker:
    """Runs a slice of sub-kernels in the calling process."""

    def __init__(self, cfg: _WorkerConfig, gids: List[int],
                 shared_profiler=None) -> None:
        self.replicas = [_GroupReplica(cfg, gid, shared_profiler)
                         for gid in gids]
        self._shared_profiler = shared_profiler
        self._result = None

    def poll(self) -> Optional[float]:
        times = [t for r in self.replicas
                 if (t := r.next_time()) is not None]
        return min(times) if times else None

    def step(self, bound: float, inclusive: bool,
             arrivals: List[OutboundCopy], casts: list):
        """Inject, run one window on every replica, drain the barriers."""
        by_gid: Dict[int, List[OutboundCopy]] = {r.gid: []
                                                 for r in self.replicas}
        for copy in arrivals:
            by_gid[copy.dst_gid].append(copy)
        for replica in self.replicas:
            if casts:
                replica.intern(casts)
            replica.inject(by_gid[replica.gid])
            replica.run_window(bound, inclusive)
        copies: List[OutboundCopy] = []
        new_casts: list = []
        per_replica = []
        for replica in self.replicas:
            copies.extend(replica.outbox.drain())
            fresh = replica.drain_new_casts()
            per_replica.append((replica, fresh))
            new_casts.extend(fresh)
        # Sibling replicas in the same worker exchange casts directly.
        for replica, fresh in per_replica:
            if fresh:
                for other in self.replicas:
                    if other is not replica:
                        other.intern(fresh)
        now = max(r.system.sim.now for r in self.replicas)
        executed = sum(r.system.sim.events_executed for r in self.replicas)
        return copies, new_casts, self.poll(), now, executed

    # Synchronous async-protocol shims (inline dispatch).
    def step_async(self, *args) -> None:
        self._result = self.step(*args)

    def step_result(self):
        result, self._result = self._result, None
        return result

    def finalize(self) -> List[dict]:
        bundles = [r.finalize() for r in self.replicas]
        if self._shared_profiler is not None:
            for bundle in bundles:
                bundle["profiler"] = None  # already on the shared profiler
        return bundles

    def close(self) -> None:
        pass


class _ThreadWorker:
    """Dispatches a :class:`_LocalWorker`'s steps on a thread pool."""

    def __init__(self, inner: _LocalWorker, pool) -> None:
        self._inner = inner
        self._pool = pool
        self._future = None

    def poll(self) -> Optional[float]:
        return self._inner.poll()

    def step_async(self, *args) -> None:
        self._future = self._pool.submit(self._inner.step, *args)

    def step_result(self):
        future, self._future = self._future, None
        return future.result()

    def finalize(self) -> List[dict]:
        return self._inner.finalize()

    def close(self) -> None:
        pass


def _process_worker_main(conn, cfg: _WorkerConfig,
                         gids: List[int]) -> None:  # pragma: no cover
    # Covered via the processes executor end-to-end tests; coverage
    # tooling does not see forked children.
    worker = _LocalWorker(cfg, gids)
    try:
        while True:
            request = conn.recv()
            command = request[0]
            if command == "poll":
                conn.send(worker.poll())
            elif command == "step":
                conn.send(worker.step(*request[1:]))
            elif command == "finalize":
                conn.send(worker.finalize())
            elif command == "exit":
                return
    except (EOFError, KeyboardInterrupt):
        return
    finally:
        conn.close()


class _ProcessWorker:
    """Proxy for a forked worker owning its replicas; pipes mailboxes."""

    def __init__(self, ctx, cfg: _WorkerConfig, gids: List[int]) -> None:
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(target=_process_worker_main,
                                 args=(child, cfg, gids), daemon=True)
        self._proc.start()
        child.close()

    def poll(self) -> Optional[float]:
        self._conn.send(("poll",))
        return self._conn.recv()

    def step_async(self, bound, inclusive, arrivals, casts) -> None:
        self._conn.send(("step", bound, inclusive, arrivals, casts))

    def step_result(self):
        return self._conn.recv()

    def finalize(self) -> List[dict]:
        self._conn.send(("finalize",))
        return self._conn.recv()

    def close(self) -> None:
        try:
            self._conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        self._conn.close()
        self._proc.join(timeout=10)
        if self._proc.is_alive():  # pragma: no cover - defensive
            self._proc.terminate()


# ----------------------------------------------------------------------
# The parallel system facade
# ----------------------------------------------------------------------
class ParallelSystem:
    """Drop-in :class:`~repro.runtime.builder.System` running partitioned.

    Attribute access falls through to the never-run *host* system, which
    holds the merged run artifacts after :meth:`run` /
    :meth:`run_quiescent` — so reports, metric extraction and checkers
    written against ``System`` work unchanged.
    """

    kernel = "parallel"

    def __init__(self, build_kwargs: dict, lookahead: float,
                 jobs: int = 0, executor: str = "inline") -> None:
        if executor not in EXECUTORS:
            raise ParallelKernelError(
                f"unknown executor {executor!r}; pick one of {EXECUTORS}"
            )
        from repro.runtime.builder import build_system

        kwargs = dict(build_kwargs)
        if kwargs.get("latency") is None:
            kwargs["latency"] = LatencyModel.logical()
        self._build_kwargs = kwargs
        self.lookahead = lookahead
        self.executor = executor
        #: Executor actually used (``processes`` falls back to
        #: ``inline`` when worker parameters cannot be pickled).
        self.executor_used = executor
        n_groups = len(kwargs["group_sizes"])
        self.jobs = max(1, min(jobs or n_groups, n_groups))
        self._host = build_system(**kwargs)
        self._plans_by_gid: Dict[int, list] = {}
        self._plan_msgs: list = []
        self._store_spec = None
        self._start_rounds = False
        self._ran = False
        #: Wall seconds of the last run (sync + workers), for reports.
        self.wall_seconds: Optional[float] = None

    def __getattr__(self, name):
        # Fallback for everything the facade does not override: the
        # host system carries topology, network, log, meter, detector,
        # crashes, rng, endpoints, store_cluster, profiler, ...
        return getattr(self.__dict__["_host"], name)

    # ------------------------------------------------------------------
    # Workload attachment (mirrors the serial System surface)
    # ------------------------------------------------------------------
    def schedule_plans(self, plans) -> list:
        """Schedule workload cast plans; returns their app messages.

        The parallel counterpart of
        :func:`repro.workload.generators.schedule_workload`: messages
        get explicit ``p%06d`` ids in plan order, so their relative
        lexicographic order (the protocols' tiebreaker) matches the
        serial kernel's eager ``m%06d`` assignment.
        """
        from repro.core.interfaces import AppMessage

        host = self._host
        topology = host.topology
        _check_group_major(
            ((plan.time, topology.group_of(plan.sender),
              f"plan by pid {plan.sender}") for plan in plans),
            "workload plans",
        )
        messages = []
        for index, plan in enumerate(plans):
            dest = (tuple(plan.dest_groups)
                    if plan.dest_groups is not None
                    else tuple(topology.group_ids))
            msg = AppMessage.fresh(sender=plan.sender, dest_groups=dest,
                                   payload=plan.payload,
                                   mid=f"p{index:06d}")
            host._check_broadcast_destinations(msg)
            gid = topology.group_of(plan.sender)
            self._plans_by_gid.setdefault(gid, []).append((plan.time, msg))
            messages.append(msg)
        self._plan_msgs.extend(messages)
        return messages

    def attach_store(self, store_spec):
        """Mount the transactional store; replicas schedule their own
        clients' transactions, the host gets the structure only."""
        from repro.store.cluster import StoreCluster

        cluster = StoreCluster.attach(self._host, store_spec,
                                      owned_pids=frozenset())
        topology = self._host.topology
        _check_group_major(
            ((plan.time, topology.group_of(plan.client), plan.txn_id)
             for plan in cluster.plans),
            "transaction plans",
        )
        self._store_spec = store_spec
        return cluster

    def start_rounds(self) -> None:
        """Warm up proactive protocols (deferred to the sub-kernels)."""
        self._start_rounds = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run partitioned (see :meth:`Simulator.run`); one-shot."""
        return self._run(until=until, max_events=max_events,
                         quiescent=False)

    def run_quiescent(self, max_events: int = 10_000_000) -> float:
        """Run until every sub-kernel drains (quiescence required)."""
        return self._run(until=None, max_events=max_events,
                         quiescent=True)

    def _run(self, until, max_events, quiescent) -> float:
        if self._ran:
            raise SimulationError(
                "a partitioned run is one-shot; build a fresh system"
            )
        self._ran = True
        started = time.perf_counter()
        profiler = self._host.profiler
        if profiler is not None:
            profiler.push("sync")
        try:
            workers, pool = self._make_workers()
            try:
                end, executed, drained = self._coordinate(
                    workers, until, max_events)
                bundles: List[dict] = []
                for worker in workers:
                    bundles.extend(worker.finalize())
            finally:
                for worker in workers:
                    worker.close()
                if pool is not None:
                    pool.shutdown(wait=True)
        finally:
            if profiler is not None:
                profiler.pop()
        self._merge(bundles, end, executed)
        self.wall_seconds = time.perf_counter() - started
        if quiescent and not drained:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )
        return end

    # ------------------------------------------------------------------
    def _make_workers(self):
        host = self._host
        n_groups = host.topology.n_groups
        gids = list(range(n_groups))
        slices = [gids[i::self.jobs] for i in range(self.jobs)]
        slices = [s for s in slices if s]
        cfg = _WorkerConfig(
            build_kwargs=self._build_kwargs,
            plans_by_gid=self._plans_by_gid,
            store_spec=self._store_spec,
            start_rounds=self._start_rounds,
        )
        if self.executor == "processes":
            workers = self._make_process_workers(cfg, slices)
            if workers is not None:
                return workers, None
            self.executor_used = "inline"
        if self.executor == "threads":
            from concurrent.futures import ThreadPoolExecutor

            pool = ThreadPoolExecutor(max_workers=len(slices))
            return [
                _ThreadWorker(_LocalWorker(cfg, chunk), pool)
                for chunk in slices
            ], pool
        shared = host.profiler  # None unless profiling
        return [_LocalWorker(cfg, chunk, shared) for chunk in slices], None

    def _make_process_workers(self, cfg, slices):
        import multiprocessing as mp

        try:
            pickle.dumps(cfg)
        except Exception:
            # Unpicklable build parameters (e.g. a predictor_factory
            # closure): results are identical either way, so degrade to
            # in-process execution instead of failing the run.
            return None
        ctx = mp.get_context()
        try:
            return [_ProcessWorker(ctx, cfg, chunk) for chunk in slices]
        except OSError:  # pragma: no cover - fork-restricted sandboxes
            return None

    # ------------------------------------------------------------------
    def _coordinate(self, workers, until, max_events):
        """The epoch-barrier loop: windows, flushes, routing."""
        lookahead = self.lookahead
        owner = {}
        for index, worker in enumerate(workers):
            for replica_gid in self._worker_gids(index):
                owner[replica_gid] = index
        pending: List[OutboundCopy] = []
        inbox_casts: List[list] = [[] for _ in workers]
        next_times = [worker.poll() for worker in workers]
        executed_by_worker = [0] * len(workers)
        end = 0.0
        drained = True
        while True:
            candidates = [t for t in next_times if t is not None]
            if pending:
                candidates.append(min(c.arrival_time for c in pending))
            if not candidates:
                break
            t_min = min(candidates)
            if until is not None and t_min > until:
                end = until
                drained = False
                break
            if (max_events is not None
                    and sum(executed_by_worker) >= max_events):
                drained = False
                break
            bound = window_end(epoch_of(t_min, lookahead), lookahead)
            inclusive = False
            if until is not None and bound >= until:
                bound, inclusive = until, True
            arrivals: List[List[OutboundCopy]] = [[] for _ in workers]
            for copy in pending:
                arrivals[owner[copy.dst_gid]].append(copy)
            pending = []
            for index, worker in enumerate(workers):
                worker.step_async(bound, inclusive, arrivals[index],
                                  inbox_casts[index])
            inbox_casts = [[] for _ in workers]
            for index, worker in enumerate(workers):
                copies, casts, next_time, now, executed = (
                    worker.step_result())
                pending.extend(copies)
                next_times[index] = next_time
                executed_by_worker[index] = executed
                if now > end:
                    end = now
                if casts:
                    for other in range(len(workers)):
                        if other != index:
                            inbox_casts[other].extend(casts)
            if until is not None and inclusive:
                # Final bounded window ran; the clock stops at `until`
                # exactly like Simulator.run(until=...).
                end = until
                drained = all(t is None for t in next_times) and not pending
                break
        return end, sum(executed_by_worker), drained

    def _worker_gids(self, index: int) -> List[int]:
        gids = list(range(self._host.topology.n_groups))
        return [s for s in [gids[i::self.jobs] for i in range(self.jobs)]
                if s][index]

    # ------------------------------------------------------------------
    # Artifact merge
    # ------------------------------------------------------------------
    def _merge(self, bundles: List[dict], end: float,
               executed: int) -> None:
        host = self._host
        bundles.sort(key=lambda bundle: bundle["gid"])
        # Delivery sequences: each pid's history lives in its owner.
        for bundle in bundles:
            for pid, sequence in bundle["sequences"].items():
                host.log._sequences[pid] = list(sequence)
        # Cast map, in serial execution order (time, gid, local index).
        all_casts = []
        for bundle in bundles:
            all_casts.extend(bundle["casts"])
        all_casts.sort(key=lambda entry: entry[0])
        for _, msg in all_casts:
            host.log._cast[msg.mid] = msg
            host.catalog.intern(msg)
        # Latency meter: cast side from the caster, deliveries from the
        # owners of the delivering pids.
        for bundle in bundles:
            for mid, rec in bundle["meter"].items():
                merged = host.meter._record(mid)
                if rec.cast_pid is not None:
                    merged.cast_pid = rec.cast_pid
                    merged.cast_lamport = rec.cast_lamport
                    merged.cast_time = rec.cast_time
                    merged.dest_groups = rec.dest_groups
                merged.delivery_lamport.update(rec.delivery_lamport)
                merged.delivery_time.update(rec.delivery_time)
        # First-delivery index, ordered (delivery time, gid, local pos).
        ordered_deliverers: Dict[str, list] = {}
        for bundle in bundles:
            gid = bundle["gid"]
            for mid, pids in bundle["delivered_by"].items():
                rec = host.meter.record_for(mid)
                bucket = ordered_deliverers.setdefault(mid, [])
                for position, pid in enumerate(pids):
                    bucket.append(
                        (rec.delivery_time.get(pid, 0.0), gid, position,
                         pid))
        for mid in host.log._cast:
            deliverers = ordered_deliverers.get(mid)
            if deliverers:
                deliverers.sort()
                ordered_pids = [pid for _, _, _, pid in deliverers]
                host.log._delivered_by[mid] = dict.fromkeys(ordered_pids)
                # Rebuild the record's delivery dicts in the same order:
                # per-record latency means sum the dict values, and
                # float addition is order-sensitive.  (time, gid,
                # position) sorts ties — which carry equal values — so
                # the sum is bit-identical to the serial chronological
                # insertion order.
                rec = host.meter.record_for(mid)
                rec.delivery_time = {pid: rec.delivery_time[pid]
                                     for pid in ordered_pids}
                rec.delivery_lamport = {pid: rec.delivery_lamport[pid]
                                        for pid in ordered_pids}
        # Network statistics: sends count at the sender, drops at the
        # destination, so a field-wise sum never double-counts.
        stats = host.network.stats
        for bundle in bundles:
            inter, intra, by_kind, by_kind_inter, dropped = bundle["stats"]
            stats.inter_group_messages += inter
            stats.intra_group_messages += intra
            stats.by_kind.update(by_kind)
            stats.by_kind_inter.update(by_kind_inter)
            stats.dropped += dropped
        # Message trace (genuineness/involvement): merged by time, then
        # group, preserving each sub-kernel's local order.
        if host.network.trace.enabled:
            events = []
            for bundle in bundles:
                for position, event in enumerate(bundle["trace"] or ()):
                    events.append(
                        (event.time, bundle["gid"], position, event))
            events.sort(key=lambda entry: entry[:3])
            trace = host.network.trace
            for _, _, _, event in events:
                if event.event == "send":
                    trace.on_send(event.time, event.msg)
                else:
                    trace.on_deliver(event.time, event.msg)
        # Kernel counters.  events_executed legitimately exceeds the
        # serial count (the crash schedule replays per sub-kernel).
        host.sim._events_executed = executed
        host.sim._now = end
        # Crash flags: a crash at t influenced the run iff t <= end.
        for pid, when in host.crashes.crashes.items():
            if when <= end:
                host.network.process(pid).crashed = True
        # Proactive-protocol round counters for the metrics extractors.
        for bundle in bundles:
            for pid, (rounds_executed, useful) in bundle["rounds"].items():
                endpoint = host.endpoints[pid]
                try:
                    endpoint.rounds_executed = rounds_executed
                    endpoint.useful_rounds = useful
                except AttributeError:
                    # Read-only properties over the round-based base
                    # class's counters: set the backing fields.
                    endpoint._rounds_executed = rounds_executed
                    endpoint._useful_rounds = useful
        # Store journals and the reconstructed commit tracker.
        cluster = getattr(host, "store_cluster", None)
        if cluster is not None:
            for bundle in bundles:
                for pid, journal in (bundle["store"] or {}).items():
                    store = cluster.stores[pid]
                    store.state = dict(journal["state"])
                    store.applied = list(journal["applied"])
                    store.applied_txns = list(journal["applied_txns"])
                    store._effects = dict(journal["effects"])
                for pid, issued in (bundle["issued"] or {}).items():
                    cluster.clients[pid].issued = list(issued)
            self._rebuild_tracker(cluster)
        # Per-sub-kernel profiler timings (threads/processes executors;
        # the inline executor shares the host profiler directly).
        if host.profiler is not None:
            for bundle in bundles:
                if bundle["profiler"]:
                    host.profiler.absorb(bundle["profiler"])

    def _rebuild_tracker(self, cluster) -> None:
        """Recompute commit points from the merged meter and log.

        A transaction commits at the first instant every destination
        group has executed it at some replica: the max over destination
        groups of the group's earliest delivery time.  Issue times are
        the metered cast times (clients register at the cast instant).
        """
        tracker = cluster.tracker
        topology = self._host.topology
        tracker._pending.clear()
        tracker.committed.clear()
        commits = []
        for mid, msg in self._host.log._cast.items():
            rec = self._host.meter.record_for(mid)
            issue = rec.cast_time
            remaining = set()
            commit = 0.0
            for gid in msg.dest_groups:
                times = [rec.delivery_time[pid]
                         for pid in topology.members(gid)
                         if pid in rec.delivery_time]
                if not times:
                    remaining.add(gid)
                else:
                    commit = max(commit, min(times))
            if remaining:
                tracker._pending[mid] = (issue, remaining)
            else:
                commits.append((commit, mid, issue))
        commits.sort()
        for commit, mid, issue in commits:
            tracker.committed[mid] = (issue, commit)


# ----------------------------------------------------------------------
# The comparison harness: the bit-identical claim, executable
# ----------------------------------------------------------------------
@dataclass
class KernelTrace:
    """Everything one kernel's run exposes for identity comparison."""

    kernel: str
    delivery_orders: Dict[int, Tuple[str, ...]]
    checker_verdicts: Dict[str, str]
    metrics: Dict[str, float]
    casts: int
    deliveries: int
    traffic: Dict[str, int]
    virtual_end: float
    wall_seconds: float


def run_kernel(spec, seed: int = 0, kernel: str = "serial",
               jobs: int = 0, executor: str = "inline") -> KernelTrace:
    """Run one scenario seed under the named kernel; trace the result.

    Message ids are renamed to ``c{i}`` by merged cast order, so the
    serial kernel's interpreter-global ``m%06d`` counter and the
    parallel kernel's explicit ``p%06d`` plan ids compare as equal when
    — and only when — the delivery orders truly agree.
    """
    import dataclasses

    from repro.campaigns.runner import build_scenario_system, run_checkers

    spec = dataclasses.replace(spec, kernel=kernel, kernel_jobs=jobs,
                               kernel_executor=executor)
    started = time.perf_counter()
    system, plans, _adversary = build_scenario_system(spec, seed)
    system.run_quiescent(max_events=spec.max_events)
    wall = time.perf_counter() - started
    verdicts = run_checkers(system, spec)
    from repro.campaigns.metrics import extract

    metrics = {
        name: value
        for name, value in extract(system, list(spec.metrics)).items()
        if name not in NONCOMPARABLE_METRICS
        and not name.startswith("phase_")
    }
    rename = {mid: f"c{index}"
              for index, mid in enumerate(system.log.cast_map)}
    delivery_orders = {
        pid: tuple(rename[mid] for mid in system.log.sequence(pid))
        for pid in system.topology.processes
        if system.log.sequence(pid)
    }
    # Checker failure texts cite raw message ids; rename those too so a
    # FAIL-vs-FAIL pair compares by content, not by id scheme.  Ids are
    # fixed-width, so plain replacement cannot hit substrings.
    for name, verdict in verdicts.items():
        if verdict != "ok":
            for mid, alias in rename.items():
                verdict = verdict.replace(mid, alias)
            verdicts[name] = verdict
    return KernelTrace(
        kernel=kernel,
        delivery_orders=delivery_orders,
        checker_verdicts=verdicts,
        metrics=metrics,
        casts=len(system.log.cast_map),
        deliveries=system.log.delivery_count(),
        traffic=system.network.stats.snapshot(),
        virtual_end=system.sim.now,
        wall_seconds=wall,
    )


def _first_divergence(a: Tuple[str, ...], b: Tuple[str, ...]) -> str:
    for index, (left, right) in enumerate(zip(a, b)):
        if left != right:
            return (f"position {index}: serial delivered {left}, "
                    f"parallel delivered {right}")
    return (f"serial delivered {len(a)} messages, "
            f"parallel delivered {len(b)}")


def assert_traces_equal(serial: KernelTrace, parallel: KernelTrace,
                        context: str = "") -> None:
    """Raise :class:`AssertionError` at the first observable divergence."""
    where = f" [{context}]" if context else ""
    for pid in sorted(set(serial.delivery_orders)
                      | set(parallel.delivery_orders)):
        seq_a = serial.delivery_orders.get(pid, ())
        seq_b = parallel.delivery_orders.get(pid, ())
        if seq_a != seq_b:
            raise AssertionError(
                f"kernels diverge{where}: pid {pid} delivery order — "
                f"{_first_divergence(seq_a, seq_b)}"
            )
    if serial.checker_verdicts != parallel.checker_verdicts:
        raise AssertionError(
            f"kernels diverge{where}: checker verdicts "
            f"{serial.checker_verdicts} (serial) vs "
            f"{parallel.checker_verdicts} (parallel)"
        )
    for name in sorted(set(serial.metrics) | set(parallel.metrics)):
        left = serial.metrics.get(name)
        right = parallel.metrics.get(name)
        if left != right:
            raise AssertionError(
                f"kernels diverge{where}: metric {name!r} — "
                f"serial {left!r} vs parallel {right!r}"
            )
    if (serial.casts, serial.deliveries) != (parallel.casts,
                                             parallel.deliveries):
        raise AssertionError(
            f"kernels diverge{where}: serial cast/delivered "
            f"{serial.casts}/{serial.deliveries}, parallel "
            f"{parallel.casts}/{parallel.deliveries}"
        )
    if serial.traffic != parallel.traffic:
        raise AssertionError(
            f"kernels diverge{where}: traffic {serial.traffic} (serial) "
            f"vs {parallel.traffic} (parallel)"
        )
    if serial.virtual_end != parallel.virtual_end:
        raise AssertionError(
            f"kernels diverge{where}: virtual end {serial.virtual_end!r} "
            f"(serial) vs {parallel.virtual_end!r} (parallel)"
        )


def compare_kernels(spec, seed: int = 0, jobs: int = 0,
                    executor: str = "inline") -> Dict[str, KernelTrace]:
    """Run a scenario seed under both kernels; assert bit-identity.

    Returns both :class:`KernelTrace` objects (for speedup reporting);
    raises :class:`AssertionError` naming the first divergence if the
    parallel kernel's observable artifacts differ from the serial
    kernel's in any way.
    """
    serial = run_kernel(spec, seed, "serial")
    parallel = run_kernel(spec, seed, "parallel", jobs=jobs,
                          executor=executor)
    assert_traces_equal(serial, parallel,
                        context=f"{spec.name} seed {seed}")
    return {"serial": serial, "parallel": parallel}
