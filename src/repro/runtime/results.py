"""Run artefacts: delivery logs and result-table formatting.

The :class:`DeliveryLog` is the ground truth the correctness checkers
work from: per-process delivery sequences plus the destination sets of
every cast message.

:func:`format_table` renders experiment results the way the paper's
Figure 1 does — one row per algorithm, aligned columns — so benchmark
output can be eyeballed against the paper directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.interfaces import AppMessage


class DeliveryLog:
    """Per-process A-Deliver sequences for a run."""

    def __init__(self) -> None:
        self._sequences: Dict[int, List[AppMessage]] = {}
        self._cast: Dict[str, AppMessage] = {}
        # mid -> {pid: None}: an insertion-ordered set of deliverers,
        # maintained per delivery so deliveries_of is O(deliverers)
        # instead of a scan over every process's sequence — the index
        # the streaming agreement/validity checkers run on.
        self._delivered_by: Dict[str, Dict[int, None]] = {}

    # ------------------------------------------------------------------
    def record_cast(self, msg: AppMessage) -> None:
        """Remember a cast message (destination sets feed the checkers)."""
        self._cast[msg.mid] = msg

    def record_delivery(self, pid: int, msg: AppMessage) -> None:
        """Append ``msg`` to ``pid``'s delivery sequence."""
        self._sequences.setdefault(pid, []).append(msg)
        self._delivered_by.setdefault(msg.mid, {})[pid] = None

    # ------------------------------------------------------------------
    def sequence(self, pid: int) -> List[str]:
        """Message ids delivered by ``pid``, in delivery order."""
        return [m.mid for m in self._sequences.get(pid, [])]

    def delivered_messages(self, pid: int) -> List[AppMessage]:
        """Messages delivered by ``pid``, in delivery order."""
        return list(self._sequences.get(pid, []))

    def processes(self) -> List[int]:
        """Pids that delivered at least one message."""
        return sorted(self._sequences)

    def cast_messages(self) -> Dict[str, AppMessage]:
        """All cast messages, by id (a copy; mutate freely)."""
        return dict(self._cast)

    @property
    def cast_map(self) -> Dict[str, AppMessage]:
        """All cast messages, by id — the live dict, do not mutate.

        The checkers read this on every message; handing out the
        internal dict keeps them allocation-free on large logs.
        """
        return self._cast

    def deliveries_of(self, mid: str) -> List[int]:
        """Pids that delivered ``mid``, in first-delivery order."""
        return list(self._delivered_by.get(mid, ()))

    def delivery_count(self) -> int:
        """Total number of delivery events in the run."""
        return sum(len(seq) for seq in self._sequences.values())


@dataclass
class Row:
    """One line of a result table."""

    label: str
    values: Sequence


def format_table(
    title: str, headers: Sequence[str], rows: List[Row],
    note: Optional[str] = None,
) -> str:
    """Render an aligned text table (Figure 1 style)."""
    all_rows = [[row.label] + [_fmt(v) for v in row.values] for row in rows]
    widths = [len(h) for h in headers]
    for cells in all_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = [title, ""]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in all_rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)))
    if note:
        lines.extend(["", note])
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
