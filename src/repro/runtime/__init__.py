"""Experiment runtime: system assembly, logs, reports, repetition."""

from repro.runtime.builder import PROTOCOLS, System, build_system
from repro.runtime.report import LatencySummary, RunReport, percentile
from repro.runtime.results import DeliveryLog, Row, format_table
from repro.runtime.runner import Aggregate, Repeated

__all__ = [
    "PROTOCOLS", "System", "build_system", "LatencySummary", "RunReport",
    "percentile", "DeliveryLog", "Row", "format_table", "Aggregate",
    "Repeated",
]
