"""Post-run analysis: latency percentiles, degree histograms, traffic.

:class:`RunReport` condenses a finished :class:`System` run into the
numbers a systems paper would report — latency percentiles per
destination-set size, a latency-degree histogram, per-kind message
breakdowns — and renders them as text.  The experiment harnesses use
the underlying accessors; examples and the CLI print the full report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.results import Row, format_table


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        raise ValueError("no values")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


@dataclass
class LatencySummary:
    """Percentile summary of one latency population."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "LatencySummary":
        if not values:
            raise ValueError("no values to summarise")
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            p50=percentile(values, 0.50),
            p90=percentile(values, 0.90),
            p99=percentile(values, 0.99),
            max=max(values),
        )


class RunReport:
    """Derived statistics over a finished system run."""

    def __init__(self, system) -> None:
        self.system = system
        self._records = [r for r in system.meter.records()
                         if r.latency_degree is not None]

    # ------------------------------------------------------------------
    # Degree statistics
    # ------------------------------------------------------------------
    def degree_histogram(self) -> Dict[int, int]:
        """Latency degree -> message count."""
        hist: Dict[int, int] = {}
        for rec in self._records:
            hist[rec.latency_degree] = hist.get(rec.latency_degree, 0) + 1
        return dict(sorted(hist.items()))

    def degree_summary(self) -> Dict[str, float]:
        """Flat latency-degree statistics for metric aggregation.

        The campaign engine consumes this shape directly; ``metered``
        counts messages whose degree was measurable (delivered at every
        metered replica).
        """
        degrees = [rec.latency_degree for rec in self._records]
        if not degrees:
            return {"metered": 0.0, "degree_mean": 0.0,
                    "degree_max": 0.0, "degree_le1_fraction": 0.0}
        return {
            "metered": float(len(degrees)),
            "degree_mean": sum(degrees) / len(degrees),
            "degree_max": float(max(degrees)),
            "degree_le1_fraction":
                sum(1 for d in degrees if d <= 1) / len(degrees),
        }

    def degree_by_destination_count(self) -> Dict[int, Dict[int, int]]:
        """|dest| -> (degree -> count); the paper's k-dependence."""
        out: Dict[int, Dict[int, int]] = {}
        for rec in self._records:
            k = len(rec.dest_groups)
            out.setdefault(k, {})
            out[k][rec.latency_degree] = out[k].get(rec.latency_degree,
                                                    0) + 1
        return {k: dict(sorted(v.items())) for k, v in sorted(out.items())}

    # ------------------------------------------------------------------
    # Wall-latency statistics
    # ------------------------------------------------------------------
    def latency_summary(self, worst_replica: bool = True
                        ) -> Optional[LatencySummary]:
        """Percentiles of delivery latency across all messages."""
        values = []
        for rec in self._records:
            value = (rec.worst_delivery_latency if worst_replica
                     else rec.mean_delivery_latency)
            if value is not None:
                values.append(value)
        return LatencySummary.of(values) if values else None

    def latency_by_destination_count(self) -> Dict[int, LatencySummary]:
        """|dest| -> worst-replica latency percentiles."""
        buckets: Dict[int, List[float]] = {}
        for rec in self._records:
            if rec.worst_delivery_latency is not None:
                buckets.setdefault(len(rec.dest_groups), []).append(
                    rec.worst_delivery_latency)
        return {k: LatencySummary.of(v)
                for k, v in sorted(buckets.items())}

    # ------------------------------------------------------------------
    # Engine throughput statistics
    # ------------------------------------------------------------------
    def throughput_summary(
        self, wall_seconds: Optional[float] = None
    ) -> Dict[str, float]:
        """Engine-level counters for this run, optionally rated by wall time.

        ``events_per_sec`` counts simulated message events per wall
        second — the benchmark suite's headline metric;
        ``kernel_events_per_sec`` counts raw kernel events, which the
        batched network deliberately keeps below the message count.
        """
        sim = self.system.sim
        stats = self.system.network.stats
        log = self.system.log
        deliveries = sum(
            len(log.sequence(pid)) for pid in log.processes()
        )
        out: Dict[str, float] = {
            "kernel_events": sim.events_executed,
            "network_messages": stats.total_messages,
            "casts": len(log.cast_messages()),
            "deliveries": deliveries,
            "virtual_end": sim.now,
        }
        if wall_seconds:
            out["events_per_sec"] = stats.total_messages / wall_seconds
            out["kernel_events_per_sec"] = sim.events_executed / wall_seconds
            out["wall_seconds"] = wall_seconds
        return out

    # ------------------------------------------------------------------
    # Phase profiling
    # ------------------------------------------------------------------
    def phase_timings(self) -> Dict[str, float]:
        """Exclusive wall seconds per subsystem phase.

        Populated when the system was built with ``profile=True``
        (kernel dispatch, network, protocol, consensus, failure
        detection, workload, checkers); empty otherwise.  The values
        sum to the wall time spanned by the profiled regions — the
        invariant the CI profiler smoke asserts.
        """
        profiler = getattr(self.system, "profiler", None)
        if profiler is None:
            return {}
        return profiler.timings()

    # ------------------------------------------------------------------
    # Traffic statistics
    # ------------------------------------------------------------------
    def traffic_by_kind(self, top: int = 10) -> List[Tuple[str, int, int]]:
        """(kind, total copies, inter-group copies), heaviest first."""
        stats = self.system.network.stats
        rows = [(kind, count, stats.by_kind_inter.get(kind, 0))
                for kind, count in stats.by_kind.most_common(top)]
        return rows

    def messages_per_cast(self) -> Optional[float]:
        """Total network copies amortised per application message."""
        casts = len(self.system.log.cast_messages())
        if casts == 0:
            return None
        return self.system.network.stats.total_messages / casts

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The full human-readable report."""
        sections = [f"Run report — protocol={self.system.protocol_name}, "
                    f"topology={self.system.topology!r}, "
                    f"virtual end time={self.system.sim.now:.1f}"]

        hist = self.degree_histogram()
        if hist:
            sections.append(format_table(
                "Latency degree histogram",
                ["degree", "messages"],
                [Row(str(deg), [count]) for deg, count in hist.items()],
            ))

        by_k = self.latency_by_destination_count()
        if by_k:
            sections.append(format_table(
                "Worst-replica delivery latency by destination count",
                ["|dest|", "msgs", "mean", "p50", "p90", "p99", "max"],
                [Row(str(k), [s.count, round(s.mean, 1), round(s.p50, 1),
                              round(s.p90, 1), round(s.p99, 1),
                              round(s.max, 1)])
                 for k, s in by_k.items()],
            ))

        traffic = self.traffic_by_kind()
        if traffic:
            sections.append(format_table(
                "Heaviest message kinds",
                ["kind", "copies", "inter-group"],
                [Row(kind, [total, inter])
                 for kind, total, inter in traffic],
            ))

        per_cast = self.messages_per_cast()
        if per_cast is not None:
            sections.append(
                f"Network copies per application message: {per_cast:.1f}"
            )

        engine = self.throughput_summary()
        sections.append(
            "Engine: {kernel_events:.0f} kernel events, "
            "{network_messages:.0f} network messages, "
            "{deliveries:.0f} deliveries".format(**engine)
        )

        phases = self.phase_timings()
        if phases:
            total = sum(phases.values()) or 1.0
            sections.append(format_table(
                "Phase timings (exclusive wall time)",
                ["phase", "seconds", "share"],
                [Row(name, [f"{seconds:.4f}",
                            f"{seconds / total:.1%}"])
                 for name, seconds in phases.items()],
            ))
        return "\n\n".join(sections)
