"""Per-subsystem wall-time attribution for simulated runs.

:class:`PhaseProfiler` is a self-time profiler over a small fixed phase
vocabulary: the kernel run loop pushes ``"kernel"``, the network pushes
``"network"`` around per-copy delivery overhead and classifies each
message handler by its kind (``*.cons.*`` → ``"consensus"``, ``fd.*`` →
``"failure_detection"``, anything else → ``"protocol"``), cast events
push ``"workload"``, and the checker helpers push ``"checkers"``.  Each
phase accumulates *exclusive* time — entering a nested phase suspends
the parent — so the phase timings always sum exactly to the wall time
spanned by the outermost push/pop pair.  That additivity is what the CI
profiler smoke job asserts.

Profiling is opt-in (``build_system(..., profile=True)`` or
``repro.cli profile``): the hot paths only pay a single attribute read
and ``is not None`` test per message when it is off.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

#: Canonical phase order for rendering (unknown phases sort after).
#: "sync" is the parallel kernel's residual serial fraction: epoch
#: barriers, mailbox flushes and artifact merging charged by the
#: coordinator (measured, not guessed — Amdahl's law needs a number).
PHASE_ORDER = (
    "kernel", "network", "transport", "protocol", "consensus",
    "failure_detection", "workload", "checkers", "sync",
)


def classify_kind(kind: str) -> str:
    """Map a message kind to its profiling phase.

    Consensus substrates nest their namespace under the protocol's
    (``amc.cons.propose``), so classification matches anywhere in the
    dotted path; the failure detector owns the ``fd`` root and the
    reliable transport's control traffic the ``tsp`` root (its *data*
    frames keep their protocol kinds and classify as usual).
    """
    if kind.startswith("fd."):
        return "failure_detection"
    if kind.startswith("tsp."):
        return "transport"
    if ".cons." in kind or kind.startswith("cons."):
        return "consensus"
    return "protocol"


class PhaseProfiler:
    """A stack-based exclusive-time profiler.

    ``push(phase)`` charges the elapsed time since the last boundary to
    the phase currently on top, then makes ``phase`` the top;
    ``pop()`` charges the top and restores its parent.  Phases may
    repeat and nest arbitrarily.
    """

    def __init__(self) -> None:
        self._timings: Dict[str, float] = {}
        self._stack: List[str] = []
        self._since: float = 0.0

    # ------------------------------------------------------------------
    def push(self, phase: str) -> None:
        now = time.perf_counter()
        if self._stack:
            top = self._stack[-1]
            self._timings[top] = (self._timings.get(top, 0.0)
                                  + now - self._since)
        self._stack.append(phase)
        self._since = now

    def pop(self) -> None:
        now = time.perf_counter()
        phase = self._stack.pop()
        self._timings[phase] = (self._timings.get(phase, 0.0)
                                + now - self._since)
        self._since = now

    class _Phase:
        __slots__ = ("_profiler", "_name")

        def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
            self._profiler = profiler
            self._name = name

        def __enter__(self) -> None:
            self._profiler.push(self._name)

        def __exit__(self, *exc) -> None:
            self._profiler.pop()

    def phase(self, name: str) -> "PhaseProfiler._Phase":
        """Context manager: ``with profiler.phase("checkers"): ...``."""
        return PhaseProfiler._Phase(self, name)

    def absorb(self, timings: Dict[str, float]) -> None:
        """Fold finished per-phase timings into this profiler.

        Used when merging per-sub-kernel profilers after a partitioned
        run: the coordinator's own profiler (which charged "sync" around
        barriers) absorbs each worker's timings, so the merged table
        still sums to the total profiled work.  Must not be called while
        a phase is open on ``self`` for the additivity invariant to
        survive the merge.
        """
        for name, seconds in timings.items():
            self._timings[name] = self._timings.get(name, 0.0) + seconds

    # ------------------------------------------------------------------
    def timings(self) -> Dict[str, float]:
        """Exclusive seconds per phase, canonical order first."""
        def key(item: Tuple[str, float]):
            name = item[0]
            try:
                return (0, PHASE_ORDER.index(name))
            except ValueError:
                return (1, name)

        return dict(sorted(self._timings.items(), key=key))

    def total(self) -> float:
        """Sum of all phase timings (== profiled wall span)."""
        return sum(self._timings.values())

    def fraction(self, phase: str) -> Optional[float]:
        """Phase share of the total, or None before any measurement."""
        total = self.total()
        if total <= 0.0:
            return None
        return self._timings.get(phase, 0.0) / total

    def render(self) -> str:
        """An aligned text table of phase timings and shares."""
        timings = self.timings()
        total = self.total()
        lines = ["Phase timings (exclusive wall time)", ""]
        lines.append(f"{'phase':<18}{'seconds':>10}  {'share':>6}")
        lines.append(f"{'-' * 18}{'-' * 10:>10}  {'-' * 6}")
        for name, seconds in timings.items():
            share = seconds / total if total > 0 else 0.0
            lines.append(f"{name:<18}{seconds:>10.4f}  {share:>5.1%}")
        lines.append(f"{'total':<18}{total:>10.4f}  {'100.0%':>6}")
        return "\n".join(lines)
