"""Simulated wide-area network: topology, latency models, links."""

from repro.net.message import Message
from repro.net.network import Network
from repro.net.topology import (
    Distribution, Fixed, Jittered, LatencyModel, Topology, Uniform,
)
from repro.net.trace import MessageTrace, NetworkStats

__all__ = [
    "Message", "Network", "Distribution", "Fixed", "Jittered",
    "LatencyModel", "Topology", "Uniform", "MessageTrace", "NetworkStats",
]
