"""Message tracing and accounting.

:class:`NetworkStats` counts messages by scope (intra vs inter group) and
by protocol kind; it is always on because Figure 1's message-complexity
columns are regenerated from these counters.

:class:`MessageTrace` optionally records every send/deliver event.  The
genuineness checker and some unit tests use it; experiments leave it
disabled to keep memory bounded.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.net.message import Message


class NetworkStats:
    """Counters over every message accepted by the network."""

    def __init__(self) -> None:
        self.inter_group_messages = 0
        self.intra_group_messages = 0
        self.by_kind: Counter = Counter()
        self.by_kind_inter: Counter = Counter()
        self.dropped = 0
        # Extra copies injected by the duplicate-channel adversary via
        # Network.inject_copy (each is also counted by on_send, so
        # total_messages stays the honest wire-copy count).
        self.duplicated = 0

    @property
    def total_messages(self) -> int:
        """All messages sent, regardless of scope."""
        return self.inter_group_messages + self.intra_group_messages

    def on_send(self, msg: Message) -> None:
        """Account for one message copy entering the network."""
        if msg.inter_group:
            self.inter_group_messages += 1
            self.by_kind_inter[msg.kind] += 1
        else:
            self.intra_group_messages += 1
        self.by_kind[msg.kind] += 1

    def on_send_many(self, kind: str, total: int, inter: int) -> None:
        """Account for one ``send_many`` fan-out in a single update."""
        self.inter_group_messages += inter
        self.intra_group_messages += total - inter
        self.by_kind[kind] += total
        if inter:
            self.by_kind_inter[kind] += inter

    def on_drop(self, msg: Message) -> None:
        """Account for a copy dropped (destination crashed, filter)."""
        self.dropped += 1

    def snapshot(self) -> dict:
        """A plain-dict summary for result tables."""
        return {
            "inter": self.inter_group_messages,
            "intra": self.intra_group_messages,
            "total": self.total_messages,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkStats(inter={self.inter_group_messages}, "
            f"intra={self.intra_group_messages}, dropped={self.dropped})"
        )


@dataclass
class TraceEvent:
    """One traced network event."""

    event: str  # "send" or "deliver"
    time: float
    msg: Message


class MessageTrace:
    """An optional full log of network activity.

    The queries the checkers run per-message or per-run — participant
    sets, last send time — are maintained incrementally on append, so
    the genuineness check is O(participants) rather than a scan of the
    whole event list.  :meth:`sends_of_kind` keeps a per-kind index,
    built lazily on first query and invalidated by the next send, so
    repeated kind queries over a settled trace never rescan.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self._senders: Set[int] = set()
        self._receivers: Set[int] = set()
        self._last_send_time: Optional[float] = None
        # kind -> [(position in self.events, event), ...] for sends;
        # None while stale (build lazily, invalidate on append).
        self._sends_by_kind: Optional[Dict[str, List]] = None

    def on_send(self, time: float, msg: Message) -> None:
        if self.enabled:
            self.events.append(TraceEvent("send", time, msg))
            self._senders.add(msg.src)
            self._last_send_time = time
            self._sends_by_kind = None

    def on_deliver(self, time: float, msg: Message) -> None:
        if self.enabled:
            self.events.append(TraceEvent("deliver", time, msg))
            self._receivers.add(msg.dst)

    # ------------------------------------------------------------------
    # Queries used by checkers
    # ------------------------------------------------------------------
    def senders(self) -> Set[int]:
        """Processes that sent at least one message."""
        return set(self._senders)

    def receivers(self) -> Set[int]:
        """Processes that received at least one message."""
        return set(self._receivers)

    def participants(self) -> Set[int]:
        """Processes that sent or received at least one message."""
        return self._senders | self._receivers

    def sends_of_kind(self, prefix: str) -> List[TraceEvent]:
        """Send events whose kind starts with ``prefix``, in send order."""
        index = self._sends_by_kind
        if index is None:
            index = self._sends_by_kind = {}
            for position, event in enumerate(self.events):
                if event.event == "send":
                    index.setdefault(event.msg.kind, []).append(
                        (position, event))
        matching = [entries for kind, entries in index.items()
                    if kind.startswith(prefix)]
        if len(matching) == 1:
            return [event for _, event in matching[0]]
        merged = sorted(
            (entry for entries in matching for entry in entries))
        return [event for _, event in merged]

    def last_send_time(self) -> Optional[float]:
        """Virtual time of the last send event, or None."""
        return self._last_send_time
