"""Message tracing and accounting.

:class:`NetworkStats` counts messages by scope (intra vs inter group) and
by protocol kind; it is always on because Figure 1's message-complexity
columns are regenerated from these counters.

:class:`MessageTrace` optionally records every send/deliver event.  The
genuineness checker and some unit tests use it; experiments leave it
disabled to keep memory bounded.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.net.message import Message


class NetworkStats:
    """Counters over every message accepted by the network."""

    def __init__(self) -> None:
        self.inter_group_messages = 0
        self.intra_group_messages = 0
        self.by_kind: Counter = Counter()
        self.by_kind_inter: Counter = Counter()
        self.dropped = 0

    @property
    def total_messages(self) -> int:
        """All messages sent, regardless of scope."""
        return self.inter_group_messages + self.intra_group_messages

    def on_send(self, msg: Message) -> None:
        """Account for one message copy entering the network."""
        if msg.inter_group:
            self.inter_group_messages += 1
            self.by_kind_inter[msg.kind] += 1
        else:
            self.intra_group_messages += 1
        self.by_kind[msg.kind] += 1

    def on_send_many(self, kind: str, total: int, inter: int) -> None:
        """Account for one ``send_many`` fan-out in a single update."""
        self.inter_group_messages += inter
        self.intra_group_messages += total - inter
        self.by_kind[kind] += total
        if inter:
            self.by_kind_inter[kind] += inter

    def on_drop(self, msg: Message) -> None:
        """Account for a copy dropped (destination crashed, filter)."""
        self.dropped += 1

    def snapshot(self) -> dict:
        """A plain-dict summary for result tables."""
        return {
            "inter": self.inter_group_messages,
            "intra": self.intra_group_messages,
            "total": self.total_messages,
            "dropped": self.dropped,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkStats(inter={self.inter_group_messages}, "
            f"intra={self.intra_group_messages}, dropped={self.dropped})"
        )


@dataclass
class TraceEvent:
    """One traced network event."""

    event: str  # "send" or "deliver"
    time: float
    msg: Message


class MessageTrace:
    """An optional full log of network activity."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def on_send(self, time: float, msg: Message) -> None:
        if self.enabled:
            self.events.append(TraceEvent("send", time, msg))

    def on_deliver(self, time: float, msg: Message) -> None:
        if self.enabled:
            self.events.append(TraceEvent("deliver", time, msg))

    # ------------------------------------------------------------------
    # Queries used by checkers
    # ------------------------------------------------------------------
    def senders(self) -> Set[int]:
        """Processes that sent at least one message."""
        return {e.msg.src for e in self.events if e.event == "send"}

    def receivers(self) -> Set[int]:
        """Processes that received at least one message."""
        return {e.msg.dst for e in self.events if e.event == "deliver"}

    def participants(self) -> Set[int]:
        """Processes that sent or received at least one message."""
        return self.senders() | self.receivers()

    def sends_of_kind(self, prefix: str) -> List[TraceEvent]:
        """Send events whose kind starts with ``prefix``."""
        return [
            e for e in self.events
            if e.event == "send" and e.msg.kind.startswith(prefix)
        ]

    def last_send_time(self) -> Optional[float]:
        """Virtual time of the last send event, or None."""
        times = [e.time for e in self.events if e.event == "send"]
        return max(times) if times else None
