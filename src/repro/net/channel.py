"""Seeded per-link channel fault decisions (drop/duplicate/corrupt).

The quasi-reliable network of :mod:`repro.net.network` never loses,
duplicates or corrupts a copy on its own — those faults are *injected*,
by the lossy adversary kinds of :mod:`repro.adversary.injectors`.  This
module holds the decision engine they share: a :class:`ChannelModel`
answers, per message copy, "does the fault fire on this copy, and with
what magnitude?", from the injector's own named random stream.

Two properties matter more than realism here:

* **Constant draw discipline** — :meth:`ChannelModel.roll` consumes
  exactly two uniform draws per observed copy (one burst-state
  transition, one fault decision) whether or not the fault fires,
  whether or not the injector's fault window or horizon admits it.
  Narrowing the shrinker's ``skip_faults``/``max_faults`` window or the
  ``until`` horizon therefore never shifts the random stream — the
  alignment the counterexample shrinker's bisection relies on, exactly
  as documented for :class:`~repro.adversary.injectors.FaultInjector`.

* **Per-link burst correlation** — real loss clusters.  The model is a
  two-state Gilbert–Elliott chain per ``(src, dst)`` process pair: in
  the *good* state faults fire with ``probability``, in the *bad*
  (burst) state with ``burst_probability``; ``burst_enter`` /
  ``burst_exit`` govern the per-copy transition chances.  With the
  defaults (``burst_enter=0``) the chain never leaves the good state
  and the model degenerates to i.i.d. Bernoulli loss — but it still
  spends its transition draw, so turning bursts on or off in a spec
  does not realign every later decision by accident.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple


class ChannelModel:
    """Per-link seeded fault decisions with optional burst correlation."""

    __slots__ = ("rng", "probability", "burst_probability", "burst_enter",
                 "burst_exit", "_bad")

    def __init__(
        self,
        rng: random.Random,
        probability: float,
        burst_probability: float = 0.0,
        burst_enter: float = 0.0,
        burst_exit: float = 0.25,
    ) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError(
                f"channel fault probability must be in (0, 1], "
                f"got {probability}"
            )
        for name, value in (("burst_probability", burst_probability),
                            ("burst_enter", burst_enter),
                            ("burst_exit", burst_exit)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if burst_enter > 0.0 and burst_probability == 0.0:
            raise ValueError(
                "burst_enter > 0 needs a burst_probability > 0 "
                "(a burst state that never faults is a no-op)"
            )
        self.rng = rng
        self.probability = probability
        self.burst_probability = burst_probability
        self.burst_enter = burst_enter
        self.burst_exit = burst_exit
        # (src pid, dst pid) -> currently in the burst (bad) state.
        self._bad: Dict[Tuple[int, int], bool] = {}

    def roll(self, src: int, dst: int) -> Tuple[bool, float]:
        """Decide whether the fault fires on one copy of link src→dst.

        Returns ``(fault, u)`` where ``u`` is the fault-decision draw;
        when the fault fires, ``u / p`` is uniform on [0, 1) and
        injectors derive fault magnitudes (extra delay, damage mask)
        from it, so one decision fixes the whole fault — the
        :class:`~repro.adversary.injectors.DelayReorderInjector`
        convention.  Always exactly two draws (see module docstring).
        """
        rng = self.rng
        link = (src, dst)
        bad = self._bad.get(link, False)
        t = rng.random()
        if bad:
            if t < self.burst_exit:
                bad = False
        elif t < self.burst_enter:
            bad = True
        self._bad[link] = bad
        u = rng.random()
        p = self.burst_probability if bad else self.probability
        return u < p, u

    def in_burst(self, src: int, dst: int) -> bool:
        """Whether the link is currently in its burst (bad) state."""
        return self._bad.get((src, dst), False)
