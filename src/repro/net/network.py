"""The simulated quasi-reliable network.

Implements the link semantics of paper Section 2.1:

* links neither corrupt nor duplicate messages;
* links are **quasi-reliable**: a message from a correct process to a
  correct process is eventually delivered; messages to or from crashed
  processes may be lost (here: messages to a crashed destination are
  dropped, messages already in flight from a now-crashed sender are still
  delivered, which quasi-reliability permits).

The network is also the instrumentation point for the modified Lamport
clocks (Section 2.3): it stamps every send with the sender's clock and
advances the receiver's clock on delivery, and it feeds the
message-complexity counters behind Figure 1.

Breaking quasi-reliability is possible, but only deliberately: the lossy
adversary kinds (``drop``/``duplicate``/``corrupt``, see
:mod:`repro.adversary.injectors`) act through the same delivery-filter
and delay-hook seams the quasi-reliable injectors use, plus the
:meth:`Network.inject_copy` seam for duplication.  Runs that enable them
either accept broken runs (that is the point of the torture explorer) or
mount the retransmitting transport of :mod:`repro.transport`, which
restores quasi-reliable semantics above the faulty links; the network
cooperates through :meth:`set_transport` and two explicit interception
points (wrap on send, frame admission on delivery) so that the protocols
above notice nothing.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional

from repro.net.message import Message
from repro.net.topology import LatencyModel, Topology
from repro.net.trace import MessageTrace, NetworkStats
from repro.sim.kernel import Simulator
from repro.sim.process import Process

# A delivery filter may veto individual copies (fault-injection in tests).
DeliveryFilter = Callable[[Message], bool]

# A delay hook may perturb the sampled link delay of one message copy
# (``hook(msg, delay) -> delay``).  Adversarial injectors use this as
# their send-side hook point: delays may grow or shrink, but the copy is
# still delivered exactly once with its payload untouched, so every
# perturbation stays within quasi-reliable link semantics.
DelayHook = Callable[[Message, float], float]

_classify_kind = None


def _phase_of_kind(kind: str) -> str:
    """Profiling phase of a message kind, via a lazily cached import.

    ``repro.runtime`` imports this module through the builder, so a
    top-level import of :func:`repro.runtime.profiler.classify_kind`
    would be circular; binding it on first profiled delivery keeps the
    per-message cost at one global load.
    """
    global _classify_kind
    if _classify_kind is None:
        from repro.runtime.profiler import classify_kind

        _classify_kind = classify_kind
    return _classify_kind(kind)


class Network:
    """Connects :class:`Process` objects through a latency model."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        latency: LatencyModel,
        rng: random.Random,
        trace: Optional[MessageTrace] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.latency = latency
        self.rng = rng
        self.stats = NetworkStats()
        self.trace = trace or MessageTrace(enabled=False)
        self._processes: Dict[int, Process] = {}
        self._filters: List[DeliveryFilter] = []
        self._delay_hooks: List[DelayHook] = []
        #: Optional :class:`~repro.runtime.profiler.PhaseProfiler`; the
        #: builder shares the simulator's instance here.  When set, the
        #: delivery path charges pre-handler overhead to "network" and
        #: each handler call to its kind's phase.
        self.profiler = None
        #: Optional :class:`~repro.transport.reliable.ReliableTransport`
        #: mounted by ``build_system(transport="reliable")``.  None on
        #: the hot paths costs one attribute read + is-None test.
        self.transport = None
        # src_gid -> {dst_gid -> constant link delay, or None when the
        # pair's distribution needs an RNG draw per copy}.  Lazily
        # filled; rows are fetched once per send_many call so the
        # per-copy lookup is a single int-keyed dict access.
        self._fixed_delay: Dict[int, Dict[int, Optional[float]]] = {}
        # Partitioned (parallel-kernel) mode: copies addressed outside
        # the owned group are buffered here instead of scheduled, and
        # flushed to the owning sub-kernel at the next epoch barrier.
        # None in serial mode — the hot paths pay one is-None test.
        self._outbox = None
        self._owned_gid = -1

    def divert_cross_group(self, owned_gid: int, outbox) -> None:
        """Enter partitioned mode: buffer copies leaving ``owned_gid``.

        Installed by the parallel kernel on each sub-kernel replica;
        ``outbox`` is an :class:`~repro.sim.partition.Outbox` whose
        append order extends this sub-kernel's scheduling order across
        the group boundary.
        """
        self._owned_gid = owned_gid
        self._outbox = outbox

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, process: Process) -> None:
        """Attach a process to the network."""
        if process.pid in self._processes:
            raise ValueError(f"pid {process.pid} already registered")
        self._processes[process.pid] = process
        process.attach_network(self)

    def process(self, pid: int) -> Process:
        """Look up a registered process."""
        return self._processes[pid]

    def processes(self) -> List[Process]:
        """All registered processes in pid order."""
        return [self._processes[pid] for pid in sorted(self._processes)]

    def add_delivery_filter(self, flt: DeliveryFilter) -> None:
        """Install a predicate that may drop individual message copies.

        Only test fixtures and fault injectors use this (e.g. to model a
        faulty sender whose reliable-multicast copies reached a strict
        subset of the group).  Filters must respect quasi-reliability if
        the scenario claims to.  Installing the same filter twice would
        silently double its observations (a counting filter would fire
        at half its configured threshold), so duplicates are rejected.
        """
        # ``==``, not ``is``: bound methods are recreated per attribute
        # access, and == is how list.remove matches them back.
        if flt in self._filters:
            raise ValueError("delivery filter already installed")
        self._filters.append(flt)

    def remove_delivery_filter(self, flt: DeliveryFilter) -> None:
        """Uninstall a previously added delivery filter."""
        if flt not in self._filters:
            raise ValueError("delivery filter not installed")
        self._filters.remove(flt)

    def add_delay_hook(self, hook: DelayHook) -> None:
        """Install a per-copy link-delay perturbation hook.

        Hooks run in installation order at send time, each seeing the
        previous hook's output; the final value must be a valid
        (non-negative) delay.  This is the injector hook point for
        latency skew, bounded reordering and partition spikes.
        """
        if hook in self._delay_hooks:
            raise ValueError("delay hook already installed")
        self._delay_hooks.append(hook)

    def remove_delay_hook(self, hook: DelayHook) -> None:
        """Uninstall a previously added delay hook."""
        if hook not in self._delay_hooks:
            raise ValueError("delay hook not installed")
        self._delay_hooks.remove(hook)

    def set_transport(self, transport) -> None:
        """Mount a reliable transport beneath the protocol traffic.

        Every subsequent :meth:`send`/:meth:`send_many` of a covered
        kind is wrapped into a sequenced, checksummed frame, and frame
        deliveries are admitted through the transport's dedup/reorder
        logic instead of dispatching directly (see
        :mod:`repro.transport.reliable`).  Must happen before traffic
        flows — mounting mid-run would strand unsequenced copies.
        """
        if self.transport is not None:
            raise ValueError("a transport is already mounted")
        self.transport = transport

    def inject_copy(self, msg: Message, delay: float) -> None:
        """Schedule an *extra* delivery of a copy already in flight.

        This is the duplication seam for the lossy adversary: the clone
        really does cross the wire again, so it is accounted like any
        other copy (stats, trace, ``duplicated`` counter) and delivered
        through the normal path — later filters, the transport's dedup
        window and the receiver's clock all see it.  The clone is a
        fresh :class:`Message` sharing the payload dict, never the same
        object, so a corruption of one copy cannot leak into the other.
        """
        copy = Message(msg.src, msg.dst, msg.kind, msg.payload,
                       msg.inter_group, msg.send_lamport, msg.send_time,
                       msg.wire)
        self.stats.on_send(copy)
        self.stats.duplicated += 1
        if self.trace.enabled:
            self.trace.on_send(self.sim.now, copy)
        self.sim.schedule_action(delay, lambda m=copy: self._deliver(m))

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, kind: str, payload: dict) -> None:
        """Send one message from ``src`` to ``dst``."""
        transport = self.transport
        if transport is not None:
            next_wire = transport.sequencer(src, kind, payload, self.sim.now)
            if next_wire is not None:
                if self._processes[src].crashed:
                    return  # don't sequence what can never enter the wire
                self._send_copy(src, dst, kind, payload,
                                next_wire(src, dst))
                return
        self._send_copy(src, dst, kind, payload)

    def send_many(
        self, src: int, dsts: Iterable[int], kind: str, payload: dict
    ) -> None:
        """Send the same logical message to each destination.

        Every copy is stamped from the sender's *current* clock, so a
        one-to-many send counts as a single logical step (at most one
        inter-group hop on any causal path), per Section 2.3.

        Copies whose sampled link delay coincides are batched into a
        single kernel event that fans out on fire.  Delays are sampled
        and copies stamped in destination order, and same-delay copies
        were already contiguous in the old per-copy scheduling (their
        sequence numbers were consecutive), so batching changes neither
        the RNG stream nor any delivery interleaving — it only removes
        heap traffic.
        """
        if self.profiler is not None:
            self.profiler.push("network")
            try:
                self._send_many(src, dsts, kind, payload)
            finally:
                self.profiler.pop()
            return
        self._send_many(src, dsts, kind, payload)

    def _send_many(
        self, src: int, dsts: Iterable[int], kind: str, payload: dict
    ) -> None:
        sender = self._processes[src]
        if sender.crashed:
            return
        now = self.sim.now
        transport = self.transport
        next_wire = (transport.sequencer(src, kind, payload, now)
                     if transport is not None else None)
        group_of = self.topology.group_index
        src_gid = group_of[src]
        lamport = sender.lamport.value  # timestamp_send leaves it unchanged
        trace = self.trace if self.trace.enabled else None
        fixed_row = self._fixed_delay.get(src_gid)
        if fixed_row is None:
            fixed_row = self._fixed_delay[src_gid] = {}
        rng = self.rng
        outbox = self._outbox
        owned_gid = self._owned_gid
        total = 0
        n_inter = 0
        buckets: Dict[float, List[Message]] = {}
        for dst in dsts:
            dst_gid = group_of[dst]
            inter = src_gid != dst_gid
            if next_wire is None:
                msg = Message(
                    src, dst, kind, payload, inter,
                    lamport + 1 if inter else lamport, now,
                )
            else:
                msg = Message(
                    src, dst, kind, payload, inter,
                    lamport + 1 if inter else lamport, now,
                    next_wire(src, dst),
                )
            total += 1
            if inter:
                n_inter += 1
            if trace is not None:
                trace.on_send(now, msg)
            delay = fixed_row.get(dst_gid, -1.0)
            if delay == -1.0 and dst_gid not in fixed_row:
                fixed_row[dst_gid] = delay = self.latency.fixed_delay(
                    src_gid, dst_gid)
            if delay is None:
                delay = self.latency.sample(src_gid, dst_gid, rng)
            if self._delay_hooks:
                for hook in self._delay_hooks:
                    delay = hook(msg, delay)
            if outbox is not None and dst_gid != owned_gid:
                outbox.add(msg, delay, dst_gid)
                continue
            bucket = buckets.get(delay)
            if bucket is None:
                buckets[delay] = [msg]
            else:
                bucket.append(msg)
        self.stats.on_send_many(kind, total, n_inter)
        schedule = self.sim.schedule_action
        for delay, copies in buckets.items():
            if len(copies) == 1:
                schedule(delay, lambda m=copies[0]: self._deliver(m))
            else:
                schedule(delay, lambda ms=copies: self._deliver_batch(ms))

    def _send_copy(self, src: int, dst: int, kind: str, payload: dict,
                   wire: "int | None" = None) -> None:
        if self.profiler is not None:
            self.profiler.push("network")
            try:
                self._send_copy_impl(src, dst, kind, payload, wire)
            finally:
                self.profiler.pop()
            return
        self._send_copy_impl(src, dst, kind, payload, wire)

    def _send_copy_impl(self, src: int, dst: int, kind: str,
                        payload: dict, wire: "int | None" = None) -> None:
        sender = self._processes[src]
        if sender.crashed:
            return
        group_of = self.topology.group_index
        src_gid = group_of[src]
        dst_gid = group_of[dst]
        inter = src_gid != dst_gid
        lamport = sender.lamport.value  # timestamp_send leaves it unchanged
        msg = Message(
            src, dst, kind, payload, inter,
            lamport + 1 if inter else lamport, self.sim.now, wire,
        )
        self.stats.on_send(msg)
        if self.trace.enabled:
            self.trace.on_send(self.sim.now, msg)
        delay = self._link_delay(src_gid, dst_gid)
        for hook in self._delay_hooks:
            delay = hook(msg, delay)
        if self._outbox is not None and dst_gid != self._owned_gid:
            self._outbox.add(msg, delay, dst_gid)
            return
        self.sim.schedule_action(delay, lambda m=msg: self._deliver(m))

    def _link_delay(self, src_gid: int, dst_gid: int) -> float:
        """One delay draw for the link, via the fixed-delay cache.

        ``send_many`` inlines the same cache consultation per copy (it
        hoists the row lookup out of its fan-out loop); both paths
        resolve misses through :meth:`LatencyModel.fixed_delay`, so the
        caching rule lives in one place.
        """
        fixed_row = self._fixed_delay.get(src_gid)
        if fixed_row is None:
            fixed_row = self._fixed_delay[src_gid] = {}
        delay = fixed_row.get(dst_gid, -1.0)
        if delay == -1.0 and dst_gid not in fixed_row:
            fixed_row[dst_gid] = delay = self.latency.fixed_delay(
                src_gid, dst_gid)
        if delay is None:
            delay = self.latency.sample(src_gid, dst_gid, self.rng)
        return delay

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliver_batch(self, msgs: List[Message]) -> None:
        """Fan one latency bucket of a ``send_many`` out to its receivers.

        Per-copy crash and filter checks still run individually; a
        receiver's handler may crash a later receiver in the same batch
        and that copy is then dropped, exactly as with per-copy events.
        """
        for msg in msgs:
            self._deliver(msg)

    def _deliver(self, msg: Message) -> None:
        """One shared delivery path, profiled or not.

        Under profiling, network bookkeeping (crash/filter checks,
        clock, trace) is charged to "network" and the handler call to
        the phase of its message kind (consensus / failure_detection /
        protocol); a handler's own nested sends re-enter "network" via
        :meth:`send_many`/:meth:`_send_copy`, so attribution stays
        exclusive all the way down.  When the profiler is off the only
        cost is the two ``is not None`` branches.
        """
        profiler = self.profiler
        if profiler is not None:
            profiler.push("network")
        try:
            receiver = self._processes[msg.dst]
            if receiver.crashed:
                self.stats.on_drop(msg)
                return
            for flt in self._filters:
                if not flt(msg):
                    self.stats.on_drop(msg)
                    return
            # Inlined LamportClock.observe_receive and Process.handle —
            # per-copy hot path (the crashed check already ran above).
            clock = receiver.lamport
            if msg.send_lamport > clock.value:
                clock.value = msg.send_lamport
            if self.trace.enabled:
                self.trace.on_deliver(self.sim.now, msg)
            handler = receiver._handlers.get(msg.kind)
            if handler is None:
                raise KeyError(
                    f"process {receiver.pid} has no handler for kind "
                    f"{msg.kind!r}"
                )
            wire = msg.wire
            if wire is not None:
                # A sequenced transport frame: checksum, dedup and
                # in-order release happen there; the handler runs
                # zero or more times (buffered successors flush).
                self.transport.on_frame(receiver, msg, wire, handler,
                                        profiler)
                return
            if profiler is None:
                handler(msg)
            else:
                profiler.push(_phase_of_kind(msg.kind))
                try:
                    handler(msg)
                finally:
                    profiler.pop()
        finally:
            if profiler is not None:
                profiler.pop()
