"""The simulated quasi-reliable network.

Implements the link semantics of paper Section 2.1:

* links neither corrupt nor duplicate messages;
* links are **quasi-reliable**: a message from a correct process to a
  correct process is eventually delivered; messages to or from crashed
  processes may be lost (here: messages to a crashed destination are
  dropped, messages already in flight from a now-crashed sender are still
  delivered, which quasi-reliability permits).

The network is also the instrumentation point for the modified Lamport
clocks (Section 2.3): it stamps every send with the sender's clock and
advances the receiver's clock on delivery, and it feeds the
message-complexity counters behind Figure 1.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional

from repro.net.message import Message
from repro.net.topology import LatencyModel, Topology
from repro.net.trace import MessageTrace, NetworkStats
from repro.sim.kernel import Simulator
from repro.sim.process import Process

# A delivery filter may veto individual copies (fault-injection in tests).
DeliveryFilter = Callable[[Message], bool]


class Network:
    """Connects :class:`Process` objects through a latency model."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        latency: LatencyModel,
        rng: random.Random,
        trace: Optional[MessageTrace] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.latency = latency
        self.rng = rng
        self.stats = NetworkStats()
        self.trace = trace or MessageTrace(enabled=False)
        self._processes: Dict[int, Process] = {}
        self._filters: List[DeliveryFilter] = []

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, process: Process) -> None:
        """Attach a process to the network."""
        if process.pid in self._processes:
            raise ValueError(f"pid {process.pid} already registered")
        self._processes[process.pid] = process
        process.attach_network(self)

    def process(self, pid: int) -> Process:
        """Look up a registered process."""
        return self._processes[pid]

    def processes(self) -> List[Process]:
        """All registered processes in pid order."""
        return [self._processes[pid] for pid in sorted(self._processes)]

    def add_delivery_filter(self, flt: DeliveryFilter) -> None:
        """Install a predicate that may drop individual message copies.

        Only test fixtures use this (e.g. to model a faulty sender whose
        reliable-multicast copies reached a strict subset of the group).
        Filters must respect quasi-reliability if the scenario claims to.
        """
        self._filters.append(flt)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, kind: str, payload: dict) -> None:
        """Send one message from ``src`` to ``dst``."""
        self._send_copy(src, dst, kind, payload)

    def send_many(
        self, src: int, dsts: Iterable[int], kind: str, payload: dict
    ) -> None:
        """Send the same logical message to each destination.

        Every copy is stamped from the sender's *current* clock, so a
        one-to-many send counts as a single logical step (at most one
        inter-group hop on any causal path), per Section 2.3.
        """
        for dst in dsts:
            self._send_copy(src, dst, kind, payload)

    def _send_copy(self, src: int, dst: int, kind: str, payload: dict) -> None:
        sender = self._processes[src]
        if sender.crashed:
            return
        src_gid = self.topology.group_of(src)
        dst_gid = self.topology.group_of(dst)
        inter = src_gid != dst_gid
        msg = Message(
            src=src,
            dst=dst,
            kind=kind,
            payload=payload,
            inter_group=inter,
            send_lamport=sender.lamport.timestamp_send(inter),
            send_time=self.sim.now,
        )
        self.stats.on_send(msg)
        self.trace.on_send(self.sim.now, msg)
        delay = self.latency.sample(src_gid, dst_gid, self.rng)
        self.sim.schedule(delay, lambda m=msg: self._deliver(m), label=kind)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliver(self, msg: Message) -> None:
        receiver = self._processes[msg.dst]
        if receiver.crashed:
            self.stats.on_drop(msg)
            return
        for flt in self._filters:
            if not flt(msg):
                self.stats.on_drop(msg)
                return
        receiver.lamport.observe_receive(msg.send_lamport)
        self.trace.on_deliver(self.sim.now, msg)
        receiver.handle(msg)
