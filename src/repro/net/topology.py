"""Wide-area topology: groups of processes and link-latency models.

The paper's system model (Section 2.1) partitions the processes into
disjoint, non-empty groups.  Communication inside a group is fast;
communication across groups is orders of magnitude slower.  This module
captures both the membership structure (:class:`Topology`) and the
latency distributions (:class:`LatencyModel` and friends).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


# ----------------------------------------------------------------------
# Latency distributions
# ----------------------------------------------------------------------
class Distribution:
    """A sampleable positive-valued distribution."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def lower_bound(self) -> float:
        """Infimum of the support.

        The conservative parallel kernel derives its lookahead from the
        smallest delay an inter-group link can ever produce; every
        distribution must therefore know its own floor.
        """
        raise NotImplementedError


@dataclass
class Fixed(Distribution):
    """Always returns ``value``."""

    value: float

    def sample(self, rng: random.Random) -> float:
        return self.value

    def lower_bound(self) -> float:
        return self.value


@dataclass
class Uniform(Distribution):
    """Uniform on ``[lo, hi]``."""

    lo: float
    hi: float

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.lo, self.hi)

    def lower_bound(self) -> float:
        return self.lo


@dataclass
class Jittered(Distribution):
    """``base`` plus exponential jitter with mean ``jitter``.

    A reasonable stand-in for WAN latency: a propagation floor plus a
    queueing tail.
    """

    base: float
    jitter: float

    def sample(self, rng: random.Random) -> float:
        if self.jitter <= 0:
            return self.base
        return self.base + rng.expovariate(1.0 / self.jitter)

    def lower_bound(self) -> float:
        return self.base


# ----------------------------------------------------------------------
# Latency model
# ----------------------------------------------------------------------
class LatencyModel:
    """Maps a (source group, destination group) pair to a latency sample."""

    def __init__(
        self,
        intra: Distribution,
        inter: Distribution,
        pairwise_inter: Dict[Tuple[int, int], Distribution] = None,
    ) -> None:
        """Create a two-level latency model.

        Args:
            intra: Latency distribution within a group.
            inter: Default latency distribution between distinct groups.
            pairwise_inter: Optional per-(gid, gid) overrides, e.g. to
                model three continents with asymmetric link latencies.
        """
        self.intra = intra
        self.inter = inter
        self.pairwise_inter = dict(pairwise_inter or {})

    def sample(self, src_gid: int, dst_gid: int, rng: random.Random) -> float:
        """Sample the one-way latency from ``src_gid`` to ``dst_gid``."""
        if src_gid == dst_gid:
            return self.intra.sample(rng)
        dist = self.pairwise_inter.get((src_gid, dst_gid), self.inter)
        return dist.sample(rng)

    def distribution(self, src_gid: int, dst_gid: int) -> Distribution:
        """The distribution governing this (source, destination) pair."""
        if src_gid == dst_gid:
            return self.intra
        return self.pairwise_inter.get((src_gid, dst_gid), self.inter)

    def fixed_delay(self, src_gid: int, dst_gid: int) -> Optional[float]:
        """The pair's constant delay, or None if it needs sampling.

        A :class:`Fixed` link draws nothing from the RNG, so callers may
        reuse this value per copy without perturbing any random stream.
        """
        dist = self.distribution(src_gid, dst_gid)
        if type(dist) is Fixed:
            return dist.value
        return None

    def min_inter_group(self) -> float:
        """Smallest delay any inter-group link can ever produce.

        This is the conservative parallel kernel's lookahead: a message
        crossing groups at time ``t`` cannot arrive before
        ``t + min_inter_group()``, so an epoch of that width can be
        executed by every group independently.

        Raises:
            ValueError: When the bound is not strictly positive (a
                conservative synchronizer with zero lookahead can never
                advance — fail fast instead of deadlocking) or when no
                inter-group distribution is configured.
        """
        if self.inter is None:
            raise ValueError("latency model has no inter-group distribution")
        bounds = [self.inter.lower_bound()]
        bounds.extend(dist.lower_bound()
                      for dist in self.pairwise_inter.values())
        lookahead = min(bounds)
        if lookahead <= 0:
            raise ValueError(
                f"inter-group latency lower bound is {lookahead!r}; the "
                f"parallel kernel needs a strictly positive lookahead"
            )
        return lookahead

    def all_fixed(self) -> bool:
        """True when every link delay is a constant (no RNG draws).

        The parallel kernel requires this: per-copy latency sampling
        consumes a shared random stream whose draw order depends on the
        global event interleaving, which per-group sub-kernels do not
        reproduce.
        """
        dists = [self.intra, self.inter, *self.pairwise_inter.values()]
        return all(type(d) is Fixed for d in dists)

    @classmethod
    def wan(
        cls,
        intra_ms: float = 1.0,
        inter_ms: float = 100.0,
        intra_jitter_ms: float = 0.1,
        inter_jitter_ms: float = 5.0,
    ) -> "LatencyModel":
        """The paper's canonical setting: ~1 ms LAN, ~100 ms WAN links."""
        return cls(
            intra=Jittered(intra_ms, intra_jitter_ms),
            inter=Jittered(inter_ms, inter_jitter_ms),
        )

    @classmethod
    def logical(cls) -> "LatencyModel":
        """Unit-free model for pure latency-degree experiments.

        Intra-group messages take a negligible-but-nonzero time so the
        event order stays well defined; inter-group messages take one
        time unit.
        """
        return cls(intra=Fixed(0.001), inter=Fixed(1.0))


# ----------------------------------------------------------------------
# Membership
# ----------------------------------------------------------------------
class Topology:
    """Disjoint groups of consecutively numbered processes.

    ``Topology([3, 3, 2])`` creates processes 0..7 with groups
    ``g0 = {0,1,2}``, ``g1 = {3,4,5}``, ``g2 = {6,7}``.
    """

    def __init__(self, group_sizes: Sequence[int]) -> None:
        if not group_sizes:
            raise ValueError("at least one group is required")
        if any(size <= 0 for size in group_sizes):
            raise ValueError("groups must be non-empty")
        self._members: List[List[int]] = []
        self._group_of: Dict[int, int] = {}
        pid = 0
        for gid, size in enumerate(group_sizes):
            members = list(range(pid, pid + size))
            self._members.append(members)
            for member in members:
                self._group_of[member] = gid
            pid += size
        self.n_processes = pid
        #: Read-only pid -> gid mapping for hot paths (the network stamps
        #: every message copy with it); treat as immutable.
        self.group_index: Dict[int, int] = self._group_of
        self._pog_cache: Dict[Tuple[int, ...], List[int]] = {}

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        """Number of groups."""
        return len(self._members)

    @property
    def group_ids(self) -> List[int]:
        """All group ids, ascending."""
        return list(range(len(self._members)))

    @property
    def processes(self) -> List[int]:
        """All process ids, ascending."""
        return list(range(self.n_processes))

    def members(self, gid: int) -> List[int]:
        """Process ids belonging to group ``gid``."""
        return list(self._members[gid])

    def group_of(self, pid: int) -> int:
        """Group id of process ``pid``."""
        return self._group_of[pid]

    def same_group(self, a: int, b: int) -> bool:
        """True when processes ``a`` and ``b`` share a group."""
        return self._group_of[a] == self._group_of[b]

    def processes_of_groups(self, gids) -> List[int]:
        """All processes in the given groups, ascending.

        The sort/dedup/flatten is memoised per destination set
        (protocols resolve the same sets for every message); callers
        get a fresh copy, so mutating the result stays safe.
        """
        key = gids if type(gids) is tuple else tuple(gids)
        cached = self._pog_cache.get(key)
        if cached is None:
            cached = []
            for gid in sorted(set(key)):
                cached.extend(self._members[gid])
            self._pog_cache[key] = cached
        return list(cached)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [len(m) for m in self._members]
        return f"Topology(groups={sizes})"
