"""Network message envelope and the interned application-message catalog.

A :class:`Message` is what the network hands to a destination process.
``kind`` routes the message to the protocol layer that registered for it;
``payload`` is an arbitrary dict owned by that protocol.

``send_lamport`` carries the modified Lamport timestamp of the send event
(paper Section 2.3), stamped by the network at send time.  The receiver's
clock is advanced to ``max(LC, send_lamport)`` before the handler runs.

:class:`MessageCatalog` is the message plane's interning table: each
application message is registered once, at cast time, and every protocol
payload from then on carries only its compact ``mid``.  In a real
deployment the first copy a node receives would carry the full body and
populate that node's local table; in this single-address-space simulator
one shared table per simulation models exactly that without re-encoding
the body into every consensus value and timestamp exchange.  Network
*copies* (and therefore every message-complexity counter and the
genuineness trace) are unaffected — only the Python-level payloads
shrink.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator


class Message:
    """One point-to-point message in flight or delivered.

    Attributes:
        src: Sender process id.
        dst: Destination process id.
        kind: Protocol routing key, e.g. ``"paxos.accept"``.
        payload: Protocol-defined contents.
        inter_group: True when sender and receiver are in distinct groups.
        send_lamport: Modified Lamport timestamp of the send event.
        send_time: Virtual time of the send event.
        wire: Transport frame word ``(seq << 8) | checksum``, or None
            when no reliable transport sequenced this copy.  Lives on
            the envelope, not in ``payload``: the payload dict is shared
            by every copy of a ``send_many`` fan-out, while the sequence
            number is strictly per copy — and the corrupt injector can
            damage one copy's frame word without touching its siblings.
    """

    __slots__ = ("src", "dst", "kind", "payload", "inter_group",
                 "send_lamport", "send_time", "wire")

    def __init__(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: Dict[str, Any],
        inter_group: bool = False,
        send_lamport: int = 0,
        send_time: float = 0.0,
        wire: "int | None" = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.inter_group = inter_group
        self.send_lamport = send_lamport
        self.send_time = send_time
        self.wire = wire

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scope = "inter" if self.inter_group else "intra"
        return (
            f"Message({self.src}->{self.dst} {self.kind} {scope} "
            f"ts={self.send_lamport} t={self.send_time:.3f})"
        )


class MessageCatalog:
    """Per-simulation interning table of application messages by mid.

    The catalog is the authoritative decode table for the compact mids
    that protocol payloads and consensus values carry.  Mids must be
    globally unique (they are also the protocols' total-order
    tiebreaker), so re-interning a mid with a *different* message is an
    application bug and raises.
    """

    __slots__ = ("_by_mid",)

    def __init__(self) -> None:
        self._by_mid: Dict[str, Any] = {}

    @classmethod
    def of(cls, sim) -> "MessageCatalog":
        """The catalog shared by everything attached to ``sim``.

        Lazily creates one catalog per simulator instance, so every
        process, protocol endpoint, and the :class:`System` wrapper of
        one simulation resolve mids against the same table while
        independent simulations stay isolated.
        """
        catalog = getattr(sim, "_message_catalog", None)
        if catalog is None:
            catalog = cls()
            sim._message_catalog = catalog
        return catalog

    def intern(self, msg) -> str:
        """Register ``msg`` (idempotent); returns its mid."""
        existing = self._by_mid.get(msg.mid)
        if existing is None:
            self._by_mid[msg.mid] = msg
        elif existing != msg:
            raise ValueError(
                f"mid {msg.mid!r} already interned with a different message"
            )
        return msg.mid

    def get(self, mid: str):
        """The message interned under ``mid`` (KeyError if unknown)."""
        return self._by_mid[mid]

    def __contains__(self, mid: str) -> bool:
        return mid in self._by_mid

    def __len__(self) -> int:
        return len(self._by_mid)

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_mid)
