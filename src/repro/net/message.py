"""Network message envelope.

A :class:`Message` is what the network hands to a destination process.
``kind`` routes the message to the protocol layer that registered for it;
``payload`` is an arbitrary dict owned by that protocol.

``send_lamport`` carries the modified Lamport timestamp of the send event
(paper Section 2.3), stamped by the network at send time.  The receiver's
clock is advanced to ``max(LC, send_lamport)`` before the handler runs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

_MESSAGE_COUNTER = itertools.count()


@dataclass
class Message:
    """One point-to-point message in flight or delivered.

    Attributes:
        src: Sender process id.
        dst: Destination process id.
        kind: Protocol routing key, e.g. ``"paxos.accept"``.
        payload: Protocol-defined contents.
        inter_group: True when sender and receiver are in distinct groups.
        send_lamport: Modified Lamport timestamp of the send event.
        send_time: Virtual time of the send event.
        uid: Unique per-copy identifier (diagnostics).
    """

    src: int
    dst: int
    kind: str
    payload: Dict[str, Any]
    inter_group: bool = False
    send_lamport: int = 0
    send_time: float = 0.0
    uid: int = field(default_factory=lambda: next(_MESSAGE_COUNTER))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scope = "inter" if self.inter_group else "intra"
        return (
            f"Message({self.src}->{self.dst} {self.kind} {scope} "
            f"ts={self.send_lamport} t={self.send_time:.3f})"
        )
