"""Per-message latency accounting.

:class:`LatencyMeter` records, for every application message, the Lamport
timestamp and virtual time of its cast (A-MCast / A-BCast) and of each
delivery.  From those it computes:

* the **latency degree** ``Δ(m, R)`` of paper Section 2.3 — the maximum,
  over delivering processes, of ``ts(A-Deliver(m)) - ts(A-XCast(m))``;
* the wall (virtual-time) delivery latency, both worst-case and mean.

Protocol implementations call :meth:`record_cast` at the A-XCast event
and :meth:`record_delivery` at each A-Deliver event, passing the casting
or delivering process so the meter can read its Lamport clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.process import Process


@dataclass
class MessageRecord:
    """Everything the meter knows about one application message."""

    msg_id: str
    cast_pid: Optional[int] = None
    cast_lamport: Optional[int] = None
    cast_time: Optional[float] = None
    dest_groups: tuple = ()
    delivery_lamport: Dict[int, int] = field(default_factory=dict)
    delivery_time: Dict[int, float] = field(default_factory=dict)

    @property
    def latency_degree(self) -> Optional[int]:
        """``Δ(m, R)`` over the deliveries recorded so far."""
        if self.cast_lamport is None or not self.delivery_lamport:
            return None
        return max(ts - self.cast_lamport for ts in self.delivery_lamport.values())

    @property
    def worst_delivery_latency(self) -> Optional[float]:
        """Max virtual-time delay from cast to delivery."""
        if self.cast_time is None or not self.delivery_time:
            return None
        return max(t - self.cast_time for t in self.delivery_time.values())

    @property
    def mean_delivery_latency(self) -> Optional[float]:
        """Mean virtual-time delay from cast to delivery."""
        if self.cast_time is None or not self.delivery_time:
            return None
        delays = [t - self.cast_time for t in self.delivery_time.values()]
        return sum(delays) / len(delays)


class LatencyMeter:
    """Collects cast/delivery events and derives latency statistics."""

    def __init__(self) -> None:
        self._records: Dict[str, MessageRecord] = {}

    def _record(self, msg_id: str) -> MessageRecord:
        if msg_id not in self._records:
            self._records[msg_id] = MessageRecord(msg_id=msg_id)
        return self._records[msg_id]

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------
    def record_cast(
        self, msg_id: str, process: "Process", dest_groups=(), now: float = 0.0
    ) -> None:
        """Record the A-XCast event of ``msg_id`` on ``process``."""
        rec = self._record(msg_id)
        rec.cast_pid = process.pid
        rec.cast_lamport = process.lamport.local_event()
        rec.cast_time = now
        rec.dest_groups = tuple(sorted(dest_groups))

    def record_delivery(self, msg_id: str, process: "Process", now: float = 0.0) -> None:
        """Record an A-Deliver event of ``msg_id`` on ``process``."""
        rec = self._record(msg_id)
        rec.delivery_lamport[process.pid] = process.lamport.local_event()
        rec.delivery_time[process.pid] = now

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def record_for(self, msg_id: str) -> Optional[MessageRecord]:
        """Return the record for ``msg_id`` if any event was seen."""
        return self._records.get(msg_id)

    def records(self) -> List[MessageRecord]:
        """All records, in message-id order (deterministic)."""
        return [self._records[k] for k in sorted(self._records)]

    def latency_degree(self, msg_id: str) -> Optional[int]:
        """Convenience accessor for ``Δ(m, R)`` of one message."""
        rec = self._records.get(msg_id)
        return rec.latency_degree if rec else None

    def degrees(self) -> Dict[str, Optional[int]]:
        """Map of message id to latency degree."""
        return {k: r.latency_degree for k, r in sorted(self._records.items())}

    def max_degree(self) -> Optional[int]:
        """The largest latency degree across fully delivered messages."""
        degrees = [r.latency_degree for r in self._records.values()
                   if r.latency_degree is not None]
        return max(degrees) if degrees else None

    def min_degree(self) -> Optional[int]:
        """The smallest latency degree across fully delivered messages."""
        degrees = [r.latency_degree for r in self._records.values()
                   if r.latency_degree is not None]
        return min(degrees) if degrees else None
