"""The modified Lamport clock of paper Section 2.3.

The paper measures the *latency degree* of a run with logical clocks that
count **inter-group messages only**:

1. a local event ``e`` on process ``p`` has ``ts(e) = LC_p``;
2. the send event of a message from ``p`` to ``q`` has
   ``ts(e) = LC_p + 1`` when ``group(p) != group(q)`` and ``LC_p``
   otherwise;
3. the receive event of message ``m`` has
   ``ts(e) = max(LC_p, ts(send(m)))``, and ``LC_p`` is advanced to that
   value.

Note that a *send* event does not advance the sender's clock: sending to
many destinations in one logical step costs a single inter-group hop, not
one per destination.  Only the receipt of a higher timestamp advances a
clock.  This matches the paper's intent — the latency degree is the
length of the longest causal chain of inter-group messages.
"""

from __future__ import annotations


class LamportClock:
    """A single process's modified Lamport clock."""

    def __init__(self) -> None:
        self.value = 0

    def timestamp_send(self, inter_group: bool) -> int:
        """Return the timestamp carried by a message being sent now.

        The clock itself is left unchanged (see module docstring).
        """
        return self.value + 1 if inter_group else self.value

    def observe_receive(self, send_timestamp: int) -> int:
        """Advance the clock for a receive event; return the event's ts."""
        if send_timestamp > self.value:
            self.value = send_timestamp
        return self.value

    def local_event(self) -> int:
        """Return the timestamp of a local event (cast, deliver, ...)."""
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LamportClock({self.value})"
