"""Modified Lamport clocks and latency-degree measurement (paper §2.3)."""

from repro.clocks.lamport import LamportClock
from repro.clocks.latency import LatencyMeter, MessageRecord

__all__ = ["LamportClock", "LatencyMeter", "MessageRecord"]
