"""Non-uniform reliable multicast (paper Section 2.2).

Properties:

* uniform integrity — R-Deliver at most once, only if addressed and
  previously R-MCast;
* validity — a *correct* sender's message is R-Delivered by all correct
  addressees;
* agreement — if a *correct* process R-Delivers m, all correct
  addressees R-Deliver m.

Implementation: the sender sends one copy per addressee (this is the
``d(k-1)`` inter-group message cost the paper charges for the primitive,
after [6]).  Agreement despite a faulty sender is ensured by a **lazy
relay**: each receiver arms a one-shot check; if the sender is suspected
by then, the receiver relays the message to every addressee.  In the
common case (sender correct) the check fires, finds nothing to do, and
the primitive stays at its optimal message cost — and, because the check
is a finite local event, the primitive is *halting*, which Algorithm
A2's quiescence proof requires (paper footnote 12).

Delivery is immediate on first receipt, giving the latency degree of 1
the paper uses in its analyses (Theorem 4.1).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.failure.detectors import FailureDetector
from repro.net.message import Message
from repro.sim.process import Process

# Delivery callback: (payload, message_id, original_sender) -> None.
RDeliveryHandler = Callable[[dict, str, int], None]

_MCAST_IDS = itertools.count()


class ReliableMulticast:
    """One process's endpoint of non-uniform reliable multicast."""

    #: Subclasses toggle eager relaying (uniform variant).
    EAGER_RELAY = False

    def __init__(
        self,
        process: Process,
        detector: FailureDetector,
        relay_after: float = 20.0,
        namespace: str = "rmc",
    ) -> None:
        self.process = process
        self.detector = detector
        self.relay_after = relay_after
        self.ns = namespace
        self._delivered: Set[str] = set()
        self._relayed: Set[str] = set()
        self._handler: Optional[RDeliveryHandler] = None
        process.register_handler(f"{self.ns}.data", self._on_data)

    # ------------------------------------------------------------------
    def set_delivery_handler(self, handler: RDeliveryHandler) -> None:
        """Install the (single) R-Deliver callback."""
        if self._handler is not None:
            raise ValueError("delivery handler already set")
        self._handler = handler

    def multicast(
        self, dest_pids: List[int], payload: dict, mid: Optional[str] = None
    ) -> str:
        """R-MCast ``payload`` to ``dest_pids``; returns the message id."""
        if not dest_pids:
            raise ValueError("reliable multicast needs at least one addressee")
        if mid is None:
            mid = f"rm{next(_MCAST_IDS)}"
        body = {
            "mid": mid,
            "sender": self.process.pid,
            "dests": sorted(set(dest_pids)),
            "data": payload,
        }
        self.process.send_many(body["dests"], f"{self.ns}.data", body)
        return mid

    # ------------------------------------------------------------------
    def _on_data(self, msg: Message) -> None:
        body = msg.payload
        mid = body["mid"]
        if mid in self._delivered:
            return
        self._delivered.add(mid)
        if self.EAGER_RELAY:
            self._relay(body)
            self._deliver(body)
        else:
            self._deliver(body)
            if self.detector.suspects(self.process.pid, body["sender"]):
                self._relay(body)
            else:
                self.process.sim.schedule(
                    self.relay_after,
                    lambda b=body: self._relay_check(b),
                    label=f"{self.ns}.relaycheck",
                )

    def _relay_check(self, body: dict) -> None:
        """One-shot lazy relay: act only if the sender looks faulty."""
        if self.process.crashed:
            return
        if self.detector.suspects(self.process.pid, body["sender"]):
            self._relay(body)

    def _relay(self, body: dict) -> None:
        mid = body["mid"]
        if mid in self._relayed:
            return
        self._relayed.add(mid)
        others = [p for p in body["dests"] if p != self.process.pid]
        if others:
            self.process.send_many(others, f"{self.ns}.data", body)

    def _deliver(self, body: dict) -> None:
        if self._handler is None:
            raise RuntimeError("no R-Deliver handler installed")
        self._handler(body["data"], body["mid"], body["sender"])


class UniformReliableMulticast(ReliableMulticast):
    """Uniform variant: relay eagerly *before* delivering.

    If any process — even one that crashes right after — R-Delivers m,
    its relays are already in flight, so every correct addressee also
    R-Delivers m.  The price is O(|dest|²) messages, the figure the
    paper charges the Fritzke et al. [5] baseline for its uniform
    primitive.
    """

    EAGER_RELAY = True
