"""Reliable multicast primitives (paper §2.2)."""

from repro.rmcast.reliable import ReliableMulticast, UniformReliableMulticast

__all__ = ["ReliableMulticast", "UniformReliableMulticast"]
