"""Per-group sub-kernel machinery for the conservative parallel kernel.

The parallel kernel (:mod:`repro.runtime.parallel`) partitions a run by
group: each group's events execute on their own :class:`GroupSequencedQueue`
and virtual clock, synchronized at epoch barriers of width
``lookahead = LatencyModel.min_inter_group()``.  The pieces here are the
kernel-level primitives that make the partitioned execution reproduce
the serial kernel's ``(time, seq)`` total order *exactly*:

**Why the serial order is recoverable.**  The serial queue breaks
timestamp ties by a global counter — i.e. by *scheduling moment*.  The
scheduling moment of an event is fully determined by the execution rank
of the event that scheduled it plus the call index within that
execution; the scheduler's execution rank is, recursively, its own
(fire time, scheduling moment).  So the serial tie-break order is the
lexicographic order of *pedigrees*:

    ``seq(child) = (scheduling time, seq(parent), call index)``

with setup-scheduled roots as the base case, keyed
``(setup band, (group id,), per-replica counter)`` — the serial kernel
runs setup in globally known bands (build: crash schedule and detector
timers; round warm-ups; workload plans), and within each band its
scheduling order is group-major (crash schedules apply pid-sorted,
round warm-ups walk endpoints pid-sorted, workload plans are validated
group-major at equal times), so band/group/counter *is* the serial
setup order even though each sub-kernel only schedules its own slice.

These nested keys are plain tuples: comparisons run in the C tuple
comparator and short-circuit at the first differing component (almost
always the scheduling time), and each key shares its parent's tuple
structurally, so the per-event cost is one 3-tuple.  Cross-group
arrivals — scheduled in the *sender's* sub-kernel — carry the sender's
pedigree key verbatim and therefore interleave into the destination
heap exactly where the serial kernel would have placed them.
``compare_kernels`` is the empirical enforcement of this argument.

**Epoch safety.**  With lookahead ``L``, a cross-group send at time
``t ∈ [eL, (e+1)L)`` arrives no earlier than ``t + L ≥ (e+1)L`` — in a
strictly later window (windows are half-open).  So executing window
``e`` in every sub-kernel, then flushing outboxes, can never deliver a
message into a window that already ran.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.sim.events import Event, EventQueue

#: Sequence-key scheduling times of events scheduled during setup
#: (before the run starts).  The serial kernel gives setup events the
#: lowest seqs, so they must sort before anything scheduled at runtime —
#: including runtime scheduling at virtual time 0.0 — hence negative
#: sentinels.  Setup happens in three globally ordered bands, and the
#: serial scheduling order *within* each band is group-major (crash
#: schedules apply pid-sorted, round warm-ups walk endpoints pid-sorted,
#: workload plans are validated group-major at equal times), so
#: ``(band, gid, per-group counter)`` reproduces the serial setup order
#: exactly even though each sub-kernel only schedules its own slice.
SETUP_BAND_BUILD = -4.0     # build_system: crash schedule, detector timers
SETUP_BAND_ROUNDS = -3.0    # System.start_rounds warm-ups
SETUP_BAND_WORKLOAD = -2.0  # workload plans / store transaction plans

#: Backwards-compatible alias for the default (build-time) band.
SETUP_TIME = SETUP_BAND_BUILD


class GroupSequencedQueue(EventQueue):
    """An :class:`EventQueue` whose tie-break keys are pedigree tuples.

    Sequence keys are nested ``(sched_time, parent_seq, call_index)``
    tuples instead of bare ints (see the module docstring for why that
    is exactly the serial counter order); heap entries stay
    ``(time, seq, item)`` triples, so every comparison still runs in
    the C tuple comparator and the inherited pop/peek/cancel machinery
    works unchanged.

    The queue must be bound to its simulator (:meth:`bind`) so pushes
    can stamp the current virtual time; until :meth:`begin_run` is
    called, pushes are stamped as setup roots (see the band sentinels).
    :meth:`pop_entry` tracks the executing event's key so that pushes
    made during its execution inherit its pedigree.
    """

    def __init__(self, gid: int) -> None:
        super().__init__()
        self.gid = gid
        self._sim = None
        self._setup = True
        self._setup_band = SETUP_BAND_BUILD
        self._parent_key: Optional[tuple] = None
        self._child_index = 0

    def bind(self, sim) -> None:
        """Attach the owning simulator (source of scheduling times)."""
        self._sim = sim

    def set_setup_band(self, band: float) -> None:
        """Advance to a later setup band (see the band sentinels above)."""
        self._setup_band = band

    def begin_run(self) -> None:
        """End the setup phase: stamp subsequent pushes with pedigrees."""
        self._setup = False

    def _next_seq(self) -> tuple:
        if self._setup:
            # Root key.  The group id is wrapped in a 1-tuple so element
            # 1 is tuple-shaped in every key — comparable against a
            # nested parent key (whose element 0 is a band or a time,
            # both numeric like a gid).
            return (self._setup_band, (self.gid,), next(self._counter))
        index = self._child_index
        self._child_index = index + 1
        return (self._sim._now, self._parent_key, index)

    def pop_entry(self):
        entry = super().pop_entry()
        if entry is not None:
            # Children scheduled while this event runs extend its
            # pedigree — including cross-group copies captured by the
            # outbox, which share the same call-index stream.
            self._parent_key = entry[1]
            self._child_index = 0
        return entry

    def push(self, time: float, action: Callable[[], None],
             label: str = "") -> Event:
        seq = self._next_seq()
        event = Event(time, seq, action, label, queue=self)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def push_action(self, time: float, action: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (time, self._next_seq(), action))
        self._live += 1

    def push_remote(self, time: float, seq: tuple,
                    action: Callable[[], None]) -> None:
        """Inject a cross-group arrival with the *sender's* sequence key.

        ``seq`` is the pedigree key the sender's sub-kernel minted when
        the copy was captured — the key the delivery would have carried
        had it been scheduled locally, which is exactly what the serial
        kernel did.
        """
        heapq.heappush(self._heap, (time, seq, action))
        self._live += 1


class OutboundCopy:
    """One cross-group message copy captured by a sub-kernel's outbox.

    Plain data (picklable) so the process-pool executor can ship copies
    between workers at barriers.
    """

    __slots__ = ("arrival_time", "seq", "dst_gid", "msg")

    def __init__(self, arrival_time: float, seq: Tuple[float, int, int],
                 dst_gid: int, msg) -> None:
        self.arrival_time = arrival_time
        self.seq = seq
        self.dst_gid = dst_gid
        self.msg = msg

    def __getstate__(self):
        return (self.arrival_time, self.seq, self.dst_gid, self.msg)

    def __setstate__(self, state):
        (self.arrival_time, self.seq, self.dst_gid, self.msg) = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"OutboundCopy(t={self.arrival_time:.3f} seq={self.seq} "
                f"g{self.dst_gid} {self.msg!r})")


class Outbox:
    """Per-sub-kernel buffer of cross-group sends, flushed at barriers.

    Each captured copy is stamped with the next pedigree key of the
    sender's queue — the *same* call-index stream local pushes use, so
    a diverted copy occupies exactly the scheduling slot the serial
    kernel gave its delivery event.
    """

    def __init__(self, src_gid: int, queue: GroupSequencedQueue) -> None:
        self.src_gid = src_gid
        self._queue = queue
        self._pending: List[OutboundCopy] = []

    def add(self, msg, delay: float, dst_gid: int) -> None:
        """Capture one copy; the queue's clock is the scheduling time."""
        seq = self._queue._next_seq()
        self._pending.append(
            OutboundCopy(msg.send_time + delay, seq, dst_gid, msg))

    def drain(self) -> List[OutboundCopy]:
        """Remove and return everything buffered so far, send order."""
        pending = self._pending
        self._pending = []
        return pending

    def __len__(self) -> int:
        return len(self._pending)


# ----------------------------------------------------------------------
# Epoch arithmetic
# ----------------------------------------------------------------------
def epoch_of(time: float, lookahead: float) -> int:
    """The epoch containing ``time``; windows are ``[eL, (e+1)L)``."""
    epoch = int(time / lookahead)
    # Float division can land one window off in either direction on
    # boundaries (e.g. 43*0.1/0.1 truncates to 42).  Both corrections
    # matter: one window high schedules work before its barrier; one
    # window low makes ``window_end(epoch) == time``, and the exclusive
    # window bound then executes nothing — a coordinator livelock.
    if epoch * lookahead > time:
        epoch -= 1
    elif (epoch + 1) * lookahead <= time:
        epoch += 1
    return max(epoch, 0)


def window_end(epoch: int, lookahead: float) -> float:
    """Exclusive upper bound of ``epoch``'s window."""
    return (epoch + 1) * lookahead
