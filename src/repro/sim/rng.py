"""Deterministic named random-number streams.

Distributed-systems simulations are easiest to debug when every source of
randomness is independently seeded: perturbing the network-latency stream
must not change the workload arrival stream.  :class:`RngRegistry` derives
one :class:`random.Random` per named stream from a single root seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """A family of independent, reproducible random streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was built from."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the RNG for ``name``, creating it on first use.

        The per-stream seed is derived by hashing ``(root_seed, name)``,
        so streams are stable across runs and uncorrelated with each
        other.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, salt: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per repetition of a sweep)."""
        digest = hashlib.sha256(f"{self._seed}/{salt}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
