"""Deterministic discrete-event simulation kernel."""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.process import Process
from repro.sim.rng import RngRegistry

__all__ = [
    "Event", "EventQueue", "SimulationError", "Simulator", "Process",
    "RngRegistry",
]
