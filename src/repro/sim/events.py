"""Event primitives for the discrete-event simulation kernel.

The kernel executes :class:`Event` objects in nondecreasing timestamp
order.  Ties are broken by a monotonically increasing sequence number so
that runs are fully deterministic: two events scheduled for the same
virtual time always execute in the order they were scheduled.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes:
        time: Virtual time at which the event fires.
        seq: Scheduling sequence number; breaks timestamp ties.
        action: Zero-argument callable executed when the event fires.
        label: Human-readable tag used by traces and debugging output.
        cancelled: When True the kernel skips the event.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel will skip it when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at virtual time ``time`` and return the event."""
        event = Event(time=time, seq=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest pending event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()


def ordered_pair(a: Any, b: Any) -> Tuple[Any, Any]:
    """Return ``(min(a, b), max(a, b))`` — handy for symmetric link keys."""
    return (a, b) if a <= b else (b, a)
