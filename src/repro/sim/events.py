"""Event primitives for the discrete-event simulation kernel.

The kernel executes :class:`Event` objects in nondecreasing timestamp
order.  Ties are broken by a monotonically increasing sequence number so
that runs are fully deterministic: two events scheduled for the same
virtual time always execute in the order they were scheduled.

**The ``(time, seq)`` tie-break is a pinned contract**, not an
implementation detail: the parallel kernel's bit-identical claim rests
on reproducing exactly this total order from per-group sub-kernels (see
:mod:`repro.sim.partition`), and ``tests/test_event_queue.py`` regression-
tests it with colliding timestamps.  ``seq`` only needs to be totally
ordered and consistent with scheduling order — the serial queue uses an
``int`` counter, the partitioned queue a nested pedigree tuple
``(sched_time, parent_seq, call_index)`` that embeds the same order
across sub-kernels.

Events sit on the hot path of every simulated message, so the queue's
heap holds ``(time, seq, event)`` triples — the ``(time, seq)`` prefix
is unique, which keeps every heap comparison inside the C tuple
comparator instead of calling back into Python (the dataclass-generated
``Event.__lt__`` used to dominate heap maintenance in profiles).  The
queue also keeps an exact count of *live* (non-cancelled) events:
:meth:`Event.cancel` reports back to its owning queue, so ``len(queue)``
never counts tombstones still sitting in the heap.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional, Tuple


class Event:
    """A single scheduled callback.

    Attributes:
        time: Virtual time at which the event fires.
        seq: Scheduling sequence number; breaks timestamp ties.
        action: Zero-argument callable executed when the event fires.
        label: Human-readable tag used by traces and debugging output.
        cancelled: When True the kernel skips the event.
    """

    __slots__ = ("time", "seq", "action", "label", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[[], None],
        label: str = "",
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = False
        self._queue = queue

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.time == other.time and self.seq == other.seq

    def cancel(self) -> None:
        """Mark the event so the kernel will skip it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._on_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.3f} seq={self.seq} {self.label}{state})"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Equal-timestamp events pop in insertion (scheduling) order — the
    ``(time, seq)`` contract documented in the module docstring.

    ``len(queue)`` is the number of *live* events: cancelled events still
    occupy heap slots until lazily popped, but are never counted.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def _on_cancel(self) -> None:
        self._live -= 1

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at virtual time ``time`` and return the event."""
        seq = next(self._counter)
        event = Event(time, seq, action, label, queue=self)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def push_action(self, time: float, action: Callable[[], None]) -> None:
        """Schedule a bare, non-cancellable callback at ``time``.

        Hot-path variant for callers that never cancel (the network's
        delivery events): the heap entry holds the callable directly,
        skipping the :class:`Event` wrapper allocation.
        """
        heapq.heappush(self._heap, (time, next(self._counter), action))
        self._live += 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None.

        Bare actions pushed with :meth:`push_action` are wrapped in a
        fresh :class:`Event` so callers see one uniform type.
        """
        entry = self.pop_entry()
        if entry is None:
            return None
        time, seq, item = entry
        if type(item) is Event:
            return item
        return Event(time, seq, item)

    def pop_entry(self) -> Optional[tuple]:
        """Remove and return the earliest live ``(time, seq, item)``.

        ``item`` is either a live :class:`Event` or a bare callable; the
        kernel's run loop consumes these directly to avoid per-event
        wrapper churn.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            item = entry[2]
            if type(item) is Event:
                if item.cancelled:
                    continue
                item._queue = None  # a cancel() after firing must not count
            self._live -= 1
            return entry
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest pending event, or None."""
        heap = self._heap
        while heap:
            head = heap[0][2]
            if type(head) is Event and head.cancelled:
                heapq.heappop(heap)
                continue
            return heap[0][0]
        return None

    def clear(self) -> None:
        """Drop every pending event."""
        for _, _, item in self._heap:
            if type(item) is Event:
                item._queue = None  # orphan: cancel() must not double-count
        self._heap.clear()
        self._live = 0


def ordered_pair(a: Any, b: Any) -> Tuple[Any, Any]:
    """Return ``(min(a, b), max(a, b))`` — handy for symmetric link keys."""
    return (a, b) if a <= b else (b, a)
