"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock and the event queue.  All other
subsystems (network, protocols, workloads, failure schedules) interact
with the kernel exclusively through :meth:`Simulator.schedule` /
:meth:`Simulator.call_at`, which keeps the whole run deterministic for a
given seed.

The kernel deliberately knows nothing about processes, messages, or
protocols — those live in :mod:`repro.sim.process` and :mod:`repro.net`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.events import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised for misuse of the kernel (e.g. scheduling in the past)."""


class Simulator:
    """A deterministic virtual-time event loop.

    Attributes:
        now: Current virtual time (read-only for clients).
    """

    def __init__(self, queue: Optional[EventQueue] = None) -> None:
        # The parallel kernel passes a GroupSequencedQueue whose seq
        # keys embed (scheduling time, group id); the serial default is
        # the plain int-counter queue.
        self._queue = queue if queue is not None else EventQueue()
        self._now = 0.0
        self._running = False
        self._events_executed = 0
        self._stop_requested = False
        self._idle_hooks: List[Callable[[], None]] = []
        #: Optional :class:`~repro.runtime.profiler.PhaseProfiler`.
        #: When set, :meth:`run` charges the loop to the "kernel" phase
        #: and instrumented subsystems push their own phases on top.
        self.profiler = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (diagnostics/benchmarks)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self._queue.push(self._now + delay, action, label)

    def schedule_action(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule a non-cancellable callback ``delay`` units from now.

        Hot-path variant of :meth:`schedule` for high-volume callers
        that never cancel (message deliveries): no :class:`Event` is
        allocated and nothing is returned.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self._queue.push_action(self._now + delay, action)

    def call_at(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, already at {self._now!r}"
            )
        return self._queue.push(time, action, label)

    def add_idle_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback invoked when the queue drains.

        Idle hooks let components (e.g. workload generators with lazy
        arrivals) inject more events when the simulation would otherwise
        terminate.  A hook that schedules nothing leaves the simulation
        idle and :meth:`run` returns.
        """
        self._idle_hooks.append(hook)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        entry = self._queue.pop_entry()
        if entry is None:
            return False
        time, _, item = entry
        if time < self._now:
            raise SimulationError("event queue yielded an event in the past")
        self._now = time
        self._events_executed += 1
        if type(item) is Event:
            item.action()
        else:
            item()
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the queue drains, ``until`` is reached, or stopped.

        Args:
            until: Stop once the next event would fire after this time.
                The clock is advanced to ``until`` in that case.
            max_events: Safety valve for runaway protocols.

        Returns:
            The virtual time at which the run stopped.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stop_requested = False
        executed = 0
        profiler = self.profiler
        if profiler is not None:
            profiler.push("kernel")
        try:
            while True:
                if self._stop_requested:
                    break
                if max_events is not None and executed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    # Queue drained: give idle hooks one chance to refill.
                    # Re-peeking (rather than comparing counts) stays
                    # exact even if a hook cancels stragglers while
                    # scheduling fresh work.
                    for hook in self._idle_hooks:
                        hook()
                    if self._queue.peek_time() is None:
                        break
                    continue
                if until is not None and next_time > until:
                    self._now = until
                    break
                # Inline step(): peek_time() already pruned cancelled
                # heads, so this pop returns the peeked entry without
                # re-scanning — one call frame per event instead of three.
                time, _, item = self._queue.pop_entry()
                self._now = time
                self._events_executed += 1
                if type(item) is Event:
                    item.action()
                else:
                    item()
                executed += 1
        finally:
            self._running = False
            if profiler is not None:
                profiler.pop()
        return self._now

    def run_window(self, bound: float, inclusive: bool = False) -> float:
        """Execute every pending event with ``time < bound``.

        The conservative parallel kernel's per-epoch entry point: with
        ``inclusive=True`` events at exactly ``bound`` run too (used for
        the final window of a bounded run, mirroring ``run(until=...)``'s
        inclusive semantics).  Unlike :meth:`run`, the clock is left at
        the last executed event — never advanced to the bound — and idle
        hooks are not consulted: the epoch coordinator owns termination.
        """
        if self._running:
            raise SimulationError("run_window() is not reentrant")
        self._running = True
        profiler = self.profiler
        if profiler is not None:
            profiler.push("kernel")
        queue = self._queue
        try:
            while True:
                next_time = queue.peek_time()
                if next_time is None:
                    break
                if next_time > bound or (next_time == bound
                                         and not inclusive):
                    break
                time, _, item = queue.pop_entry()
                self._now = time
                self._events_executed += 1
                if type(item) is Event:
                    item.action()
                else:
                    item()
        finally:
            self._running = False
            if profiler is not None:
                profiler.pop()
        return self._now

    def run_until_quiescent(
        self, max_events: int = 10_000_000, until: Optional[float] = None
    ) -> float:
        """Run until no events remain.  Raises if ``max_events`` trips.

        Used by quiescence checks: a quiescent protocol must drain the
        queue after a finite workload.
        """
        end = self.run(until=until, max_events=max_events)
        if self.pending_events > 0 and until is None:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )
        return end
