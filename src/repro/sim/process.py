"""Event-driven process abstraction.

A :class:`Process` models one node of the distributed system under the
benign crash-stop failure model of the paper (Section 2.1): a process may
crash and thereafter takes no steps; it never behaves maliciously.

Protocol layers (consensus, reliable multicast, atomic multicast, ...)
attach themselves to a process by registering message handlers keyed by
message *kind*.  The network delivers every incoming message through
:meth:`Process.handle`, which dispatches to the registered handler.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.message import Message
    from repro.net.network import Network
    from repro.sim.kernel import Simulator

from repro.clocks.lamport import LamportClock


class Process:
    """A crash-stop process attached to a simulated network.

    Attributes:
        pid: Globally unique process identifier.
        group_id: Identifier of the group the process belongs to.
        crashed: True once the process has crashed; crashed processes
            neither send nor handle messages.
        lamport: The modified Lamport clock of paper Section 2.3, used
            to measure latency degrees.
    """

    def __init__(self, pid: int, group_id: int, sim: "Simulator") -> None:
        self.pid = pid
        self.group_id = group_id
        self.sim = sim
        self.crashed = False
        self.lamport = LamportClock()
        self._handlers: Dict[str, Callable[["Message"], None]] = {}
        self._crash_hooks: List[Callable[[], None]] = []
        self.network: Optional["Network"] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_network(self, network: "Network") -> None:
        """Called by the network when the process is registered."""
        self.network = network

    def register_handler(
        self, kind: str, handler: Callable[["Message"], None]
    ) -> None:
        """Route messages of ``kind`` to ``handler``.

        Each kind has exactly one handler; protocols namespace their
        kinds (e.g. ``"paxos.accept"``, ``"amcast.ts"``) to avoid
        collisions.
        """
        if kind in self._handlers:
            raise ValueError(f"duplicate handler for message kind {kind!r}")
        self._handlers[kind] = handler

    def add_crash_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback invoked when this process crashes."""
        self._crash_hooks.append(hook)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst: int, kind: str, payload: dict) -> None:
        """Send a point-to-point message through the network."""
        if self.crashed:
            return
        assert self.network is not None, "process not attached to a network"
        self.network.send(self.pid, dst, kind, payload)

    def send_many(self, dsts, kind: str, payload: dict) -> None:
        """Send the same logical message to several destinations.

        All copies carry the same Lamport send-timestamp: a one-to-many
        send is a single logical step, so it must not be charged one
        inter-group hop per destination (see paper Section 2.3).
        """
        if self.crashed:
            return
        assert self.network is not None, "process not attached to a network"
        self.network.send_many(self.pid, list(dsts), kind, payload)

    def handle(self, msg: "Message") -> None:
        """Dispatch an incoming message to its protocol handler."""
        if self.crashed:
            return
        handler = self._handlers.get(msg.kind)
        if handler is None:
            raise KeyError(
                f"process {self.pid} has no handler for kind {msg.kind!r}"
            )
        handler(msg)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash the process: it takes no further steps."""
        if self.crashed:
            return
        self.crashed = True
        for hook in self._crash_hooks:
            hook()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "up"
        return f"Process(pid={self.pid}, group={self.group_id}, {state})"
