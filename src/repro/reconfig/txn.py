"""Control payloads: reconfiguration rides the atomic multicast.

Ownership changes are not out-of-band mutations — they are messages in
the same total order as data transactions, multicast genuinely to the
groups whose ownership they touch:

* :class:`ReconfigOp` (**R**) — "move ``keys`` from group ``src`` to
  group ``dst``" — multicast to ``{src, dst}``.  On A-Deliver the
  source sheds the keys (snapshot + delete + fence) and the target
  tentatively takes ownership, stalling execution of transactions that
  touch the moving keys until the state arrives.
* :class:`Handoff` (**H**) — the key-range snapshot, cast by the
  designated (lowest-pid correct) source replica *after* it executes
  R, multicast to ``{src, dst}`` so the source learns completion and
  the target installs the state at a totally-ordered point.  An
  aborted reconfig (source refused R) ships an empty ``aborted``
  handoff so the target can roll its tentative flip back.

Data transactions keep their 3-tuple ``(txn_id, client, ops)`` payload
untouched; control payloads are tagged tuples so every consumer —
stores, trackers, checkers, metric extractors — can tell the two
apart with :func:`is_control` without attempting a parse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Payload tags.  Data transactions are untagged 3-tuples.
RECONFIG_TAG = "__reconfig__"
HANDOFF_TAG = "__handoff__"


def is_control(payload) -> bool:
    """Is this multicast payload a reconfig/handoff control message?"""
    return (isinstance(payload, tuple) and len(payload) > 0
            and payload[0] in (RECONFIG_TAG, HANDOFF_TAG))


@dataclass(frozen=True)
class ReconfigOp:
    """R: move ``keys`` from group ``src`` to group ``dst``."""

    reconfig_id: str
    src: int
    dst: int
    keys: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(
                f"reconfig {self.reconfig_id!r} moves keys from group "
                f"{self.src} to itself"
            )
        if not self.keys:
            raise ValueError(
                f"reconfig {self.reconfig_id!r} moves no keys"
            )

    @property
    def dest_groups(self) -> Tuple[int, ...]:
        return tuple(sorted((self.src, self.dst)))

    def to_payload(self) -> tuple:
        return (RECONFIG_TAG, self.reconfig_id, self.src, self.dst,
                self.keys)

    @classmethod
    def from_payload(cls, payload: tuple) -> "ReconfigOp":
        tag, reconfig_id, src, dst, keys = payload
        if tag != RECONFIG_TAG:
            raise ValueError(f"not a reconfig payload: {payload!r}")
        return cls(reconfig_id=reconfig_id, src=src, dst=dst,
                   keys=tuple(keys))


@dataclass(frozen=True)
class Handoff:
    """H: the snapshot of the moving key range (or an abort notice)."""

    reconfig_id: str
    src: int
    dst: int
    keys: Tuple[str, ...]
    #: ``((key, value), ...)`` sorted by key; empty when aborted.
    snapshot: Tuple[Tuple[str, object], ...] = ()
    aborted: bool = False

    @property
    def dest_groups(self) -> Tuple[int, ...]:
        return tuple(sorted((self.src, self.dst)))

    def snapshot_dict(self) -> Dict[str, object]:
        return dict(self.snapshot)

    def to_payload(self) -> tuple:
        return (HANDOFF_TAG, self.reconfig_id, self.src, self.dst,
                self.keys, self.snapshot, self.aborted)

    @classmethod
    def from_payload(cls, payload: tuple) -> "Handoff":
        tag, reconfig_id, src, dst, keys, snapshot, aborted = payload
        if tag != HANDOFF_TAG:
            raise ValueError(f"not a handoff payload: {payload!r}")
        return cls(reconfig_id=reconfig_id, src=src, dst=dst,
                   keys=tuple(keys),
                   snapshot=tuple((k, v) for k, v in snapshot),
                   aborted=bool(aborted))


def parse_control(payload: tuple):
    """Parse a tagged control payload into its dataclass."""
    if payload[0] == RECONFIG_TAG:
        return ReconfigOp.from_payload(payload)
    if payload[0] == HANDOFF_TAG:
        return Handoff.from_payload(payload)
    raise ValueError(f"not a control payload: {payload!r}")
