"""Elastic repartitioning: the partition map as a replicated object.

This package makes key ownership *dynamic* while keeping every safety
argument inside the atomic multicast's total order:

* :mod:`repro.reconfig.ring` — consistent-hash ring ownership with
  virtual nodes per group, replacing the bare ``sha256 % n_groups``
  fallback for elastic deployments (explicit overrides preserved);
* :mod:`repro.reconfig.txn` — the reconfig/handoff *control payloads*
  that ride the same atomic multicast as data transactions;
* :mod:`repro.reconfig.balancer` — the :class:`LoadBalancer` that
  watches per-key commit heat and triggers key-range migrations;
* :mod:`repro.reconfig.checker` — the post-hoc ``reconfig`` checker
  (unique ownership per epoch, no stale execution, migrated state
  equals the source snapshot);
* :mod:`repro.reconfig.metrics` — the ``reconfig`` campaign metric
  family (migrations, bounces, residues, stall time).

The migration protocol itself lives in the serving layer
(:mod:`repro.store.service`), because fencing and snapshot transfer
are replica-side concerns; this package holds everything that is *not*
a replica: the ownership function, the wire format, the controller and
the verdicts.
"""

from repro.reconfig.ring import HashRing
from repro.reconfig.txn import (
    Handoff,
    ReconfigOp,
    is_control,
    parse_control,
)

__all__ = [
    "HashRing",
    "Handoff",
    "ReconfigOp",
    "is_control",
    "parse_control",
]
