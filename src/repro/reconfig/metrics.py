"""Campaign metrics for the elastic-repartitioning machinery.

Registered in :data:`repro.campaigns.metrics.EXTRACTORS` under
``"reconfig"``: migration counts and key volume, epoch-fencing traffic
(``WrongEpoch`` bounces, residue retries, abandoned transactions),
pipeline stall time, and balancer tick accounting.  All zeros on a
static store scenario, so a rebalance-on/off grid axis yields
comparable rows.
"""

from __future__ import annotations

from typing import Dict


def _cluster(system):
    cluster = getattr(system, "store_cluster", None)
    if cluster is None:
        raise ValueError(
            "reconfig metrics require a store scenario "
            "(ScenarioSpec.store / StoreCluster.attach)"
        )
    return cluster


def reconfig_metrics(system) -> Dict[str, float]:
    """Elastic-repartitioning counters over one finished run."""
    cluster = _cluster(system)
    ops: Dict[str, object] = {}
    completed = set()
    aborted = set()
    bounces = set()
    stall_time = 0.0
    stalled_at_end = set()
    for store in cluster.stores.values():
        ops.update(store.initiated_reconfigs)
        completed.update(store.completed_reconfigs)
        aborted.update(store.aborted_reconfigs)
        for rejection in store.rejections:
            bounces.add((rejection["txn_id"], rejection["gid"]))
        stall_time += store.stall_time
        stalled_at_end.update(store.stalled_txn_ids())
    keys_moved = sum(len(ops[rid].keys) for rid in completed if rid in ops)
    residues = [t for t in cluster.tracker.parents]
    abandoned = sorted({txn for client in cluster.clients.values()
                        for txn in client.abandoned})
    out: Dict[str, float] = {
        "reconfigs_initiated": float(len(ops)),
        "reconfigs_completed": float(len(completed & set(ops))),
        "reconfigs_aborted": float(len(aborted & set(ops))),
        "reconfig_keys_moved": float(keys_moved),
        "wrong_epoch_bounces": float(len(bounces)),
        "residue_txns": float(len(residues)),
        "txns_abandoned": float(len(abandoned)),
        "txns_stalled_at_end": float(len(stalled_at_end)),
        "migration_stall_time": float(stall_time),
    }
    balancer = cluster.balancer
    out["balancer_ticks"] = float(balancer.ticks if balancer else 0)
    out["balancer_ticks_blocked"] = float(
        balancer.ticks_blocked if balancer else 0)
    return out
