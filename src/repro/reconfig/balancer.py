"""The load balancer: commit-rate-driven key-range migration.

:class:`LoadBalancer` is the controller of the elastic repartitioning
loop.  It ticks on a fixed virtual-time period, reads per-key demand
heat from the shared :class:`~repro.store.client.CommitTracker`'s
issue journal (the balancer reacts to *observed* client traffic,
never to the workload spec),
and when the hottest data group's load exceeds the coldest's by more
than ``threshold``×, it multicasts a :class:`~repro.reconfig.txn.
ReconfigOp` moving the hottest keys — through the same atomic
multicast as every data transaction, via the lowest-pid correct
replica of the *source* group, so the decision's effect has a
totally-ordered position and the submitter is guaranteed to observe
both R and H.

One migration is in flight at a time: a tick while the previous
reconfig is unfinished at any correct participant is a no-op.  The
controller draws no randomness — ties break on group id and key name —
so a (spec, seed) pair replays bit-identically with or without a
campaign harness around it.

Two modes:

* ``split`` — shed up to ``max_keys`` of the hottest group's keys to
  the coldest group, hottest first, but only while each move strictly
  improves the pairwise balance (the skew chaser; the strict-improve
  rule is what keeps one indivisibly-hot key from ping-ponging);
* ``merge`` — fold the coldest group's entire (observed) key set into
  the second-coldest group (the consolidator for near-idle groups).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.reconfig.txn import ReconfigOp

#: Balancing strategies.
MODES = ("split", "merge")


class LoadBalancer:
    """Watches commit heat and triggers migrations through the order."""

    def __init__(self, cluster, interval: float,
                 threshold: float = 2.0, max_keys: int = 8,
                 mode: str = "split") -> None:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; have {list(MODES)}")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        if threshold < 1.0:
            raise ValueError(
                f"threshold must be >= 1.0, got {threshold!r}"
            )
        if max_keys < 1:
            raise ValueError(f"max_keys must be >= 1, got {max_keys!r}")
        self.cluster = cluster
        self.interval = interval
        self.threshold = threshold
        self.max_keys = max_keys
        self.mode = mode
        self._seq = 0
        self._heat_index = 0
        self._outstanding: Optional[ReconfigOp] = None
        #: key -> full former-owner chain, oldest first (epoch 0 at the
        #: head), grown by one entry per completed migration of the key.
        self.key_chain: Dict[str, List[int]] = {}
        #: completed migrations announced to the client sessions.
        self.pushes = 0
        #: (tick time, reconfig id, src, dst, keys) per initiated move.
        self.migrations: List[Tuple[float, str, int, int, tuple]] = []
        #: ticks skipped because a migration was still in flight.
        self.ticks_blocked = 0
        self.ticks = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, start: float, horizon: float) -> None:
        """Schedule ticks every ``interval`` over (start, horizon]."""
        sim = self.cluster.system.sim
        t = start + self.interval
        while t <= horizon:
            sim.call_at(t, self._tick, label=f"rebalance@{t:g}")
            t += self.interval

    # ------------------------------------------------------------------
    # One tick
    # ------------------------------------------------------------------
    def _correct_members(self, gid: int) -> List[int]:
        network = self.cluster.system.network
        return [pid for pid in self.cluster.system.topology.members(gid)
                if not network.process(pid).crashed]

    def _finished(self, op: ReconfigOp) -> bool:
        """Has every correct participant seen the reconfig's outcome?"""
        for gid in (op.src, op.dst):
            for pid in self._correct_members(gid):
                if not self.cluster.stores[pid].reconfig_finished(
                        op.reconfig_id):
                    return False
        return True

    def _push_completed(self, op: ReconfigOp) -> None:
        """Announce a completed migration to every live client session.

        The bounce path teaches a client about a move only when one of
        its transactions trips over the fence, so every (client, moved
        key) pair pays a rejected leg plus a residue round-trip.  A
        placement driver can do better: once every correct participant
        has the outcome, push the new owner to all sessions.  The push
        carries the key's full former-owner chain, so the fence legs it
        seeds are exactly those a chain of bounces would have
        accumulated — the pairwise-ordering argument is unchanged, only
        the discovery is proactive.  Transactions already in flight
        across the window still bounce; that path stays load-bearing.
        """
        completed = any(
            op.reconfig_id in self.cluster.stores[pid].completed_reconfigs
            for gid in (op.src, op.dst)
            for pid in self._correct_members(gid))
        if not completed:
            return  # aborted: ownership did not change, nothing to teach
        for key in op.keys:
            self.key_chain.setdefault(key, []).append(op.src)
        for client in self.cluster.clients.values():
            if client.store.process.crashed:
                continue
            for key in op.keys:
                client.learn(key, op.dst, self.key_chain[key])
        self.pushes += 1

    def _heat_window(self) -> Dict[str, int]:
        """Per-key demand counts since the previous tick.

        Reads the tracker's *issue* journal, not its commit journal: a
        saturated partition commits at most 1/service_time transactions
        per unit time no matter how many are queued, so commit heat
        understates exactly the partitions that need relief, and a
        commit-driven balancer starves itself of its trigger signal.
        Issue heat measures offered load wherever the queue stands.
        """
        journal = self.cluster.tracker.key_issues
        heat: Dict[str, int] = {}
        for _, keys in journal[self._heat_index:]:
            for key in keys:
                heat[key] = heat.get(key, 0) + 1
        self._heat_index = len(journal)
        return heat

    def _views(self) -> Dict[int, object]:
        """Per-group map views for load attribution.

        A key is attributed to the group whose *own* view claims it: a
        group's view of its own holdings is always current (every move
        in or out of a group is delivered to it), while its view of
        keys moving between *other* groups goes stale — so ownership
        questions are always put to the claimant, never to a bystander.
        """
        views: Dict[int, object] = {}
        for gid in self.cluster.data_gids:
            members = self._correct_members(gid)
            if members:
                views[gid] = self.cluster.stores[min(members)].partition_map
        return views

    def _tick(self) -> None:
        self.ticks += 1
        if self._outstanding is not None:
            if not self._finished(self._outstanding):
                self.ticks_blocked += 1
                return
            done, self._outstanding = self._outstanding, None
            self._push_completed(done)
        heat = self._heat_window()
        if not heat:
            return
        views = self._views()
        gids = sorted(views)
        if len(gids) < 2:
            return
        load = {g: 0 for g in gids}
        owner_of: Dict[str, int] = {}
        for key, count in heat.items():
            gid = next((g for g in gids
                        if views[g].group_of(key) == g), None)
            if gid is not None:
                load[gid] += count
                owner_of[key] = gid
        hot = max(gids, key=lambda g: (load[g], -g))
        cold = min(gids, key=lambda g: (load[g], g))
        if load[hot] == 0 or hot == cold:
            return
        if load[cold] > 0 and load[hot] / load[cold] < self.threshold:
            return
        if self.mode == "split":
            # Greedy split: shed hottest-first, but only while the move
            # strictly improves the pairwise balance — otherwise the
            # whole hot set lands on the coldest group, which becomes
            # the new hottest, and the same keys ping-pong forever.
            src, dst = hot, cold
            src_load, dst_load = float(load[src]), float(load[dst])
            candidates: List[str] = []
            for key in sorted((k for k, g in owner_of.items() if g == src),
                              key=lambda k: (-heat[k], k)):
                if len(candidates) >= self.max_keys:
                    break
                if dst_load + heat[key] < src_load:
                    candidates.append(key)
                    src_load -= heat[key]
                    dst_load += heat[key]
        else:
            second = min((g for g in gids if g != cold),
                         key=lambda g: (load[g], g))
            src, dst = cold, second
            candidates = sorted(k for k, g in owner_of.items() if g == src)
        if not candidates:
            return
        submitter_pids = self._correct_members(src)
        if not submitter_pids:
            return
        self._seq += 1
        op = ReconfigOp(reconfig_id=f"rc{self._seq:05d}", src=src,
                        dst=dst, keys=tuple(sorted(candidates)))
        self.cluster.stores[min(submitter_pids)].submit_reconfig(op)
        self._outstanding = op
        self.migrations.append(
            (self.cluster.system.sim.now, op.reconfig_id, src, dst,
             op.keys))
